//! # aviv-repro — workspace facade
//!
//! Re-exports the crates of the AVIV reproduction so the examples and
//! cross-crate integration tests have one import surface. See the README
//! for the architecture overview and `DESIGN.md` for the full system
//! inventory.

pub use aviv;
pub use aviv_baseline;
pub use aviv_ir;
pub use aviv_isdl;
pub use aviv_splitdag;
pub use aviv_vm;
