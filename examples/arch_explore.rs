//! Design-space exploration — the use case that motivates AVIV: "by
//! varying the machine description and evaluating the resulting object
//! code, the design space of both hardware and software components can be
//! effectively explored" (§I-B).
//!
//! This example compiles one workload against a family of candidate ASIP
//! datapaths (varying unit count, operation mix, registers, and bus
//! width) and ranks them by code size, reproducing the paper's §VI
//! observation that "for several of these basic blocks, removing a
//! functional unit does not degrade performance."
//!
//! ```sh
//! cargo run --release --example arch_explore
//! ```

use aviv::{CodeGenerator, CodegenOptions};
use aviv_ir::{parse_function, Op};
use aviv_isdl::{archs, Machine, MachineBuilder};
use aviv_vm::program_stats;

const WORKLOAD: &str = "func kernel(a, b, c, d) {
    p = (a + b) * c;
    q = (a - b) * d;
    r = p + q;
    s = p - q;
}";

fn candidates() -> Vec<Machine> {
    let fig3 = archs::example_arch(4);
    // Derive variants the way the paper describes: "we changed the target
    // architecture of Figure 3 by removing the SUB operation from
    // functional unit U1, and completely removing functional unit U3."
    let arch_two = fig3
        .without_op("U1", Op::Sub)
        .expect("U1 has sub")
        .without_unit("U3")
        .expect("U3 removable")
        .renamed("ArchII");
    let starved = fig3.with_bank_size(2).expect("valid").renamed("Fig3regs2");
    let mut v = vec![fig3, arch_two, starved];

    // A symmetric two-unit machine.
    let mut b = MachineBuilder::new("TwinAlu");
    let u1 = b.unit("U1", &[Op::Add, Op::Sub, Op::Mul], 4);
    let u2 = b.unit("U2", &[Op::Add, Op::Sub, Op::Mul], 4);
    b.bus("DB", &[u1, u2], true, 1);
    v.push(b.build().expect("valid"));

    // The same with a second bus — does transfer bandwidth matter?
    let mut b = MachineBuilder::new("TwinAlu2Bus");
    let u1 = b.unit("U1", &[Op::Add, Op::Sub, Op::Mul], 4);
    let u2 = b.unit("U2", &[Op::Add, Op::Sub, Op::Mul], 4);
    b.bus("DB0", &[u1, u2], true, 1);
    b.bus("DB1", &[u1, u2], true, 1);
    v.push(b.build().expect("valid"));

    // A multiplier-less variant is invalid for this workload — AVIV
    // reports it as unimplementable rather than silently failing.
    let mut b = MachineBuilder::new("NoMul");
    let u1 = b.unit("U1", &[Op::Add, Op::Sub], 4);
    b.bus("DB", &[u1], true, 1);
    v.push(b.build().expect("valid"));

    // A single do-everything ALU (the fully sequential end of the space).
    v.push(archs::single_alu(4));
    v
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let f = parse_function(WORKLOAD)?;
    println!("workload: {} DAG nodes\n", f.blocks[0].dag.len());
    println!("{:14} | result", "machine");
    println!("---------------+---------------------------");
    let mut ranked: Vec<(String, usize, usize)> = Vec::new();
    for machine in candidates() {
        let name = machine.name.clone();
        let gen = CodeGenerator::new(machine).options(CodegenOptions::thorough());
        match gen.compile_function(&f) {
            Ok((program, report)) => {
                // The paper's real cost: on-chip ROM bits under a
                // machine-derived packed encoding.
                let stats = program_stats(gen.target(), &program);
                println!(
                    "{name:14} | {:3} instructions | {:5} ROM bits | {:.1} ms",
                    report.blocks[0].instructions,
                    stats.rom_bits,
                    report.blocks[0].time.as_secs_f64() * 1e3
                );
                ranked.push((name, report.blocks[0].instructions, stats.rom_bits));
            }
            Err(e) => println!("{name:14} | unimplementable: {e}"),
        }
    }
    ranked.sort_by_key(|&(_, size, bits)| (size, bits));
    let (best, size, bits) = &ranked[0];
    println!("\nbest datapath for this workload: {best} at {size} instructions ({bits} ROM bits)");
    Ok(())
}
