//! A DSP workload end to end: a 4-tap FIR filter inner loop, unrolled
//! twice by the front end (exactly how the paper prepares its Ex3–Ex5
//! blocks), compiled for the paper's example VLIW and for a MAC-capable
//! DSP, then validated against the reference interpreter.
//!
//! ```sh
//! cargo run --example fir_filter
//! ```

use aviv::{CodeGenerator, CodegenOptions};
use aviv_ir::{opt, parse_function, run_function, BlockId};
use aviv_isdl::archs;
use aviv_vm::Simulator;

const FIR_SRC: &str = "func fir(x0, x1, x2, x3, c0, c1, c2, c3, xin, n) {
    acc = 0;
    i = 0;
head:
    acc = acc + x0 * c0;
    acc = acc + x1 * c1;
    acc = acc + x2 * c2;
    acc = acc + x3 * c3;
    x0 = x1;
    x1 = x2;
    x2 = x3;
    x3 = xin;
    i = i + 1;
    if (i < n) goto head;
    return acc;
}";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut f = parse_function(FIR_SRC)?;

    // Front-end machine-independent optimization: unroll the loop body
    // twice so the back end sees more instruction-level parallelism.
    opt::unroll_self_loop(&mut f, BlockId(1), 2)?;
    println!(
        "loop body after unrolling: {} DAG nodes",
        f.blocks[1].dag.len()
    );

    let args: Vec<i64> = vec![1, 2, 3, 4, 10, 20, 30, 40, 5, 4];
    let expected = run_function(&f, &args)?.return_value;

    // Same DSP datapath with and without its MAC complex instruction,
    // plus the paper's 3-unit example VLIW for scale.
    let mut dsp_no_mac = archs::dsp_arch(4);
    dsp_no_mac = strip_complexes(dsp_no_mac);
    let mut results = Vec::new();
    for (name, machine) in [
        ("Example VLIW", archs::example_arch(4)),
        ("DSP w/o MAC", dsp_no_mac),
        ("DSP with MAC", archs::dsp_arch(4)),
    ] {
        let gen = CodeGenerator::new(machine).options(CodegenOptions::heuristics_on());
        let (program, report) = gen.compile_function(&f)?;
        let mut sim = Simulator::new(gen.target(), &program);
        for (i, &p) in f.params.iter().enumerate() {
            let layout = aviv_ir::MemLayout::for_function(&f);
            sim.poke(layout.addr(p), args[i]);
        }
        let result = sim.run()?;
        assert_eq!(result.return_value, expected, "codegen must be faithful");
        println!(
            "{name:13}: {} instructions total, loop body {} instructions, \
             {} cycles for n=4, result {:?}",
            report.total_instructions,
            report.blocks[1].instructions,
            result.cycles,
            result.return_value
        );
        results.push((name, report.blocks[1].instructions));
    }
    let without = results[1].1;
    let with = results[2].1;
    println!(
        "\nOn the same two-unit DSP, the MAC complex instruction shrinks the \
         unrolled loop body from {without} to {with} instructions."
    );
    assert!(with <= without);
    Ok(())
}

/// The same machine with its complex instructions removed.
fn strip_complexes(m: aviv_isdl::Machine) -> aviv_isdl::Machine {
    aviv_isdl::Machine::from_parts(
        format!("{}NoMac", m.name),
        m.units().to_vec(),
        m.banks().to_vec(),
        m.buses().to_vec(),
        m.constraints().to_vec(),
        Vec::new(),
    )
    .expect("still valid without complexes")
}
