//! Quickstart: describe a machine in ISDL, compile a small program, look
//! at the assembly, and execute it on the simulator.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use aviv::CodeGenerator;
use aviv_ir::parse_function;
use aviv_isdl::parse_machine;
use aviv_vm::Simulator;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A machine description: two heterogeneous units with private
    //    register files and one shared databus (the paper's Fig. 3 style).
    let machine = parse_machine(
        "machine Quick {
            unit ALU { ops { add, sub, compl } regfile RA[4]; }
            unit MUL { ops { mul, add }        regfile RM[4]; }
            memory DM;
            bus DB capacity 1 connects { RA, RM, DM };
        }",
    )?;
    println!("{}", machine.describe());

    // 2. A source program: one basic block of DSP-ish arithmetic.
    let f = parse_function(
        "func saxpy(a, x, y) {
            t = a * x;
            r = t + y;
            return r;
        }",
    )?;

    // 3. Retargetable compilation: the Split-Node DAG enumerates every
    //    implementation; the covering engine picks units, transfers,
    //    registers, and a schedule concurrently.
    let gen = CodeGenerator::new(machine);
    let (program, report) = gen.compile_function(&f)?;
    println!("{}", program.render(gen.target()));
    println!(
        "block stats: {} DAG nodes -> {} split-node DAG nodes -> {} instructions\n",
        report.blocks[0].orig_nodes, report.blocks[0].sndag_nodes, report.blocks[0].instructions
    );

    // 4. Execute the generated code on the cycle-level simulator.
    let mut sim = Simulator::new(gen.target(), &program);
    sim.set_var("a", 3).set_var("x", 7).set_var("y", 10);
    let result = sim.run()?;
    println!(
        "simulated saxpy(3, 7, 10) = {:?} in {} cycles",
        result.return_value, result.cycles
    );
    assert_eq!(result.return_value, Some(31));
    Ok(())
}
