//! The introspection toolbox: explain a compilation decision by decision,
//! export the Split-Node DAG and the scheduled cover graph as Graphviz,
//! trace the generated code cycle by cycle, and read the utilization
//! statistics — everything an ASIP designer wants when a kernel comes
//! out slower than expected.
//!
//! ```sh
//! cargo run --example introspect > /tmp/introspect.txt
//! ```

use aviv::covergraph_to_dot;
use aviv::{CodeGenerator, CodegenOptions};
use aviv_ir::{parse_function, MemLayout};
use aviv_isdl::{archs, Target};
use aviv_splitdag::{sndag_to_dot, SplitNodeDag};
use aviv_vm::{program_stats, run_traced};

const SRC: &str = "func kernel(a, b, c, d) {
    p = (a + b) * c;
    q = (a - b) * d;
    r = p + q;
    return r;
}";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let f = parse_function(SRC)?;
    let target = Target::new(archs::example_arch(4));

    // 1. The Split-Node DAG, as Graphviz (render with `dot -Tsvg`).
    let sndag = SplitNodeDag::build(&f.blocks[0].dag, &target)?;
    println!("=== Split-Node DAG (graphviz) ===");
    println!("{}", sndag_to_dot(&sndag, &f.blocks[0].dag, &target));

    // 2. Compile and explain the decisions.
    let gen = CodeGenerator::with_target(target.clone()).options(CodegenOptions::heuristics_on());
    let mut syms = f.syms.clone();
    let mut layout = MemLayout::for_function(&f);
    let result = gen.compile_block(&f.blocks[0].dag, &mut syms, &mut layout)?;
    println!("=== Compilation explanation ===");
    println!("{}", result.explain(&target, &syms));

    // 3. The scheduled cover graph, as Graphviz.
    println!("=== Scheduled cover graph (graphviz) ===");
    println!(
        "{}",
        covergraph_to_dot(&result.graph, &target, &syms, Some(&result.schedule))
    );

    // 4. Whole-function program: statistics and an execution trace.
    let (program, _) = gen.compile_function(&f)?;
    println!("=== Program statistics ===");
    println!("{}", program_stats(&target, &program).render(&target));
    let (trace, sim_result) = run_traced(
        &target,
        &program,
        &[("a", 5), ("b", 3), ("c", 2), ("d", 10)],
        &[],
    )?;
    println!("=== Execution trace ===");
    print!("{}", trace.render(40));
    println!(
        "result: {:?} in {} cycles",
        sim_result.return_value, sim_result.cycles
    );
    // (5+3)*2 + (5-3)*10 = 16 + 20 = 36.
    assert_eq!(sim_result.return_value, Some(36));
    Ok(())
}
