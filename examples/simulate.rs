//! The full Fig. 1 toolchain pass: source → compiler → assembler →
//! binary → instruction-level simulator, for a program with real control
//! flow and dynamic memory — then a differential check against the IR
//! interpreter.
//!
//! ```sh
//! cargo run --example simulate
//! ```

use aviv::CodeGenerator;
use aviv_ir::{parse_function, Interpreter, MemLayout};
use aviv_isdl::archs;
use aviv_vm::{assemble, disassemble, Simulator};

const SRC: &str = "func memsum(base, n) {
    s = 0;
    i = 0;
head:
    if (i >= n) goto done;
    s = s + mem[base + i];
    i = i + 1;
    goto head;
done:
    mem[base + n] = s;
    return s;
}";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let f = parse_function(SRC)?;
    let gen = CodeGenerator::new(archs::example_arch(4));

    // Compile.
    let (program, report) = gen.compile_function(&f)?;
    println!("{}", program.render(gen.target()));
    println!(
        "{} instructions across {} blocks",
        report.total_instructions,
        report.blocks.len()
    );

    // Assemble to binary and load it back — the paper's ISDL-generated
    // assembler step.
    let binary = assemble(&program);
    println!("assembled binary: {} bytes", binary.len());
    let loaded = disassemble(&binary)?;
    assert_eq!(program, loaded, "assembler round-trips losslessly");

    // Simulate the loaded binary.
    let base = 4096i64;
    let data = [5i64, 7, 11, 13];
    let mut sim = Simulator::new(gen.target(), &loaded);
    sim.set_var("base", base).set_var("n", data.len() as i64);
    for (i, &v) in data.iter().enumerate() {
        sim.poke(base + i as i64, v);
    }
    let sresult = sim.run()?;

    // Reference interpreter on the same inputs.
    let layout = MemLayout::for_function(&f);
    let mut interp = Interpreter::with_layout(&f, layout);
    interp.args(&[base, data.len() as i64]);
    for (i, &v) in data.iter().enumerate() {
        interp.poke(base + i as i64, v);
    }
    let iresult = interp.run()?;

    println!(
        "simulator: sum = {:?} in {} cycles; interpreter: sum = {:?}",
        sresult.return_value, sresult.cycles, iresult.return_value
    );
    assert_eq!(sresult.return_value, iresult.return_value);
    assert_eq!(
        sresult.memory.get(&(base + data.len() as i64)),
        iresult.memory.get(&(base + data.len() as i64)),
        "the store-back must agree"
    );
    println!("differential check passed: generated code is faithful.");
    Ok(())
}
