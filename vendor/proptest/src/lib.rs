//! Offline vendored stand-in for the `proptest` crate.
//!
//! The build environment has no crates registry, so the workspace vendors
//! the *subset* of the `proptest` 1.x API its test suites use:
//!
//! * the [`proptest!`] macro (with an optional
//!   `#![proptest_config(...)]` header) over `#[test]` functions whose
//!   arguments are drawn `name in strategy`;
//! * strategies: half-open integer ranges, tuples of strategies, and
//!   [`collection::vec`];
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assume!`], and
//!   [`TestCaseError`] for `?`-style failure propagation.
//!
//! Cases are generated from a deterministic per-test seed (FNV hash of
//! the test name). There is **no shrinking**: a failure reports the fully
//! formatted argument values of the failing case instead.

#![warn(missing_docs)]

use std::fmt::Debug;
use std::ops::Range;

/// Runner configuration (the used subset of `proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Why a test case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case failed; the test fails.
    Fail(String),
    /// The case was rejected by [`prop_assume!`]; another case is drawn.
    Reject(String),
}

impl TestCaseError {
    /// A failing-case error with `reason`.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }

    /// A rejected-case error with `reason`.
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(r) => write!(f, "case failed: {r}"),
            TestCaseError::Reject(r) => write!(f, "case rejected: {r}"),
        }
    }
}

/// Deterministic value source handed to strategies.
#[derive(Debug, Clone)]
pub struct ValueSource {
    state: u64,
}

impl ValueSource {
    /// A source seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        ValueSource {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// The next 64 raw bits (SplitMix64).
    pub fn bits(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Something that can generate values for test cases.
pub trait Strategy {
    /// The generated type.
    type Value: Debug;

    /// Draw one value.
    fn generate(&self, src: &mut ValueSource) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, src: &mut ValueSource) -> $t {
                assert!(self.start < self.end, "strategy over empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (src.bits() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, src: &mut ValueSource) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(src),)+)
            }
        }
    )*};
}

tuple_strategy! { (A) (A, B) (A, B, C) (A, B, C, D) }

/// Collection strategies (the used subset of `proptest::collection`).
pub mod collection {
    use super::{Strategy, ValueSource};
    use std::ops::Range;

    /// Strategy for `Vec`s whose length is drawn from a range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// A vector of values from `element` with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, src: &mut ValueSource) -> Vec<S::Value> {
            let len = self.size.generate(src);
            (0..len).map(|_| self.element.generate(src)).collect()
        }
    }
}

/// FNV-1a hash used to derive a per-test seed from its name.
pub fn seed_of(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// The commonly imported surface (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
        Strategy, TestCaseError,
    };

    /// The `prop::` namespace of the upstream prelude.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Assert a condition inside a proptest case, failing the case (not
/// panicking) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Assert equality inside a proptest case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($a),
            stringify!($b),
            a,
            b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a == *b, $($fmt)*);
    }};
}

/// Assert inequality inside a proptest case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a != *b,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($a),
            stringify!($b),
            a
        );
    }};
}

/// Reject the current case (draw another) when the assumption is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject(concat!(
                "assumption failed: ",
                stringify!($cond)
            )));
        }
    };
}

/// Define property tests: `#[test]` functions whose arguments are drawn
/// from strategies.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///     #[test]
///     fn addition_commutes(a in 0i64..100, b in 0i64..100) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg); $($rest)*);
    };
    (@run ($cfg:expr); $($(#[$meta:meta])+ fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])+
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut src = $crate::ValueSource::new($crate::seed_of(stringify!($name)));
                let mut passed: u32 = 0;
                let mut attempts: u32 = 0;
                let max_attempts = config.cases.saturating_mul(20).max(64);
                while passed < config.cases {
                    attempts += 1;
                    assert!(
                        attempts <= max_attempts,
                        "proptest {}: too many rejected cases ({} attempts, {} passed)",
                        stringify!($name),
                        attempts,
                        passed
                    );
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut src);)*
                    let desc = {
                        let mut d = ::std::string::String::new();
                        $(
                            d.push_str(stringify!($arg));
                            d.push_str(" = ");
                            d.push_str(&format!("{:?}", $arg));
                            d.push_str("; ");
                        )*
                        d
                    };
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    match outcome {
                        ::std::result::Result::Ok(()) => passed += 1,
                        ::std::result::Result::Err($crate::TestCaseError::Reject(_)) => {}
                        ::std::result::Result::Err($crate::TestCaseError::Fail(reason)) => {
                            panic!(
                                "proptest {} failed after {} passing case(s)\n  {}\n  with {}",
                                stringify!($name),
                                passed,
                                reason,
                                desc
                            );
                        }
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::ProptestConfig::default()); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::{seed_of, Strategy, ValueSource};

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]
        #[test]
        fn ranges_and_tuples_stay_in_bounds(
            a in 3usize..9,
            pair in (0u32..4, -5i64..5),
            edges in prop::collection::vec((0usize..10, 0usize..10), 0..30),
        ) {
            prop_assert!((3..9).contains(&a));
            prop_assert!(pair.0 < 4);
            prop_assert!((-5..5).contains(&pair.1));
            prop_assert!(edges.len() < 30);
            for (x, y) in &edges {
                prop_assert!(*x < 10 && *y < 10);
            }
        }
    }

    proptest! {
        #[test]
        fn assume_rejects_and_question_mark_works(n in 0u64..100) {
            prop_assume!(n % 2 == 0);
            let even: Result<u64, String> = Ok(n);
            let v = even.map_err(TestCaseError::fail)?;
            prop_assert_eq!(v % 2, 0);
            if n > 1000 {
                return Ok(()); // early exit form used by the workspace
            }
        }
    }

    #[test]
    fn seeds_are_stable_and_distinct() {
        assert_eq!(seed_of("abc"), seed_of("abc"));
        assert_ne!(seed_of("abc"), seed_of("abd"));
    }

    #[test]
    #[should_panic(expected = "proptest always_fails failed")]
    fn failures_panic_with_case_description() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(1))]
            #[test]
            fn always_fails(x in 0u32..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }

    #[test]
    fn generation_is_deterministic() {
        let s = (0usize..100, -50i64..50);
        let mut a = ValueSource::new(1);
        let mut b = ValueSource::new(1);
        for _ in 0..100 {
            assert_eq!(s.generate(&mut a), s.generate(&mut b));
        }
    }
}
