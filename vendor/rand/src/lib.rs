//! Offline vendored stand-in for the `rand` crate.
//!
//! The build environment for this repository has no access to a crates
//! registry, so the workspace vendors the *subset* of the `rand` 0.8 API
//! it actually uses: a seedable deterministic generator ([`rngs::StdRng`]),
//! the [`Rng`] range/float methods, and [`seq::SliceRandom::choose`].
//!
//! The stream is produced by SplitMix64 — deterministic and well mixed,
//! but **not** the same stream as upstream `rand`'s `StdRng`. Everything
//! in this workspace that consumes randomness (randdag, benches) only
//! requires *self*-consistency of seeded streams, which this provides.

#![warn(missing_docs)]

use std::ops::Range;

/// A seedable random number generator (re-exported as [`rngs::StdRng`]).
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Types that can produce random values (the used subset of `rand::Rng`).
pub trait Rng {
    /// The next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniformly random value of `T` (`f64` in `[0, 1)`, full-range
    /// integers).
    fn gen<T: Standard>(&mut self) -> T {
        T::from_bits(self.next_u64())
    }

    /// A uniformly random value in `range` (half-open, must be nonempty).
    fn gen_range<T: UniformRange>(&mut self, range: Range<T>) -> T {
        T::sample(self.next_u64(), range)
    }
}

/// Types [`Rng::gen`] can produce.
pub trait Standard {
    /// Derive a value from 64 random bits.
    fn from_bits(bits: u64) -> Self;
}

impl Standard for f64 {
    fn from_bits(bits: u64) -> f64 {
        // 53 mantissa bits -> [0, 1).
        (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn from_bits(bits: u64) -> u64 {
        bits
    }
}

/// Types [`Rng::gen_range`] can sample.
pub trait UniformRange: Copy {
    /// Map 64 random bits into `range`.
    fn sample(bits: u64, range: Range<Self>) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl UniformRange for $t {
            fn sample(bits: u64, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "gen_range on empty range");
                let span = (range.end as i128 - range.start as i128) as u128;
                let off = (bits as u128) % span;
                (range.start as i128 + off as i128) as $t
            }
        }
    )*};
}

uniform_int!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

/// Seedable generators (the used subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Construct from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    /// Drop-in for `rand::rngs::StdRng` (deterministic SplitMix64 stream).
    pub type StdRng = super::SplitMix64;
}

impl Rng for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        SplitMix64::next_u64(self)
    }
}

impl SeedableRng for SplitMix64 {
    fn seed_from_u64(seed: u64) -> Self {
        // One mixing round so seed=0 and seed=1 streams decorrelate.
        let mut rng = SplitMix64 { state: seed };
        rng.next_u64();
        SplitMix64 { state: rng.state }
    }
}

/// Sequence helpers (the used subset of `rand::seq`).
pub mod seq {
    use super::Rng;

    /// Random element selection on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// A uniformly random element, or `None` on an empty slice.
        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::{rngs::StdRng, Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: i64 = rng.gen_range(-8i64..9);
            assert!((-8..9).contains(&w));
            let f: f64 = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn choose_covers_the_slice() {
        let mut rng = StdRng::seed_from_u64(3);
        let xs = [10, 20, 30];
        let mut seen = [false; 3];
        for _ in 0..200 {
            let &v = xs.choose(&mut rng).unwrap();
            seen[xs.iter().position(|&x| x == v).unwrap()] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
