//! Offline vendored stand-in for the `criterion` crate.
//!
//! The build environment has no crates registry, so the workspace vendors
//! the *subset* of the `criterion` 0.5 API its benches use: `Criterion`,
//! benchmark groups with `bench_function` / `bench_with_input` /
//! `sample_size` / `measurement_time`, [`BenchmarkId`], `Bencher::iter`,
//! [`black_box`], and the [`criterion_group!`] / [`criterion_main!`]
//! macros.
//!
//! Measurement is deliberately simple: a short warm-up, then batches of
//! iterations until the measurement budget (default 1 s) or the sample
//! cap is reached, reporting the mean wall time per iteration. There are
//! no statistics, plots, or saved baselines — `cargo bench` output is a
//! plain table on stdout.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier of one benchmark within a group: a name plus an optional
/// parameter rendered as `name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id consisting of the parameter only.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Things accepted as benchmark ids (`&str` or [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    /// The rendered id.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Timing loop handle passed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    /// Mean wall time per iteration of the last `iter` call.
    mean: Duration,
    iters: u64,
}

impl Bencher {
    /// Run `routine` repeatedly and record its mean wall time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: one untimed call (routines here are heavyweight
        // compiles; long spin-ups would waste the budget).
        black_box(routine());
        let budget = self.measurement_time;
        let cap = self.sample_size.max(1) as u64;
        let start = Instant::now();
        let mut iters: u64 = 0;
        while iters < cap && start.elapsed() < budget {
            black_box(routine());
            iters += 1;
        }
        let total = start.elapsed();
        self.iters = iters.max(1);
        self.mean = total / (self.iters as u32);
    }
}

/// One group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Cap the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Set the measurement budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Benchmark `routine` under `id`.
    pub fn bench_function<R>(&mut self, id: impl IntoBenchmarkId, mut routine: R) -> &mut Self
    where
        R: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_id());
        let mut b = Bencher {
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            mean: Duration::ZERO,
            iters: 0,
        };
        routine(&mut b);
        self.criterion.report(&full, b.mean, b.iters);
        self
    }

    /// Benchmark `routine` applied to `input` under `id`.
    pub fn bench_with_input<I: ?Sized, R>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: R,
    ) -> &mut Self
    where
        R: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| routine(b, input))
    }

    /// End the group (report separator).
    pub fn finish(self) {}
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 20,
            measurement_time: Duration::from_secs(1),
        }
    }

    /// Benchmark `routine` outside any group.
    pub fn bench_function<R>(&mut self, id: impl IntoBenchmarkId, mut routine: R) -> &mut Self
    where
        R: FnMut(&mut Bencher),
    {
        let full = id.into_id();
        let mut b = Bencher {
            sample_size: 20,
            measurement_time: Duration::from_secs(1),
            mean: Duration::ZERO,
            iters: 0,
        };
        routine(&mut b);
        self.report(&full, b.mean, b.iters);
        self
    }

    fn report(&mut self, id: &str, mean: Duration, iters: u64) {
        println!("{id:<56} time: {mean:>12.3?}   ({iters} iters)");
    }
}

/// Collect benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Produce `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("tiny");
        group.sample_size(3);
        group.measurement_time(Duration::from_millis(20));
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("param", 7), &7u64, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
        c.bench_function("free", |b| b.iter(|| black_box(1 + 1)));
    }

    criterion_group!(benches, tiny_bench);

    #[test]
    fn harness_runs_and_terminates() {
        benches();
    }
}
