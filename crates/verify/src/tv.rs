//! Translation validation: statically prove an emitted VLIW program
//! equivalent to its source function, block by block.
//!
//! The validator closes the last trust gap in the pipeline. Lints check
//! the machine, `check` checks the program, the invariant verifier
//! checks intermediate stages — but the final assembly text was only
//! ever spot-checked by *running* it on the `aviv-vm` simulator. This
//! module instead proves, per compile and without executing anything:
//!
//! 1. [`parse_asm`] reads the emitted text back into a structured
//!    program under exactly the grammar `VliwProgram::render` prints
//!    (the round-trip is pinned byte-identical by the test suite);
//! 2. a symbolic evaluator executes both the post-DCE source function
//!    and the parsed assembly over a shared hash-consed term graph —
//!    modeling register banks, bus transfers, named/spill memory
//!    cells, and dynamic memory as a McCarthy store/select array;
//! 3. [`validate_asm`] discharges, for every block, the obligation
//!    that each exit-live value (named variables, dynamic memory,
//!    branch conditions, return values) has a symbolic term in the
//!    emitted code congruent to its source term.
//!
//! Congruence is term identity after normalization: commutative
//! operations sort their operands, `mac` expands to `add(mul(..), ..)`
//! (so a complex-instruction cover matches the basic-op tree it
//! replaced), and complex instructions expand through their declared
//! [`PatTree`]. Findings carry stable `T` codes (registry in
//! `docs/diagnostics.md`) naming the block, variable, and divergent
//! packet.
//!
//! Two modeling caveats, both matching the rest of the reproduction:
//! aliasing between the named-variable address range and the dynamic
//! region is unspecified (the two are modeled as disjoint spaces, as
//! the code generator lowers them), and a complex instruction whose
//! name shadows a basic mnemonic is resolved as the basic operation.

use crate::diag::{Code, Diagnostic};
use aviv_ir::{opt::eliminate_dead_code, Function, MemLayout, Op, Sym, Terminator};
use aviv_isdl::{Machine, PatTree};
use std::collections::HashMap;
use std::fmt;
use std::fmt::Write as _;

// ---------------------------------------------------------------------
// Parsed assembly (a structural mirror of `aviv::emit`, kept free of a
// core-crate dependency so the validator stays an independent observer).
// ---------------------------------------------------------------------

/// A register as printed in assembly: `r{bank}.{index}`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AsmReg {
    /// Register-bank index.
    pub bank: u32,
    /// Register index within the bank.
    pub index: u32,
}

impl fmt::Display for AsmReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}.{}", self.bank, self.index)
    }
}

/// An operand: a register or an immediate (`#v`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AsmOperand {
    /// A register.
    Reg(AsmReg),
    /// An immediate.
    Imm(i64),
}

impl fmt::Display for AsmOperand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmOperand::Reg(r) => write!(f, "{r}"),
            AsmOperand::Imm(v) => write!(f, "#{v}"),
        }
    }
}

/// A resolved slot opcode: a basic operation or a complex instruction
/// (index into the machine's declaration list).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AsmOpcode {
    /// A basic operation.
    Basic(Op),
    /// A complex instruction.
    Complex(usize),
}

/// One functional-unit slot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmSlot {
    /// Unit index (into `Machine::units()`).
    pub unit: usize,
    /// The opcode.
    pub opcode: AsmOpcode,
    /// Destination register.
    pub dst: AsmReg,
    /// Source operands.
    pub args: Vec<AsmOperand>,
}

/// One bus-transfer field.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmXfer {
    /// Bus index (into `Machine::buses()`).
    pub bus: usize,
    /// What moves where.
    pub kind: AsmTransfer,
}

/// The kinds of bus activity, mirroring the emitter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmTransfer {
    /// Register-to-register move.
    Move {
        /// Source.
        from: AsmReg,
        /// Destination.
        to: AsmReg,
    },
    /// Load from a static address (named variable or spill slot).
    LoadVar {
        /// Memory address.
        addr: i64,
        /// Variable name (assembly comment).
        name: String,
        /// Destination register.
        to: AsmReg,
    },
    /// Store to a static address.
    StoreVar {
        /// The stored value.
        value: AsmOperand,
        /// Memory address.
        addr: i64,
        /// Variable name (assembly comment).
        name: String,
    },
    /// Load from a register-held address.
    LoadDyn {
        /// Address register.
        addr: AsmReg,
        /// Destination register.
        to: AsmReg,
    },
    /// Store to a register-held address.
    StoreDyn {
        /// Address register.
        addr: AsmReg,
        /// Value register.
        value: AsmReg,
    },
}

/// A control field (at most one per instruction).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmControl {
    /// Unconditional jump to an instruction index.
    Jump(usize),
    /// Branch to an instruction index when the condition is nonzero.
    BranchNz {
        /// The condition.
        cond: AsmOperand,
        /// Target instruction index.
        target: usize,
    },
    /// Return, optionally with a value.
    Return(Option<AsmOperand>),
}

/// One parsed VLIW instruction.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AsmInstruction {
    /// Unit slots, in textual order (ascending unit index as emitted).
    pub slots: Vec<AsmSlot>,
    /// Bus transfer fields.
    pub xfers: Vec<AsmXfer>,
    /// Control field.
    pub control: Option<AsmControl>,
}

/// A parsed VLIW program.
#[derive(Debug, Clone, PartialEq)]
pub struct AsmProgram {
    /// Machine name from the `; machine` header.
    pub machine_name: String,
    /// The instructions, in order (indices are positions).
    pub instructions: Vec<AsmInstruction>,
    /// Block labels as `(block index, instruction index)`, in textual
    /// order. Only the first block at a shared start carries a label,
    /// exactly as the emitter prints them.
    pub labels: Vec<(usize, usize)>,
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

fn parse_reg(s: &str) -> Result<AsmReg, String> {
    let body = s
        .strip_prefix('r')
        .ok_or_else(|| format!("expected register, got `{s}`"))?;
    let (bank, index) = body
        .split_once('.')
        .ok_or_else(|| format!("expected register `r<bank>.<index>`, got `{s}`"))?;
    Ok(AsmReg {
        bank: bank.parse().map_err(|_| format!("bad bank in `{s}`"))?,
        index: index.parse().map_err(|_| format!("bad index in `{s}`"))?,
    })
}

fn parse_operand(s: &str) -> Result<AsmOperand, String> {
    if let Some(v) = s.strip_prefix('#') {
        Ok(AsmOperand::Imm(
            v.parse().map_err(|_| format!("bad immediate `{s}`"))?,
        ))
    } else {
        parse_reg(s).map(AsmOperand::Reg)
    }
}

/// Resolve a slot mnemonic. Basic mnemonics win over complex names, so
/// the resolution is total and deterministic; the two only collide when
/// a machine names a complex after a basic op, in which case congruence
/// still holds whenever the pattern matches the op (e.g. `mac`).
fn resolve_opname(machine: &Machine, name: &str) -> Option<AsmOpcode> {
    if let Some(op) = Op::from_mnemonic(name) {
        if !op.is_leaf() && !op.is_store() && op != Op::Load {
            return Some(AsmOpcode::Basic(op));
        }
    }
    machine
        .complexes()
        .iter()
        .position(|c| c.name == name)
        .map(AsmOpcode::Complex)
}

fn parse_slot(unit: usize, rest: &str, machine: &Machine) -> Result<AsmSlot, String> {
    let (opname, tail) = rest
        .split_once(' ')
        .ok_or_else(|| format!("malformed slot `{rest}`"))?;
    let mut parts = tail.split(", ");
    let dst = parse_reg(
        parts
            .next()
            .ok_or_else(|| format!("slot `{rest}` has no destination"))?,
    )?;
    let args: Vec<AsmOperand> = parts.map(parse_operand).collect::<Result<_, _>>()?;
    let opcode =
        resolve_opname(machine, opname).ok_or_else(|| format!("unknown mnemonic `{opname}`"))?;
    let want = match opcode {
        AsmOpcode::Basic(op) => op.arity(),
        AsmOpcode::Complex(ci) => machine.complexes()[ci].pattern.arg_count(),
    };
    if args.len() != want {
        return Err(format!(
            "`{opname}` takes {want} operand(s), got {}",
            args.len()
        ));
    }
    Ok(AsmSlot {
        unit,
        opcode,
        dst,
        args,
    })
}

fn parse_xfer(rest: &str) -> Result<AsmTransfer, String> {
    if let Some(r) = rest.strip_prefix("mov ") {
        let (to, from) = r
            .split_once(" <- ")
            .ok_or_else(|| format!("malformed move `{rest}`"))?;
        return Ok(AsmTransfer::Move {
            from: parse_reg(from)?,
            to: parse_reg(to)?,
        });
    }
    if let Some(r) = rest.strip_prefix("ld ") {
        let (to, src) = r
            .split_once(" <- ")
            .ok_or_else(|| format!("malformed load `{rest}`"))?;
        let to = parse_reg(to)?;
        if let Some((bracketed, name)) = src.split_once("] ;") {
            let inner = bracketed
                .strip_prefix('[')
                .ok_or_else(|| format!("malformed load address `{src}`"))?;
            return Ok(AsmTransfer::LoadVar {
                addr: inner
                    .parse()
                    .map_err(|_| format!("bad static load address `{inner}`"))?,
                name: name.to_string(),
                to,
            });
        }
        let inner = src
            .strip_prefix('[')
            .and_then(|s| s.strip_suffix(']'))
            .ok_or_else(|| format!("malformed load address `{src}`"))?;
        return Ok(AsmTransfer::LoadDyn {
            addr: parse_reg(inner)?,
            to,
        });
    }
    if let Some(r) = rest.strip_prefix("st ") {
        let (dst, val) = r
            .split_once(" <- ")
            .ok_or_else(|| format!("malformed store `{rest}`"))?;
        let inner = dst
            .strip_prefix('[')
            .and_then(|s| s.strip_suffix(']'))
            .ok_or_else(|| format!("malformed store address `{dst}`"))?;
        if let Some((value, name)) = val.split_once(" ;") {
            return Ok(AsmTransfer::StoreVar {
                value: parse_operand(value)?,
                addr: inner
                    .parse()
                    .map_err(|_| format!("bad static store address `{inner}`"))?,
                name: name.to_string(),
            });
        }
        return Ok(AsmTransfer::StoreDyn {
            addr: parse_reg(inner)?,
            value: parse_reg(val)?,
        });
    }
    Err(format!("unknown transfer `{rest}`"))
}

fn parse_control(rest: &str) -> Result<AsmControl, String> {
    if let Some(t) = rest.strip_prefix("jmp @") {
        return Ok(AsmControl::Jump(
            t.parse().map_err(|_| format!("bad jump target `{t}`"))?,
        ));
    }
    if let Some(r) = rest.strip_prefix("bnz ") {
        let (cond, t) = r
            .split_once(", @")
            .ok_or_else(|| format!("malformed branch `{rest}`"))?;
        return Ok(AsmControl::BranchNz {
            cond: parse_operand(cond)?,
            target: t.parse().map_err(|_| format!("bad branch target `{t}`"))?,
        });
    }
    if rest == "ret" {
        return Ok(AsmControl::Return(None));
    }
    if let Some(v) = rest.strip_prefix("ret ") {
        return Ok(AsmControl::Return(Some(parse_operand(v)?)));
    }
    Err(format!("unknown control op `{rest}`"))
}

fn parse_field(field: &str, machine: &Machine, inst: &mut AsmInstruction) -> Result<(), String> {
    let (head, rest) = field
        .split_once(": ")
        .ok_or_else(|| format!("malformed field `{field}`"))?;
    if head == "CTRL" {
        if inst.control.is_some() {
            return Err("more than one control field".to_string());
        }
        inst.control = Some(parse_control(rest)?);
        return Ok(());
    }
    if let Some(bus) = machine.bus_by_name(head) {
        inst.xfers.push(AsmXfer {
            bus: bus.index(),
            kind: parse_xfer(rest)?,
        });
        return Ok(());
    }
    if let Some(unit) = machine.unit_by_name(head) {
        let slot = parse_slot(unit.index(), rest, machine)?;
        if inst.slots.iter().any(|s| s.unit == slot.unit) {
            return Err(format!("unit {head} appears twice in one instruction"));
        }
        inst.slots.push(slot);
        return Ok(());
    }
    Err(format!(
        "unknown field `{head}` (not CTRL, a bus, or a unit of this machine)"
    ))
}

/// Parse emitted assembly text back into a structured program.
///
/// The accepted grammar is exactly what `VliwProgram::render` prints;
/// [`render_asm`] inverts this parse byte-identically.
///
/// # Errors
///
/// Returns a single `T001` diagnostic naming the offending line on any
/// deviation from the emitted grammar.
pub fn parse_asm(asm: &str, machine: &Machine) -> Result<AsmProgram, Diagnostic> {
    let mut machine_name: Option<String> = None;
    let mut instructions: Vec<AsmInstruction> = Vec::new();
    let mut labels: Vec<(usize, usize)> = Vec::new();
    for (ln, line) in asm.lines().enumerate() {
        let fail = |msg: String| Diagnostic::new(Code::T001, format!("line {}", ln + 1), msg);
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("; machine ") {
            if machine_name.is_some() {
                return Err(fail("duplicate machine header".to_string()));
            }
            machine_name = Some(rest.to_string());
            continue;
        }
        if line.starts_with(';') {
            continue;
        }
        if let Some(body) = line.strip_prefix("bb") {
            if let Some(b) = body.strip_suffix(':') {
                let b: usize = b
                    .parse()
                    .map_err(|_| fail(format!("bad block label `{line}`")))?;
                labels.push((b, instructions.len()));
                continue;
            }
            return Err(fail(format!("malformed label `{line}`")));
        }
        let trimmed = line.trim_start();
        let (idx, rest) = trimmed
            .split_once(": ")
            .ok_or_else(|| fail(format!("malformed instruction line `{line}`")))?;
        let idx: usize = idx
            .parse()
            .map_err(|_| fail(format!("bad instruction index `{idx}`")))?;
        if idx != instructions.len() {
            return Err(fail(format!(
                "instruction index {idx} out of sequence (expected {})",
                instructions.len()
            )));
        }
        let inner = rest
            .strip_prefix("{ ")
            .and_then(|r| r.strip_suffix(" }"))
            .ok_or_else(|| fail(format!("malformed instruction body `{rest}`")))?;
        let mut inst = AsmInstruction::default();
        if inner != "nop" {
            for field in inner.split(" | ") {
                parse_field(field, machine, &mut inst).map_err(&fail)?;
            }
        }
        instructions.push(inst);
    }
    let machine_name = machine_name
        .ok_or_else(|| Diagnostic::new(Code::T001, "line 1", "missing `; machine` header"))?;
    Ok(AsmProgram {
        machine_name,
        instructions,
        labels,
    })
}

/// Re-render a parsed program in the emitter's grammar.
///
/// For any text produced by `VliwProgram::render`,
/// `render_asm(parse_asm(text)) == text` byte for byte — the pin that
/// locks the grammar the validator depends on.
pub fn render_asm(prog: &AsmProgram, machine: &Machine) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "; machine {}", prog.machine_name);
    let mut li = 0usize;
    for (i, inst) in prog.instructions.iter().enumerate() {
        if li < prog.labels.len() && prog.labels[li].1 == i {
            let _ = writeln!(out, "bb{}:", prog.labels[li].0);
            li += 1;
        }
        let mut fields: Vec<String> = Vec::new();
        for s in &inst.slots {
            let opname = match s.opcode {
                AsmOpcode::Basic(op) => op.mnemonic().to_string(),
                AsmOpcode::Complex(ci) => machine.complexes()[ci].name.clone(),
            };
            let args: Vec<String> = s.args.iter().map(ToString::to_string).collect();
            fields.push(format!(
                "{}: {} {}, {}",
                machine.units()[s.unit].name,
                opname,
                s.dst,
                args.join(", ")
            ));
        }
        for x in &inst.xfers {
            let bus = &machine.buses()[x.bus].name;
            let desc = match &x.kind {
                AsmTransfer::Move { from, to } => format!("mov {to} <- {from}"),
                AsmTransfer::LoadVar { addr, name, to } => {
                    format!("ld {to} <- [{addr}] ;{name}")
                }
                AsmTransfer::StoreVar { value, addr, name } => {
                    format!("st [{addr}] <- {value} ;{name}")
                }
                AsmTransfer::LoadDyn { addr, to } => format!("ld {to} <- [{addr}]"),
                AsmTransfer::StoreDyn { addr, value } => format!("st [{addr}] <- {value}"),
            };
            fields.push(format!("{bus}: {desc}"));
        }
        if let Some(c) = &inst.control {
            let desc = match c {
                AsmControl::Jump(t) => format!("jmp @{t}"),
                AsmControl::BranchNz { cond, target } => format!("bnz {cond}, @{target}"),
                AsmControl::Return(Some(v)) => format!("ret {v}"),
                AsmControl::Return(None) => "ret".to_string(),
            };
            fields.push(format!("CTRL: {desc}"));
        }
        if fields.is_empty() {
            fields.push("nop".to_string());
        }
        let _ = writeln!(out, "  {i:4}: {{ {} }}", fields.join(" | "));
    }
    out
}

// ---------------------------------------------------------------------
// Hash-consed term graph
// ---------------------------------------------------------------------

type TermId = u32;

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum Term {
    /// A literal constant.
    Const(i64),
    /// Block-entry content of the static memory cell at this address.
    Cell(i64),
    /// Block-entry dynamic memory (the root McCarthy array).
    Mem0,
    /// Block-entry register content — undefined by the inter-block value
    /// model, so congruent to nothing but itself.
    EntryReg(u32, u32),
    /// An operation applied to argument terms.
    App(Op, Vec<TermId>),
    /// `select(mem, addr)`.
    Select(TermId, TermId),
    /// `store(mem, addr, value)`.
    Store(TermId, TermId, TermId),
}

#[derive(Default)]
struct Terms {
    nodes: Vec<Term>,
    map: HashMap<Term, TermId>,
}

impl Terms {
    fn intern(&mut self, t: Term) -> TermId {
        if let Some(&id) = self.map.get(&t) {
            return id;
        }
        let id = u32::try_from(self.nodes.len()).expect("term graph exceeds u32 ids");
        self.nodes.push(t.clone());
        self.map.insert(t, id);
        id
    }

    fn konst(&mut self, v: i64) -> TermId {
        self.intern(Term::Const(v))
    }

    fn cell(&mut self, addr: i64) -> TermId {
        self.intern(Term::Cell(addr))
    }

    /// Apply an operation with normalization: `mac` expands to
    /// `add(mul(a, b), c)` and commutative operations sort their first
    /// two operands, so semantically interchangeable covers land on the
    /// same term.
    fn app(&mut self, op: Op, mut args: Vec<TermId>) -> TermId {
        if op == Op::Mac && args.len() == 3 {
            let m = self.app(Op::Mul, vec![args[0], args[1]]);
            return self.app(Op::Add, vec![m, args[2]]);
        }
        if op.is_commutative() && args.len() >= 2 && args[0] > args[1] {
            args.swap(0, 1);
        }
        self.intern(Term::App(op, args))
    }

    /// `select` with the select-of-store simplification: a load of the
    /// exact address just stored yields the stored value, and constant
    /// addresses that provably differ skip past the store.
    fn select(&mut self, mem: TermId, addr: TermId) -> TermId {
        if let Term::Store(m, a, v) = &self.nodes[mem as usize] {
            let (m, a, v) = (*m, *a, *v);
            if a == addr {
                return v;
            }
            if let (Term::Const(x), Term::Const(y)) =
                (&self.nodes[a as usize], &self.nodes[addr as usize])
            {
                if x != y {
                    return self.select(m, addr);
                }
            }
        }
        self.intern(Term::Select(mem, addr))
    }

    fn store(&mut self, mem: TermId, addr: TermId, value: TermId) -> TermId {
        self.intern(Term::Store(mem, addr, value))
    }
}

fn expand_pattern(terms: &mut Terms, pat: &PatTree, args: &[TermId]) -> TermId {
    match pat {
        PatTree::Arg(i) => args[*i],
        PatTree::Op(op, subs) => {
            let sub: Vec<TermId> = subs
                .iter()
                .map(|p| expand_pattern(terms, p, args))
                .collect();
            terms.app(*op, sub)
        }
    }
}

// ---------------------------------------------------------------------
// Source-side symbolic evaluation (mirrors the reference interpreter's
// three-pass block semantics: Input snapshot, id-order evaluation with
// immediate dynamic stores, deferred StoreVar write-backs).
// ---------------------------------------------------------------------

struct SrcExit {
    /// Symbolic value of every DAG node (stores hold a dummy).
    values: Vec<TermId>,
    /// Block-exit static cells, only the written ones.
    cells: HashMap<i64, TermId>,
    /// Block-exit dynamic memory term.
    mem: TermId,
}

fn eval_source_block(terms: &mut Terms, dag: &aviv_ir::BlockDag, layout: &MemLayout) -> SrcExit {
    let dummy = terms.konst(0);
    let mut values: Vec<TermId> = vec![dummy; dag.len()];
    let mut mem = terms.intern(Term::Mem0);
    let mut pending: Vec<(i64, TermId)> = Vec::new();
    for (id, node) in dag.iter() {
        let v = match node.op {
            Op::Input => node.sym.map_or(dummy, |s| terms.cell(layout.addr(s))),
            Op::Const => node.imm.map_or(dummy, |v| terms.konst(v)),
            Op::Load => {
                let a = values[node.args[0].index()];
                terms.select(mem, a)
            }
            Op::Store => {
                let a = values[node.args[0].index()];
                let v = values[node.args[1].index()];
                mem = terms.store(mem, a, v);
                dummy
            }
            Op::StoreVar => {
                if let Some(s) = node.sym {
                    pending.push((layout.addr(s), values[node.args[0].index()]));
                }
                dummy
            }
            op => {
                let args: Vec<TermId> = node.args.iter().map(|a| values[a.index()]).collect();
                terms.app(op, args)
            }
        };
        values[id.index()] = v;
    }
    let mut cells = HashMap::new();
    for (a, v) in pending {
        cells.insert(a, v);
    }
    SrcExit { values, cells, mem }
}

// ---------------------------------------------------------------------
// Assembly-side symbolic evaluation (two-phase packet semantics: latch
// every read before any write commits, exactly like the simulator).
// ---------------------------------------------------------------------

struct CellState {
    term: TermId,
    written: Option<usize>,
}

enum CtrlEval {
    Jump(usize),
    Bnz { cond: TermId, target: usize },
    Ret(Option<TermId>),
}

struct AsmEval<'a> {
    terms: &'a mut Terms,
    machine: &'a Machine,
    block: usize,
    regs: HashMap<(u32, u32), TermId>,
    cells: HashMap<i64, CellState>,
    mem: TermId,
    mem_written: Option<usize>,
    controls: Vec<(usize, CtrlEval)>,
    diags: Vec<Diagnostic>,
}

impl<'a> AsmEval<'a> {
    fn new(terms: &'a mut Terms, machine: &'a Machine, block: usize) -> Self {
        let mem = terms.intern(Term::Mem0);
        AsmEval {
            terms,
            machine,
            block,
            regs: HashMap::new(),
            cells: HashMap::new(),
            mem,
            mem_written: None,
            controls: Vec::new(),
            diags: Vec::new(),
        }
    }

    fn read_reg(&mut self, r: AsmReg, pc: usize) -> TermId {
        let key = (r.bank, r.index);
        if let Some(&t) = self.regs.get(&key) {
            return t;
        }
        // Block-entry register contents are undefined: values cross
        // blocks only through memory, so this is always a defect.
        self.diags.push(Diagnostic::new(
            Code::T006,
            format!("bb{}, packet {pc}", self.block),
            format!("read of {r} before any write in this block"),
        ));
        let t = self.terms.intern(Term::EntryReg(r.bank, r.index));
        self.regs.insert(key, t);
        t
    }

    fn read_operand(&mut self, a: AsmOperand, pc: usize) -> TermId {
        match a {
            AsmOperand::Reg(r) => self.read_reg(r, pc),
            AsmOperand::Imm(v) => self.terms.konst(v),
        }
    }

    fn read_cell(&mut self, addr: i64) -> TermId {
        if let Some(c) = self.cells.get(&addr) {
            return c.term;
        }
        let t = self.terms.cell(addr);
        self.cells.insert(
            addr,
            CellState {
                term: t,
                written: None,
            },
        );
        t
    }

    fn step(&mut self, pc: usize, inst: &AsmInstruction) {
        let mut reg_writes: Vec<((u32, u32), TermId)> = Vec::new();
        let mut cell_writes: Vec<(i64, TermId)> = Vec::new();
        let mut mem_writes: Vec<(TermId, TermId)> = Vec::new();
        for slot in &inst.slots {
            let args: Vec<TermId> = slot
                .args
                .iter()
                .map(|&a| self.read_operand(a, pc))
                .collect();
            let v = match slot.opcode {
                AsmOpcode::Basic(op) => self.terms.app(op, args),
                AsmOpcode::Complex(ci) => {
                    expand_pattern(self.terms, &self.machine.complexes()[ci].pattern, &args)
                }
            };
            reg_writes.push(((slot.dst.bank, slot.dst.index), v));
        }
        for x in &inst.xfers {
            match &x.kind {
                AsmTransfer::Move { from, to } => {
                    let v = self.read_reg(*from, pc);
                    reg_writes.push(((to.bank, to.index), v));
                }
                AsmTransfer::LoadVar { addr, to, .. } => {
                    let v = self.read_cell(*addr);
                    reg_writes.push(((to.bank, to.index), v));
                }
                AsmTransfer::StoreVar { value, addr, .. } => {
                    let v = self.read_operand(*value, pc);
                    cell_writes.push((*addr, v));
                }
                AsmTransfer::LoadDyn { addr, to } => {
                    let a = self.read_reg(*addr, pc);
                    let v = self.terms.select(self.mem, a);
                    reg_writes.push(((to.bank, to.index), v));
                }
                AsmTransfer::StoreDyn { addr, value } => {
                    let a = self.read_reg(*addr, pc);
                    let v = self.read_reg(*value, pc);
                    mem_writes.push((a, v));
                }
            }
        }
        if let Some(c) = &inst.control {
            let ev = match c {
                AsmControl::Jump(t) => CtrlEval::Jump(*t),
                AsmControl::BranchNz { cond, target } => CtrlEval::Bnz {
                    cond: self.read_operand(*cond, pc),
                    target: *target,
                },
                AsmControl::Return(v) => CtrlEval::Ret(v.map(|o| self.read_operand(o, pc))),
            };
            self.controls.push((pc, ev));
        }
        for (k, v) in reg_writes {
            self.regs.insert(k, v);
        }
        for (a, v) in cell_writes {
            self.cells.insert(
                a,
                CellState {
                    term: v,
                    written: Some(pc),
                },
            );
        }
        for (a, v) in mem_writes {
            self.mem = self.terms.store(self.mem, a, v);
            self.mem_written = Some(pc);
        }
    }
}

// ---------------------------------------------------------------------
// Validation driver
// ---------------------------------------------------------------------

/// The outcome of validating one emitted program against its source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TvReport {
    /// Findings; empty means every obligation discharged.
    pub diagnostics: Vec<Diagnostic>,
    /// Number of blocks checked.
    pub blocks: usize,
    /// Number of congruence obligations discharged or refuted.
    pub obligations: usize,
}

impl TvReport {
    /// True when the program validated clean.
    pub fn ok(&self) -> bool {
        self.diagnostics.is_empty()
    }
}

/// Reconstruct every block's first instruction index from the printed
/// labels: the emitter labels only the first block at a shared start,
/// so an unlabeled block inherits its predecessor's start (it emitted
/// nothing and falls through).
fn block_starts(prog: &AsmProgram, n_blocks: usize) -> Result<Vec<usize>, Diagnostic> {
    let n_inst = prog.instructions.len();
    if n_inst == 0 {
        return Err(Diagnostic::new(
            Code::T002,
            "program",
            "emitted program has no instructions",
        ));
    }
    let mut prev: Option<(usize, usize)> = None;
    for &(b, i) in &prog.labels {
        if b >= n_blocks {
            return Err(Diagnostic::new(
                Code::T002,
                format!("bb{b}"),
                format!("label outside the source function ({n_blocks} blocks)"),
            ));
        }
        if i >= n_inst {
            return Err(Diagnostic::new(
                Code::T002,
                format!("bb{b}"),
                "label beyond the last instruction",
            ));
        }
        if let Some((pb, pi)) = prev {
            if b <= pb || i <= pi {
                return Err(Diagnostic::new(
                    Code::T002,
                    format!("bb{b}"),
                    format!("labels out of order (after bb{pb})"),
                ));
            }
        }
        prev = Some((b, i));
    }
    let labeled: HashMap<usize, usize> = prog.labels.iter().copied().collect();
    if labeled.get(&0) != Some(&0) {
        return Err(Diagnostic::new(
            Code::T002,
            "bb0",
            "entry block must be labeled at instruction 0",
        ));
    }
    let mut starts = vec![0usize; n_blocks];
    for b in 1..n_blocks {
        starts[b] = labeled.get(&b).copied().unwrap_or(starts[b - 1]);
    }
    Ok(starts)
}

/// Validate emitted assembly against its source function, statically.
///
/// Re-parses `asm`, replays dead-code elimination on a clone of `f`
/// (mirroring the compile pipeline's default liveness preamble), then
/// symbolically executes both sides block by block and reports every
/// refuted congruence obligation as a `T`-coded [`Diagnostic`].
///
/// An empty `diagnostics` list is a proof — covering every named
/// variable, the dynamic-memory state, every branch condition and
/// return value, and the control structure of every block — that the
/// emitted program computes what the source computes under the
/// inter-block value model.
pub fn validate_asm(f: &Function, asm: &str, machine: &Machine) -> TvReport {
    let mut report = TvReport {
        diagnostics: Vec::new(),
        blocks: 0,
        obligations: 0,
    };
    let prog = match parse_asm(asm, machine) {
        Ok(p) => p,
        Err(d) => {
            report.diagnostics.push(d);
            return report;
        }
    };
    if prog.machine_name != machine.name {
        report.diagnostics.push(Diagnostic::new(
            Code::T001,
            "header",
            format!(
                "assembly targets machine `{}`, expected `{}`",
                prog.machine_name, machine.name
            ),
        ));
        return report;
    }
    // The compiled artifact corresponds to the post-DCE source: replay
    // the pipeline's liveness preamble (every named variable observable).
    let mut src = f.clone();
    let observable: Vec<Sym> = src.syms.iter().map(|(s, _)| s).collect();
    let _ = eliminate_dead_code(&mut src, &observable);
    let layout = MemLayout::for_function(&src);
    let starts = match block_starts(&prog, src.blocks.len()) {
        Ok(s) => s,
        Err(d) => {
            report.diagnostics.push(d);
            return report;
        }
    };
    let mut terms = Terms::default();
    for b in 0..src.blocks.len() {
        let end = if b + 1 < src.blocks.len() {
            starts[b + 1]
        } else {
            prog.instructions.len()
        };
        validate_block(
            &mut terms,
            machine,
            &src,
            b,
            &layout,
            &prog,
            &starts,
            starts[b]..end,
            &mut report,
        );
        report.blocks += 1;
    }
    report
}

#[allow(clippy::too_many_arguments)]
fn validate_block(
    terms: &mut Terms,
    machine: &Machine,
    src: &Function,
    b: usize,
    layout: &MemLayout,
    prog: &AsmProgram,
    starts: &[usize],
    range: std::ops::Range<usize>,
    report: &mut TvReport,
) {
    let block = &src.blocks[b];
    let src_exit = eval_source_block(terms, &block.dag, layout);
    let mut eval = AsmEval::new(terms, machine, b);
    for pc in range.clone() {
        eval.step(pc, &prog.instructions[pc]);
    }
    let AsmEval {
        cells: asm_cells,
        mem: asm_mem,
        mem_written,
        controls,
        diags,
        ..
    } = eval;
    report.diagnostics.extend(diags);

    // Control structure and control-operand congruence.
    let end = range.end;
    match &block.term {
        Terminator::Jump(t) => {
            let ti = t.index();
            if ti == b + 1 {
                if !controls.is_empty() {
                    report.diagnostics.push(Diagnostic::new(
                        Code::T002,
                        format!("bb{b}"),
                        "fall-through block must not emit a control op",
                    ));
                }
            } else {
                let want = starts[ti];
                match controls.as_slice() {
                    [(pc, CtrlEval::Jump(tgt))] if pc + 1 == end && *tgt == want => {}
                    _ => report.diagnostics.push(Diagnostic::new(
                        Code::T002,
                        format!("bb{b}"),
                        format!("expected a final `jmp @{want}` (to bb{ti})"),
                    )),
                }
            }
        }
        Terminator::Branch {
            cond,
            if_true,
            if_false,
        } => {
            let want_t = starts[if_true.index()];
            let shape_ok = if if_false.index() == b + 1 {
                matches!(controls.as_slice(),
                    [(pc, CtrlEval::Bnz { target, .. })] if pc + 1 == end && *target == want_t)
            } else {
                let want_f = starts[if_false.index()];
                matches!(controls.as_slice(),
                    [(p1, CtrlEval::Bnz { target, .. }), (p2, CtrlEval::Jump(t2))]
                        if p1 + 2 == end && p2 + 1 == end && *target == want_t && *t2 == want_f)
            };
            if shape_ok {
                if let Some((pc, CtrlEval::Bnz { cond: asm_c, .. })) = controls.first() {
                    report.obligations += 1;
                    if src_exit.values[cond.index()] != *asm_c {
                        report.diagnostics.push(Diagnostic::new(
                            Code::T005,
                            format!("bb{b}, packet {pc}"),
                            "branch condition diverges from its source term",
                        ));
                    }
                }
            } else {
                report.diagnostics.push(Diagnostic::new(
                    Code::T002,
                    format!("bb{b}"),
                    format!(
                        "expected `bnz .., @{want_t}` (to bb{}) closing the block",
                        if_true.index()
                    ),
                ));
            }
        }
        Terminator::Return(v) => match (controls.as_slice(), v) {
            ([(pc, CtrlEval::Ret(av))], sv) if pc + 1 == end => match (sv, av) {
                (None, None) => {}
                (Some(n), Some(a)) => {
                    report.obligations += 1;
                    if src_exit.values[n.index()] != *a {
                        report.diagnostics.push(Diagnostic::new(
                            Code::T005,
                            format!("bb{b}, packet {pc}"),
                            "return value diverges from its source term",
                        ));
                    }
                }
                _ => report.diagnostics.push(Diagnostic::new(
                    Code::T002,
                    format!("bb{b}"),
                    "return operand presence differs from the source",
                )),
            },
            _ => report.diagnostics.push(Diagnostic::new(
                Code::T002,
                format!("bb{b}"),
                "expected a final `ret` closing the block",
            )),
        },
    }

    // Named-variable obligations: every non-internal variable's
    // block-exit cell must be congruent. Spill slots (`__` names) are
    // compiler-internal and unobservable.
    for (sym, name) in src.syms.iter() {
        if name.starts_with("__") {
            continue;
        }
        let addr = layout.addr(sym);
        let s = src_exit
            .cells
            .get(&addr)
            .copied()
            .unwrap_or_else(|| terms.cell(addr));
        let (a, wpc) = asm_cells
            .get(&addr)
            .map_or_else(|| (terms.cell(addr), None), |c| (c.term, c.written));
        report.obligations += 1;
        if s != a {
            let at = wpc.map_or_else(
                || "never stored by the emitted code".to_string(),
                |pc| format!("first divergent packet {pc}"),
            );
            report.diagnostics.push(Diagnostic::new(
                Code::T003,
                format!("bb{b}, variable {name}"),
                format!("block-exit value diverges from its source term ({at})"),
            ));
        }
    }

    // Dynamic-memory obligation.
    report.obligations += 1;
    if src_exit.mem != asm_mem {
        let at = mem_written.map_or_else(
            || "no dynamic store emitted".to_string(),
            |pc| format!("first divergent packet {pc}"),
        );
        report.diagnostics.push(Diagnostic::new(
            Code::T004,
            format!("bb{b}"),
            format!("dynamic-memory state diverges from its source term ({at})"),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aviv_ir::parse_function;
    use aviv_isdl::MachineBuilder;

    fn tiny_machine() -> Machine {
        let mut mb = MachineBuilder::new("M");
        let u1 = mb.unit("U1", &[Op::Add, Op::Sub, Op::Mul, Op::CmpGt], 4);
        mb.bus("DB", &[u1], true, 1);
        mb.build().unwrap()
    }

    const TINY_ASM: &str = "; machine M\n\
bb0:\n\
\x20    0: { DB: ld r0.0 <- [0] ;a }\n\
\x20    1: { DB: ld r0.1 <- [1] ;b }\n\
\x20    2: { U1: mul r0.2, r0.0, r0.1 }\n\
\x20    3: { DB: st [3] <- r0.2 ;x }\n\
\x20    4: { CTRL: ret r0.2 }\n";

    fn tiny_function() -> Function {
        parse_function("func f(a, b) { x = a * b; return x; }").unwrap()
    }

    #[test]
    fn handwritten_program_validates() {
        let m = tiny_machine();
        let r = validate_asm(&tiny_function(), TINY_ASM, &m);
        assert!(r.ok(), "{:?}", r.diagnostics);
        assert_eq!(r.blocks, 1);
        assert!(r.obligations >= 4); // x, a, b, mem, ret
    }

    #[test]
    fn parse_render_round_trips_bytes() {
        let m = tiny_machine();
        let p = parse_asm(TINY_ASM, &m).unwrap();
        assert_eq!(render_asm(&p, &m), TINY_ASM);
    }

    #[test]
    fn swapped_noncommutative_operands_are_caught() {
        let m = tiny_machine();
        let f = parse_function("func f(a, b) { x = a - b; return x; }").unwrap();
        let asm = TINY_ASM.replace("mul r0.2, r0.0, r0.1", "sub r0.2, r0.1, r0.0");
        let r = validate_asm(&f, &asm, &m);
        assert!(
            r.diagnostics.iter().any(|d| d.code == Code::T003),
            "{:?}",
            r.diagnostics
        );
        assert!(r.diagnostics.iter().any(|d| d.code == Code::T005));
    }

    #[test]
    fn commutative_operand_swap_is_congruent() {
        let m = tiny_machine();
        let asm = TINY_ASM.replace("mul r0.2, r0.0, r0.1", "mul r0.2, r0.1, r0.0");
        let r = validate_asm(&tiny_function(), &asm, &m);
        assert!(r.ok(), "{:?}", r.diagnostics);
    }

    #[test]
    fn dropped_transfer_is_caught() {
        let m = tiny_machine();
        let asm = TINY_ASM.replace("{ DB: st [3] <- r0.2 ;x }", "{ nop }");
        let r = validate_asm(&tiny_function(), &asm, &m);
        assert!(
            r.diagnostics.iter().any(|d| d.code == Code::T003),
            "{:?}",
            r.diagnostics
        );
    }

    #[test]
    fn uninitialized_register_read_is_caught() {
        let m = tiny_machine();
        let asm = TINY_ASM.replace("CTRL: ret r0.2", "CTRL: ret r0.3");
        let r = validate_asm(&tiny_function(), &asm, &m);
        assert!(r.diagnostics.iter().any(|d| d.code == Code::T006));
        assert!(r.diagnostics.iter().any(|d| d.code == Code::T005));
    }

    #[test]
    fn garbage_fails_to_parse_with_t001() {
        let m = tiny_machine();
        let r = validate_asm(&tiny_function(), "; machine M\n     0: { XX: frob }\n", &m);
        assert_eq!(r.diagnostics.len(), 1);
        assert_eq!(r.diagnostics[0].code, Code::T001);
    }

    #[test]
    fn mac_normalizes_to_add_mul() {
        let mut t = Terms::default();
        let (a, b, c) = (t.konst(1), t.konst(2), t.konst(3));
        let mac = t.app(Op::Mac, vec![a, b, c]);
        let mul = t.app(Op::Mul, vec![a, b]);
        let add = t.app(Op::Add, vec![mul, c]);
        assert_eq!(mac, add);
    }

    #[test]
    fn select_of_store_simplifies() {
        let mut t = Terms::default();
        let m0 = t.intern(Term::Mem0);
        let (a, v) = (t.konst(2000), t.konst(7));
        let m1 = t.store(m0, a, v);
        assert_eq!(t.select(m1, a), v);
        let b = t.konst(3000);
        let through = t.select(m1, b);
        assert_eq!(through, t.select(m0, b));
    }
}
