//! Static analysis of source programs: the `P` diagnostic family.
//!
//! [`check_program`] is the program-side counterpart of the machine lint
//! in [`crate::lint`]: it runs the global dataflow analyses from
//! [`aviv_ir::dataflow`] over a parsed [`Function`] and reports defects
//! as stable-coded [`Diagnostic`]s:
//!
//! | code | severity | finding |
//! |------|----------|---------|
//! | P001 | error    | use of a possibly-uninitialized variable |
//! | P002 | warning  | unreachable basic block |
//! | P003 | warning  | dead store (overwritten before any read) |
//! | P004 | warning  | unused parameter |
//! | P005 | warning  | redundant self-copy |
//! | P006 | warning  | branch on a constant condition |
//!
//! Reads follow the interpreter's block semantics: an `Input` leaf
//! observes the variable's value at *block entry*, so a store in the same
//! block never satisfies a read in that block. Dead-store analysis
//! treats every named variable as observable at function exit (the
//! compiler's memory-image contract), so only stores shadowed on every
//! path are flagged.

use crate::diag::{Code, Diagnostic};
use aviv_ir::dataflow;
use aviv_ir::{BlockDag, Function, NodeId, Op, Terminator};

/// Statically check a program, returning one diagnostic per finding.
///
/// Diagnostics are grouped by code (P001 first) and, within a code, by
/// block then symbol order — deterministic for snapshot tests.
pub fn check_program(f: &Function) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let reachable = dataflow::reachable_blocks(f);
    let facts = dataflow::block_facts(f);

    // P001: a reachable block reads a variable not definitely assigned
    // on every path into it (parameters count as assigned at entry).
    let da = dataflow::definite_assignment(f);
    for (bid, _) in f.iter() {
        let bi = bid.index();
        if !reachable.contains(bi) {
            continue;
        }
        for s in facts.reads[bi].iter() {
            if !da.on_entry[bi].contains(s) {
                let name = f.syms.name(aviv_ir::Sym(s as u32));
                diags.push(Diagnostic::new(
                    Code::P001,
                    block_name(f, bi),
                    format!("`{name}` may be read before any assignment"),
                ));
            }
        }
    }

    // P002: blocks no path from the entry reaches.
    for (bid, _) in f.iter() {
        if !reachable.contains(bid.index()) {
            diags.push(Diagnostic::new(
                Code::P002,
                block_name(f, bid.index()),
                "unreachable: no path from the function entry".to_string(),
            ));
        }
    }

    // P003: stores whose value is rewritten on every path before any
    // read. Every named variable is exit-live (the caller may inspect
    // the memory image), so this only flags genuinely shadowed stores.
    let lv = dataflow::liveness(f, &dataflow::all_syms(f));
    for (bid, b) in f.iter() {
        let bi = bid.index();
        if !reachable.contains(bi) {
            continue;
        }
        let store_syms: Vec<_> = b
            .dag
            .stores()
            .iter()
            .filter_map(|&s| {
                let n = b.dag.node(s);
                (n.op == Op::StoreVar).then(|| n.sym.expect("store names a variable"))
            })
            .collect();
        for (i, &sym) in store_syms.iter().enumerate() {
            let shadowed_in_block = store_syms[i + 1..].contains(&sym);
            if shadowed_in_block || !lv.live_out[bi].contains(sym.index()) {
                let name = f.syms.name(sym);
                diags.push(Diagnostic::new(
                    Code::P003,
                    block_name(f, bi),
                    format!("value stored to `{name}` is overwritten before it is read"),
                ));
            }
        }
    }

    // P004: parameters whose incoming value no reachable read can
    // observe (derived from def-use chains, so a parameter that is
    // always overwritten before being read is also flagged).
    let rd = dataflow::reaching_defs(f);
    let du = dataflow::def_use(f, &rd);
    for (i, site) in rd.sites.iter().enumerate() {
        if site.site.is_some() {
            continue;
        }
        let used = du.uses[i].iter().any(|b| reachable.contains(b.index()));
        if !used {
            let name = f.syms.name(site.sym);
            diags.push(Diagnostic::new(
                Code::P004,
                format!("parameter `{name}`"),
                "never read".to_string(),
            ));
        }
    }

    // P005: `StoreVar(v)` whose operand is `Input(v)` — a self-copy.
    for (bid, b) in f.iter() {
        let bi = bid.index();
        if !reachable.contains(bi) {
            continue;
        }
        for &s in b.dag.stores() {
            let n = b.dag.node(s);
            if n.op != Op::StoreVar {
                continue;
            }
            let src = b.dag.node(n.args[0]);
            if src.op == Op::Input && src.sym == n.sym {
                let name = f.syms.name(n.sym.expect("store names a variable"));
                diags.push(Diagnostic::new(
                    Code::P005,
                    block_name(f, bi),
                    format!("`{name}` is stored back into itself"),
                ));
            }
        }
    }

    // P006: branch conditions that fold to a constant.
    for (bid, b) in f.iter() {
        let bi = bid.index();
        if !reachable.contains(bi) {
            continue;
        }
        if let Terminator::Branch { cond, .. } = b.term {
            if let Some(v) = const_value(&b.dag, cond) {
                let taken = if v != 0 { "always" } else { "never" };
                diags.push(Diagnostic::new(
                    Code::P006,
                    block_name(f, bi),
                    format!("branch condition is constant ({v}): the branch is {taken} taken"),
                ));
            }
        }
    }

    diags.sort_by_key(|d| d.code);
    diags
}

/// Human-readable block reference: the source label when the block has
/// one, otherwise its index.
fn block_name(f: &Function, bi: usize) -> String {
    match &f.blocks[bi].label {
        Some(l) => format!("block '{}'", f.syms.name(*l)),
        None => format!("block bb{bi}"),
    }
}

/// Evaluate a pure node to a constant if every transitive operand is
/// constant. `Input`/`Load` nodes (and stores) never fold.
fn const_value(dag: &BlockDag, node: NodeId) -> Option<i64> {
    let mut memo: Vec<Option<Option<i64>>> = vec![None; dag.len()];
    fn go(dag: &BlockDag, n: NodeId, memo: &mut Vec<Option<Option<i64>>>) -> Option<i64> {
        if let Some(v) = memo[n.index()] {
            return v;
        }
        let node = dag.node(n);
        let v = match node.op {
            Op::Const => Some(node.imm.expect("const carries a value")),
            Op::Input | Op::Load | Op::Store | Op::StoreVar => None,
            op => {
                let args: Option<Vec<i64>> = node.args.iter().map(|&a| go(dag, a, memo)).collect();
                args.map(|a| op.eval(&a))
            }
        };
        memo[n.index()] = Some(v);
        v
    }
    go(dag, node, &mut memo)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aviv_ir::parse_function;

    fn codes(src: &str) -> Vec<Code> {
        check_program(&parse_function(src).unwrap())
            .into_iter()
            .map(|d| d.code)
            .collect()
    }

    #[test]
    fn clean_program_has_no_findings() {
        assert_eq!(
            codes("func f(a, b) { x = a * b + 1; return x; }"),
            Vec::<Code>::new()
        );
    }

    #[test]
    fn uninitialized_use_is_an_error() {
        let diags = check_program(
            &parse_function(
                "func f(a) {
                    if (a > 0) goto set;
                    goto join;
                set:
                    x = a * 2;
                    goto join;
                join:
                    y = x + 1;
                    return y;
                }",
            )
            .unwrap(),
        );
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, Code::P001);
        assert!(diags[0].message.contains("`x`"), "{}", diags[0].message);
    }

    #[test]
    fn same_block_def_does_not_satisfy_entry_read() {
        // `x` is assigned and read in one block, but Input reads see the
        // block-entry value: this is still a possibly-uninitialized use.
        // The parser resolves same-block reads through local bindings,
        // so exercise the semantics through a loop instead: the first
        // iteration reads t before any assignment.
        let c = codes(
            "func f(n) {
            head:
                t = n + 1;
                if (t > 0) goto head;
                return t;
            }",
        );
        assert_eq!(c, Vec::<Code>::new(), "t is bound locally before use");
    }

    #[test]
    fn dead_store_cross_block() {
        let c = codes(
            "func f(a) {
                x = a + 1;
                goto over;
            over:
                x = 2;
                return x + a;
            }",
        );
        assert_eq!(c, vec![Code::P003]);
    }

    #[test]
    fn unreachable_block_warns() {
        let c = codes(
            "func f(a) {
                return a;
            dead:
                x = a + 1;
                return x;
            }",
        );
        assert_eq!(c, vec![Code::P002]);
    }

    #[test]
    fn unused_parameter_warns() {
        let c = codes("func f(a, b) { return a; }");
        assert_eq!(c, vec![Code::P004]);
        // Overwritten-then-read parameters are still unused.
        let c = codes("func f(a, b) { b = a + 1; return b; }");
        assert_eq!(c, vec![Code::P004]);
    }

    #[test]
    fn self_copy_warns() {
        let c = codes("func f(x) { x = x; return x; }");
        assert_eq!(c, vec![Code::P005]);
    }

    #[test]
    fn constant_branch_warns() {
        let c = codes(
            "func f(a) {
                if (1 > 0) goto yes;
                return 0;
            yes:
                return a;
            }",
        );
        assert_eq!(c, vec![Code::P006]);
        // Deep folds count too.
        let c = codes(
            "func f(a) {
                if ((2 + 3) * 4 > 19) goto yes;
                return 0;
            yes:
                return a;
            }",
        );
        assert_eq!(c, vec![Code::P006]);
    }

    #[test]
    fn diagnostics_are_grouped_by_code() {
        let diags = check_program(
            &parse_function(
                "func f(a, b) {
                    y = x + 1;
                    return y;
                dead:
                    return 0;
                }",
            )
            .unwrap(),
        );
        let codes: Vec<Code> = diags.iter().map(|d| d.code).collect();
        assert_eq!(codes, vec![Code::P001, Code::P002, Code::P004, Code::P004]);
    }
}
