//! The structured-diagnostic framework shared by the ISDL lint and the
//! pipeline invariant verifier.
//!
//! A [`Diagnostic`] pairs a stable [`Code`] with the machine element (or
//! pipeline location) it refers to and a one-line message. Codes are
//! namespaced by pass: `E`/`W` for machine-description lints, `V` for
//! pipeline invariants, `P` for source-program checks, `M` for
//! machine×program feasibility analysis, `T` for translation
//! validation of emitted assembly. The registry is
//! documented in `docs/diagnostics.md`; codes are append-only so tooling
//! can match on them.

use std::fmt;
use std::str::FromStr;

/// How serious a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// The subject is broken: the machine cannot compile some programs,
    /// or the pipeline violated an invariant the paper guarantees.
    Error,
    /// The subject is suspicious but usable.
    Warning,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Error => write!(f, "error"),
            Severity::Warning => write!(f, "warning"),
        }
    }
}

/// Stable diagnostic codes. See `docs/diagnostics.md` for the registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Code {
    /// Operation referenced by the machine with no implementing unit.
    E001,
    /// Register bank cannot exchange values with data memory.
    E002,
    /// Complex-instruction pattern that can never match any DAG.
    E003,
    /// Degenerate hardware resource (empty unit, zero-size bank, …).
    E004,
    /// Dead or shadowed data-transfer path.
    W001,
    /// Bank smaller than an instruction's register-operand needs.
    W002,
    /// Constraint that can never trigger.
    W003,
    /// Duplicate capability (op or complex listed twice).
    W004,
    /// Covering broke exactly-once: an IR op is covered by zero or
    /// several cover nodes, or the schedule dropped/duplicated a node.
    V001,
    /// Missing transfer: an operand is consumed from the wrong bank.
    V002,
    /// A scheduled step is not a pairwise-parallel clique.
    V003,
    /// Per-bank register pressure exceeds bank capacity at some step.
    V004,
    /// Emitted assembly reads a register before any write defines it.
    V005,
    /// Register allocation violation (bank, range, or live overlap).
    V006,
    /// Split-node alternative mapped to an incapable execution resource.
    V007,
    /// Malformed emitted program structure (branch target, slot, bus).
    V008,
    /// Use of a possibly-uninitialized variable: some path reaches the
    /// read without assigning it.
    P001,
    /// Basic block unreachable from the function entry.
    P002,
    /// Dead store: the value is overwritten on every path before any
    /// read observes it.
    P003,
    /// Function parameter whose incoming value is never read.
    P004,
    /// Redundant copy: a variable is stored back into itself.
    P005,
    /// Branch whose condition folds to a constant.
    P006,
    /// Lowered control flow is inconsistent: a pending branch target
    /// refers to a non-control instruction or an unknown block.
    C001,
    /// A block live-out value (branch condition or return value) was
    /// never materialized by covering.
    C002,
    /// Cover-graph construction received malformed input: a constant
    /// without an immediate, a variable node without a symbol, a node
    /// without a chosen alternative, or a machine with no transfer path
    /// between a used bank and memory.
    C003,
    /// The covering engine wedged or its spill machinery hit a defect:
    /// uncovered nodes with nothing ready, a spill victim producing no
    /// value, or an empty candidate group set.
    C004,
    /// A deterministic fault injected by the test harness
    /// (`CodegenOptions::faults`) was converted into a diagnostic.
    C005,
    /// Machine×program feasibility: a program operation has no
    /// implementing unit and no complex pattern covers it on the target
    /// machine, so covering must fail before it starts.
    M001,
    /// Machine×program feasibility: a def→use value route is missing —
    /// no transfer path (even via a memory round trip) connects any bank
    /// the producer can write to any bank the consumer can read, or the
    /// machine has no memory port at all for a value that must cross the
    /// memory boundary.
    M002,
    /// Complex-instruction alternative shadowed by another declaration
    /// with identical shape on the same unit at strictly lower cost: the
    /// costlier alternative can never win.
    W005,
    /// Emission received a malformed schedule or allocation: a unit
    /// double-booked within one instruction, an immediate where a
    /// register operand is required, or a cover node with no allocated
    /// register.
    C006,
    /// Translation validation: the emitted assembly text does not parse
    /// back under the grammar `VliwProgram::render` produces.
    T001,
    /// Translation validation: control structure of the emitted program
    /// disagrees with the source CFG (block boundaries, jump/branch
    /// targets, a stray or missing control field).
    T002,
    /// Translation validation: a named variable's value at block exit is
    /// not congruent to its source term.
    T003,
    /// Translation validation: the dynamic-memory state at block exit is
    /// not congruent to its source term.
    T004,
    /// Translation validation: a branch condition or return value is not
    /// congruent to its source term.
    T005,
    /// Translation validation: the emitted code reads a register no
    /// earlier packet of the block wrote (block-entry register contents
    /// are undefined; values cross blocks only through memory).
    T006,
    /// The compile was cancelled cooperatively: a `CancelToken` threaded
    /// through the compile budget was fired (by a client request, a
    /// dropped connection, or a server shutdown) and the in-flight
    /// search aborted at its next budget check.
    C007,
}

impl Code {
    /// The code as printed, e.g. `"E001"`.
    pub fn as_str(self) -> &'static str {
        match self {
            Code::E001 => "E001",
            Code::E002 => "E002",
            Code::E003 => "E003",
            Code::E004 => "E004",
            Code::W001 => "W001",
            Code::W002 => "W002",
            Code::W003 => "W003",
            Code::W004 => "W004",
            Code::V001 => "V001",
            Code::V002 => "V002",
            Code::V003 => "V003",
            Code::V004 => "V004",
            Code::V005 => "V005",
            Code::V006 => "V006",
            Code::V007 => "V007",
            Code::V008 => "V008",
            Code::P001 => "P001",
            Code::P002 => "P002",
            Code::P003 => "P003",
            Code::P004 => "P004",
            Code::P005 => "P005",
            Code::P006 => "P006",
            Code::C001 => "C001",
            Code::C002 => "C002",
            Code::C003 => "C003",
            Code::C004 => "C004",
            Code::C005 => "C005",
            Code::M001 => "M001",
            Code::M002 => "M002",
            Code::W005 => "W005",
            Code::C006 => "C006",
            Code::T001 => "T001",
            Code::T002 => "T002",
            Code::T003 => "T003",
            Code::T004 => "T004",
            Code::T005 => "T005",
            Code::T006 => "T006",
            Code::C007 => "C007",
        }
    }

    /// Every code's fixed severity. `W` codes warn; everything else is
    /// an error.
    pub fn severity(self) -> Severity {
        match self {
            Code::W001
            | Code::W002
            | Code::W003
            | Code::W004
            | Code::W005
            | Code::P002
            | Code::P003
            | Code::P004
            | Code::P005
            | Code::P006 => Severity::Warning,
            _ => Severity::Error,
        }
    }

    /// One-line explanation of what the code means, independent of any
    /// particular finding.
    pub fn explain(self) -> &'static str {
        match self {
            Code::E001 => "an operation is referenced but no functional unit implements it",
            Code::E002 => "a register bank has no data-transfer path to or from memory",
            Code::E003 => "a complex-instruction pattern can never match any expression DAG",
            Code::E004 => "a hardware resource is degenerate and unusable",
            Code::W001 => "a bus adds no connectivity beyond another bus and will never carry a transfer another could not",
            Code::W002 => "a register bank is smaller than the operand needs of an instruction executing on it",
            Code::W003 => "an instruction-legality constraint can never trigger",
            Code::W004 => "a capability is listed more than once",
            Code::V001 => "covering must select exactly one implementation for every IR operation and schedule every live cover node exactly once, after its dependencies",
            Code::V002 => "every cross-bank producer→consumer edge must carry an explicit transfer node",
            Code::V003 => "operations grouped into one VLIW step must be pairwise parallel",
            Code::V004 => "covering must keep per-bank register pressure within bank capacity",
            Code::V005 => "emitted assembly must define every register before reading it",
            Code::V006 => "detailed register allocation must respect banks, sizes, and lifetimes",
            Code::V007 => "every split-node alternative must map to an execution resource capable of the operation",
            Code::V008 => "the emitted VLIW program must be structurally well-formed",
            Code::P001 => "a variable is read on a path that never assigns it, so the value is whatever the memory cell held",
            Code::P002 => "a basic block can never execute: no path from the function entry reaches it",
            Code::P003 => "a stored value is overwritten on every path before anything reads it",
            Code::P004 => "a function parameter's incoming value is never read",
            Code::P005 => "a variable is stored back into itself, which moves no data",
            Code::P006 => "a branch condition evaluates to the same constant on every execution",
            Code::C001 => "control-flow lowering must attach every pending branch target to a control instruction of a known block",
            Code::C002 => "covering must leave every branch condition and return value in a register or immediate at block end",
            Code::C003 => "cover-graph construction requires well-formed DAG nodes, chosen alternatives, and memory-reachable banks",
            Code::C004 => "the covering engine must always have a ready node, a candidate group, and an evictable spill victim while work remains",
            Code::C005 => "a fault injected by the deterministic fault harness surfaced as a structured diagnostic instead of a crash",
            Code::M001 => "a program operation has no implementing unit and no complex pattern covering it on the target machine",
            Code::M002 => "no data-transfer route (even via a memory round trip) can carry a value from its producer's banks to its consumer's banks",
            Code::W005 => "a complex alternative is dominated by an identical-shape declaration on the same unit at strictly lower cost",
            Code::C006 => "emission must receive a well-formed schedule and allocation: one slot per unit per instruction, register operands where the field requires a register, and an allocated register for every value-producing cover node",
            Code::T001 => "emitted assembly must parse back under the grammar the emitter prints",
            Code::T002 => "the emitted program's control structure must mirror the source CFG block for block",
            Code::T003 => "every named variable's block-exit value in the emitted code must be congruent to its source term",
            Code::T004 => "the dynamic-memory state at block exit in the emitted code must be congruent to its source term",
            Code::T005 => "every branch condition and return value in the emitted code must be congruent to its source term",
            Code::T006 => "emitted code must write a register before reading it within the block; block-entry register contents are undefined",
            Code::C007 => "a cancelled compile must abort at its next budget check without caching or emitting anything",
        }
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One finding: a coded defect at a specific machine element or pipeline
/// location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// The stable code identifying the class of defect.
    pub code: Code,
    /// The machine element or pipeline location the finding refers to,
    /// e.g. `"bank RF2"` or `"block 1, step 3"`.
    pub element: String,
    /// What is wrong with this particular element.
    pub message: String,
}

impl Diagnostic {
    /// Build a diagnostic.
    pub fn new(code: Code, element: impl Into<String>, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            code,
            element: element.into(),
            message: message.into(),
        }
    }

    /// The code's severity.
    pub fn severity(&self) -> Severity {
        self.code.severity()
    }

    /// One finding as a JSON object (hand-rolled; no serde in tree).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"code\":\"{}\",\"severity\":\"{}\",\"element\":\"{}\",\"message\":\"{}\",\"explanation\":\"{}\"}}",
            self.code,
            self.severity(),
            json_escape(&self.element),
            json_escape(&self.message),
            json_escape(self.code.explain()),
        )
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}]: {}: {}",
            self.severity(),
            self.code,
            self.element,
            self.message
        )
    }
}

/// Output format for [`render_report`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Format {
    /// One human-readable line per finding plus a summary line.
    #[default]
    Text,
    /// A single JSON document for tooling.
    Json,
}

impl FromStr for Format {
    type Err = String;

    fn from_str(s: &str) -> Result<Format, String> {
        match s {
            "text" => Ok(Format::Text),
            "json" => Ok(Format::Json),
            other => Err(format!("unknown format `{other}` (expected text or json)")),
        }
    }
}

/// Render a batch of findings in the requested format. Errors sort
/// before warnings; within a severity the original order is kept.
pub fn render_report(diags: &[Diagnostic], format: Format) -> String {
    let mut sorted: Vec<&Diagnostic> = diags.iter().collect();
    sorted.sort_by_key(|d| d.severity());
    let errors = diags
        .iter()
        .filter(|d| d.severity() == Severity::Error)
        .count();
    let warnings = diags.len() - errors;
    match format {
        Format::Text => {
            let mut out = String::new();
            for d in &sorted {
                out.push_str(&d.to_string());
                out.push('\n');
            }
            out.push_str(&format!(
                "{} error{}, {} warning{}\n",
                errors,
                if errors == 1 { "" } else { "s" },
                warnings,
                if warnings == 1 { "" } else { "s" },
            ));
            out
        }
        Format::Json => {
            let items: Vec<String> = sorted.iter().map(|d| d.to_json()).collect();
            format!(
                "{{\"errors\":{errors},\"warnings\":{warnings},\"diagnostics\":[{}]}}\n",
                items.join(",")
            )
        }
    }
}

/// Escape a string for embedding in a JSON string literal.
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_round_trip_severity() {
        assert_eq!(Code::E001.severity(), Severity::Error);
        assert_eq!(Code::W002.severity(), Severity::Warning);
        assert_eq!(Code::V005.severity(), Severity::Error);
    }

    #[test]
    fn text_report_sorts_errors_first() {
        let diags = vec![
            Diagnostic::new(Code::W001, "bus X", "shadowed"),
            Diagnostic::new(Code::E002, "bank RF1", "orphan"),
        ];
        let text = render_report(&diags, Format::Text);
        let e = text.find("error[E002]").unwrap();
        let w = text.find("warning[W001]").unwrap();
        assert!(e < w);
        assert!(text.contains("1 error, 1 warning"));
    }

    #[test]
    fn json_report_escapes_and_counts() {
        let diags = vec![Diagnostic::new(Code::E001, "op \"mul\"", "line1\nline2")];
        let json = render_report(&diags, Format::Json);
        assert!(json.contains("\"errors\":1"));
        assert!(json.contains("op \\\"mul\\\""));
        assert!(json.contains("line1\\nline2"));
    }

    #[test]
    fn format_parses() {
        assert_eq!("json".parse::<Format>().unwrap(), Format::Json);
        assert_eq!("text".parse::<Format>().unwrap(), Format::Text);
        assert!("yaml".parse::<Format>().is_err());
    }
}
