//! Machine×program feasibility analysis (`M` codes) and admissible
//! lower bounds.
//!
//! AVIV commits to a target machine before covering begins, so a whole
//! class of failures is statically decidable from the ISDL description
//! and the program DAG alone: IR operations no unit or complex pattern
//! can cover, def→use value routes with no transfer path between the
//! producer's and the consumer's register banks, and machines with no
//! memory port at all. This module decides those questions *before*
//! covering — [`analyze_machine`] summarises what a machine can do in
//! isolation, and [`analyze_program`] proves (or refutes, with
//! [`Code::M001`]/[`Code::M002`] diagnostics naming the exact node, op
//! and bank pair) that a specific program is compilable on it.
//!
//! Alongside the feasibility verdict, [`block_bounds`] computes two
//! *admissible* per-block lower bounds — a minimum instruction count
//! and a minimum register-pressure — that the covering engine uses to
//! prune dominated partial covers (see `CodegenOptions::analysis_bounds`
//! in `aviv-core`) and that `CompileReport` surfaces next to the
//! achieved numbers so optimality gaps are visible per block.
//!
//! The analysis mirrors the default compilation pipeline: dead code is
//! eliminated exactly as `compile_function` does (every named variable
//! observable), and the coverability predicate is the same one the
//! split-node DAG builder enforces, so on any machine whose description
//! passes `check_machine` an M-error verdict and a compile failure
//! coincide.

use std::collections::BTreeSet;

use crate::diag::{json_escape, render_report, Code, Diagnostic, Format, Severity};
use crate::lint::lint_machine;
use aviv_ir::{BlockDag, Function, NodeId, Op, Sym};
use aviv_isdl::{Location, Machine, Target};
use aviv_splitdag::{match_complexes, ComplexMatch};

/// How one IR operation kind can be implemented on a machine.
#[derive(Debug, Clone)]
pub struct OpCoverage {
    /// The IR operation.
    pub op: Op,
    /// Names of functional units that implement the op directly.
    pub units: Vec<String>,
    /// Names of complex instructions whose pattern is rooted at the op.
    pub complexes: Vec<String>,
}

impl OpCoverage {
    /// True when the op is only reachable as the root of a complex
    /// pattern — no unit implements it directly.
    pub fn pattern_only(&self) -> bool {
        self.units.is_empty() && !self.complexes.is_empty()
    }

    /// True when nothing on the machine can produce this op as a root.
    /// (The op may still appear *inside* a complex pattern.)
    pub fn uncovered(&self) -> bool {
        self.units.is_empty() && self.complexes.is_empty()
    }
}

/// One entry of the cross-location transfer closure: can a value move
/// from `from` to `to`, and at what minimum cost?
#[derive(Debug, Clone)]
pub struct Route {
    /// Source location name (`mem` for the memory).
    pub from: String,
    /// Destination location name.
    pub to: String,
    /// Minimum number of bus hops on a direct transfer path, if any
    /// exists (memory is never an intermediate hop).
    pub direct: Option<usize>,
    /// True when no direct path exists but the value can be staged
    /// through memory (spill + reload), which the covering engine can
    /// always insert explicitly.
    pub via_memory: bool,
}

impl Route {
    /// True when a value can move from `from` to `to` at all.
    pub fn routable(&self) -> bool {
        self.direct.is_some() || self.via_memory
    }
}

/// Machine-level feasibility summary: what the ISDL description can
/// cover and route, independent of any program.
#[derive(Debug, Clone)]
pub struct MachineAnalysis {
    /// Machine name from the description.
    pub machine: String,
    /// Coverability per computational op, in `Op::all_computational`
    /// order.
    pub coverage: Vec<OpCoverage>,
    /// Transfer-path closure over all ordered pairs of distinct
    /// storage locations.
    pub routes: Vec<Route>,
    /// Machine-description lints (`W` codes, including shadowed
    /// alternatives) — the same findings `lint_machine` reports.
    pub diagnostics: Vec<Diagnostic>,
}

/// Admissible per-block lower bounds plus the feasibility scan result.
#[derive(Debug, Clone)]
pub struct BlockAnalysis {
    /// Human-readable block name (same convention as `check_program`).
    pub name: String,
    /// Node count of the (post-DCE) block DAG.
    pub nodes: usize,
    /// Admissible lower bound on the emitted instruction count.
    pub min_instructions: usize,
    /// Admissible lower bound on peak single-bank register pressure.
    pub min_pressure: usize,
}

/// Program×machine feasibility verdict with per-block lower bounds.
#[derive(Debug, Clone)]
pub struct ProgramAnalysis {
    /// The machine-level summary the program was checked against.
    pub machine: MachineAnalysis,
    /// Function name.
    pub program: String,
    /// Per-block bounds, in block order, post dead-code elimination.
    pub blocks: Vec<BlockAnalysis>,
    /// Program-level `M` diagnostics (empty means provably compilable
    /// as far as coverability and routing are concerned).
    pub diagnostics: Vec<Diagnostic>,
}

impl ProgramAnalysis {
    /// True when no M-error was found: every node is coverable and
    /// every def→use route exists.
    pub fn feasible(&self) -> bool {
        !self
            .diagnostics
            .iter()
            .any(|d| d.severity() == Severity::Error)
    }
}

/// Summarise what a machine can cover and route, independent of any
/// program. Includes the `lint_machine` findings so shadowed or dead
/// alternatives surface in the same report.
pub fn analyze_machine(target: &Target) -> MachineAnalysis {
    let m = &target.machine;
    let coverage = Op::all_computational()
        .iter()
        .map(|&op| OpCoverage {
            op,
            units: target
                .ops
                .units_for(op)
                .iter()
                .map(|&u| m.units()[u.index()].name.clone())
                .collect(),
            complexes: target
                .ops
                .complexes_rooted_at(op)
                .iter()
                .map(|&ci| m.complexes()[ci].name.clone())
                .collect(),
        })
        .collect();

    let locations = m.locations();
    let mut routes = Vec::new();
    for &from in &locations {
        for &to in &locations {
            if from == to {
                continue;
            }
            let direct = target.xfers.cost(from, to);
            let via_memory = direct.is_none()
                && from != Location::Mem
                && to != Location::Mem
                && target.xfers.cost(from, Location::Mem).is_some()
                && target.xfers.cost(Location::Mem, to).is_some();
            routes.push(Route {
                from: loc_name(m, from),
                to: loc_name(m, to),
                direct,
                via_memory,
            });
        }
    }

    MachineAnalysis {
        machine: m.name.clone(),
        coverage,
        routes,
        diagnostics: lint_machine(m),
    }
}

/// Pre-flight a program against a machine: prove every (post-DCE) node
/// coverable and every def→use bank route feasible, and compute the
/// per-block lower bounds. M-errors name the exact block, node, op and
/// bank pair that make compilation impossible.
///
/// Dead code is eliminated first, with every named variable observable,
/// exactly as `compile_function` does under its default options — so
/// nodes the compiler never covers are never flagged.
pub fn analyze_program(f: &Function, target: &Target) -> ProgramAnalysis {
    let mut pruned = f.clone();
    let observable: Vec<Sym> = f.syms.iter().map(|(s, _)| s).collect();
    aviv_ir::opt::eliminate_dead_code(&mut pruned, &observable);
    let f = &pruned;

    let mut blocks = Vec::new();
    let mut diagnostics = Vec::new();
    for (bi, block) in f.blocks.iter().enumerate() {
        let name = match &block.label {
            Some(l) => format!("block '{}'", f.syms.name(*l)),
            None => format!("block bb{bi}"),
        };
        let dag = &block.dag;
        let matches = match_complexes(dag, target);
        check_block(dag, target, &matches, &name, f, &mut diagnostics);
        let (min_instructions, min_pressure) = bounds_with_matches(dag, target, &matches);
        blocks.push(BlockAnalysis {
            name,
            nodes: dag.len(),
            min_instructions,
            min_pressure,
        });
    }

    ProgramAnalysis {
        machine: analyze_machine(target),
        program: f.name.clone(),
        blocks,
        diagnostics,
    }
}

/// Admissible lower bounds for one block: `(min_instructions,
/// min_pressure)`.
///
/// `min_instructions` is the maximum of four relaxations, each of which
/// every legal schedule must satisfy:
///
/// * **critical path** — dependent non-interior operations, loads and
///   stores occupy strictly increasing steps (operands are read before
///   results are written within a step);
/// * **unit width** — each instruction executes at most one alternative
///   per unit and every alternative roots exactly one non-interior op,
///   so `ceil(ops / units)` instructions are needed;
/// * **sole unit** — ops implementable on exactly one unit serialise on
///   it, one per instruction;
/// * **bus traffic** — every load, store and provably-mandatory
///   cross-bank move occupies a bus slot, and an instruction offers at
///   most the sum of all bus capacities.
///
/// `min_pressure` bounds the peak single-bank register count: when an
/// op executes, all of its distinct register operands are live in its
/// unit's bank (minimised over complex alternatives that absorb
/// operands as pattern interiors).
///
/// Both bounds are deterministic functions of `(dag, target)` only, so
/// they may be recomputed for cached plans without changing output.
pub fn block_bounds(dag: &BlockDag, target: &Target) -> (usize, usize) {
    let matches = match_complexes(dag, target);
    bounds_with_matches(dag, target, &matches)
}

fn bounds_with_matches(
    dag: &BlockDag,
    target: &Target,
    matches: &[ComplexMatch],
) -> (usize, usize) {
    if dag.is_empty() {
        return (0, 0);
    }
    let m = &target.machine;
    let n_units = m.units().len().max(1);
    let bus_slots: usize = m
        .buses()
        .iter()
        .map(|b| b.capacity as usize)
        .sum::<usize>()
        .max(1);

    let mut interior = vec![false; dag.len()];
    let mut rooted: Vec<Vec<usize>> = vec![Vec::new(); dag.len()];
    for (mi, mm) in matches.iter().enumerate() {
        rooted[mm.root.index()].push(mi);
        for &c in &mm.covers {
            if c != mm.root {
                interior[c.index()] = true;
            }
        }
    }
    let uses = dag.uses();

    let mut unit_ops = 0usize; // non-interior computational ops
    let mut sole = vec![0usize; m.units().len()];
    let mut transfers = 0usize; // mandatory bus slots
    let mut pressure = 0usize;
    let mut height = vec![0usize; dag.len()];
    let mut critical_path = 0usize;

    for (id, node) in dag.iter() {
        let idx = id.index();
        let weight = match node.op {
            Op::Const => 0,
            Op::Input => {
                // An input leaf forces a memory→bank load only when some
                // consumer reads it from a register; a `StoreVar` of an
                // input is a direct memory→memory move. The load itself
                // is charged here; its serialisation before the consumer
                // is deliberately not (weight 0 keeps the bound
                // admissible for direct moves).
                if uses[idx].iter().any(|&u| dag.node(u).op != Op::StoreVar) {
                    transfers += 1;
                }
                0
            }
            Op::Load => {
                transfers += 1;
                pressure = pressure.max(distinct_reg_args(dag, id));
                1
            }
            Op::Store => {
                transfers += 1;
                pressure = pressure.max(distinct_reg_args(dag, id));
                1
            }
            Op::StoreVar => {
                // `x = x` stores the unchanged value back to its own
                // slot; nothing forces an instruction for it.
                let arg = node.args[0];
                let identity = dag.node(arg).op == Op::Input && dag.node(arg).sym == node.sym;
                if identity {
                    0
                } else {
                    transfers += 1;
                    // The stored value occupies one register unless it
                    // comes straight from memory or an immediate.
                    if !matches!(dag.node(arg).op, Op::Const | Op::Input) {
                        pressure = pressure.max(1);
                    }
                    1
                }
            }
            _ if interior[idx] => 0,
            op => {
                unit_ops += 1;
                let caps = capable_units(target, op, &rooted[idx], matches);
                if caps.len() == 1 {
                    if let Some(&u) = caps.iter().next() {
                        sole[u as usize] += 1;
                    }
                }
                // Distinct register operands, minimised over complex
                // alternatives (a pattern can absorb repeated or
                // interior operands).
                let mut contribution = distinct_reg_args(dag, id);
                for &mi in &rooted[idx] {
                    contribution = contribution.min(distinct_reg_operands(dag, &matches[mi]));
                }
                pressure = pressure.max(contribution);
                1
            }
        };
        let base = node
            .args
            .iter()
            .map(|&a| height[a.index()])
            .max()
            .unwrap_or(0);
        height[idx] = base + weight;
        critical_path = critical_path.max(height[idx]);
    }

    // Mandatory cross-bank moves: a computational producer none of
    // whose writable banks is readable by some consumer needs at least
    // one bus transfer, whichever alternatives covering picks. Counted
    // once per producer — a single move can serve several consumers.
    for (id, node) in dag.iter() {
        let idx = id.index();
        if interior[idx] || !is_computational(node.op) {
            continue;
        }
        let writes = capable_banks(target, node.op, &rooted[idx], matches);
        if writes.is_empty() {
            continue; // uncoverable: M001 territory, bounds are moot
        }
        let forced = uses[idx].iter().any(|&u| {
            let un = dag.node(u);
            if interior[u.index()] || !is_computational(un.op) {
                return false;
            }
            let reads = capable_banks(target, un.op, &rooted[u.index()], matches);
            !reads.is_empty() && writes.is_disjoint(&reads)
        });
        if forced {
            transfers += 1;
        }
    }

    let width = unit_ops.div_ceil(n_units);
    let sole_bound = sole.iter().copied().max().unwrap_or(0);
    let bus_bound = transfers.div_ceil(bus_slots);
    let min_instructions = critical_path.max(width).max(sole_bound).max(bus_bound);
    (min_instructions, pressure)
}

/// Units that can produce `op` as a root: direct implementors plus the
/// units of complex alternatives rooted at this node.
fn capable_units(
    target: &Target,
    op: Op,
    rooted: &[usize],
    matches: &[ComplexMatch],
) -> BTreeSet<u32> {
    let mut set: BTreeSet<u32> = target.ops.units_for(op).iter().map(|u| u.0).collect();
    for &mi in rooted {
        set.insert(target.machine.complexes()[matches[mi].complex].unit.0);
    }
    set
}

/// Banks a node's value can be produced into (equivalently, read from,
/// since every unit reads and writes its own register file).
fn capable_banks(
    target: &Target,
    op: Op,
    rooted: &[usize],
    matches: &[ComplexMatch],
) -> BTreeSet<u32> {
    capable_units(target, op, rooted, matches)
        .iter()
        .map(|&u| target.machine.bank_of(aviv_isdl::UnitId(u)).0)
        .collect()
}

fn is_computational(op: Op) -> bool {
    !matches!(
        op,
        Op::Const | Op::Input | Op::Load | Op::Store | Op::StoreVar
    )
}

/// Number of distinct non-constant argument values of a node.
fn distinct_reg_args(dag: &BlockDag, id: NodeId) -> usize {
    let mut seen = BTreeSet::new();
    for &a in &dag.node(id).args {
        if dag.node(a).op != Op::Const {
            seen.insert(a.index());
        }
    }
    seen.len()
}

/// Number of distinct non-constant operand values a complex alternative
/// consumes from registers.
fn distinct_reg_operands(dag: &BlockDag, mm: &ComplexMatch) -> usize {
    let mut seen = BTreeSet::new();
    for &o in &mm.operands {
        if dag.node(o).op != Op::Const {
            seen.insert(o.index());
        }
    }
    seen.len()
}

/// Coverability + routing scan for one block; mirrors the split-node
/// DAG builder's feasibility predicate exactly.
fn check_block(
    dag: &BlockDag,
    target: &Target,
    matches: &[ComplexMatch],
    name: &str,
    f: &Function,
    out: &mut Vec<Diagnostic>,
) {
    let m = &target.machine;
    let has_mem_port = m.buses().iter().any(|b| {
        b.endpoints.contains(&Location::Mem)
            && b.endpoints.iter().any(|e| matches!(e, Location::Bank(_)))
    });

    let mut interior = vec![false; dag.len()];
    let mut rooted: Vec<Vec<usize>> = vec![Vec::new(); dag.len()];
    for (mi, mm) in matches.iter().enumerate() {
        rooted[mm.root.index()].push(mi);
        for &c in &mm.covers {
            if c != mm.root {
                interior[c.index()] = true;
            }
        }
    }

    for (id, node) in dag.iter() {
        let idx = id.index();
        match node.op {
            Op::Const => {}
            Op::Input | Op::Load | Op::Store | Op::StoreVar => {
                if !has_mem_port {
                    let what = match node.op {
                        Op::Input => "load an input variable",
                        Op::Load => "load from memory",
                        _ => "store to memory",
                    };
                    out.push(Diagnostic::new(
                        Code::M002,
                        format!("{name}: {id}"),
                        format!(
                            "cannot {what}: no bus on machine {} connects \
                             memory to a register bank",
                            m.name
                        ),
                    ));
                }
            }
            op => {
                if target.ops.units_for(op).is_empty() && rooted[idx].is_empty() && !interior[idx] {
                    out.push(Diagnostic::new(
                        Code::M001,
                        format!("{name}: {id}"),
                        format!(
                            "op {op} ({}) has no implementing unit and no \
                             complex pattern covers it on machine {}",
                            describe_node(dag, f, id),
                            m.name
                        ),
                    ));
                }
            }
        }
    }

    // Def→use routing: for every edge whose producer must materialise
    // in a register, some writable bank must reach some readable bank —
    // directly, or staged through memory (the covering engine inserts
    // spills explicitly).
    let reaches = |w: u32, r: u32| -> bool {
        w == r
            || target
                .xfers
                .cost(
                    Location::Bank(aviv_isdl::BankId(w)),
                    Location::Bank(aviv_isdl::BankId(r)),
                )
                .is_some()
            || (target
                .xfers
                .cost(Location::Bank(aviv_isdl::BankId(w)), Location::Mem)
                .is_some()
                && target
                    .xfers
                    .cost(Location::Mem, Location::Bank(aviv_isdl::BankId(r)))
                    .is_some())
    };
    let mem_port_banks: BTreeSet<u32> = m
        .buses()
        .iter()
        .filter(|b| b.endpoints.contains(&Location::Mem))
        .flat_map(|b| {
            b.endpoints.iter().filter_map(|e| match e {
                Location::Bank(bk) => Some(bk.0),
                Location::Mem => None,
            })
        })
        .collect();

    for (id, node) in dag.iter() {
        for &arg in &dag.node(id).args {
            let p = dag.node(arg);
            // Immediates are free anywhere; a pattern-interior producer
            // may never materialise; an uncoverable producer is already
            // an M001.
            if p.op == Op::Const || interior[arg.index()] {
                continue;
            }
            let writes: BTreeSet<u32> = match p.op {
                Op::Input => m
                    .banks()
                    .iter()
                    .enumerate()
                    .filter(|&(b, _)| {
                        target
                            .xfers
                            .cost(Location::Mem, Location::Bank(aviv_isdl::BankId(b as u32)))
                            .is_some()
                    })
                    .map(|(b, _)| b as u32)
                    .collect(),
                Op::Load => mem_port_banks.clone(),
                Op::Store | Op::StoreVar | Op::Const => continue,
                op => capable_banks(target, op, &rooted[arg.index()], matches),
            };
            if writes.is_empty() {
                continue;
            }
            let reads: BTreeSet<u32> = match node.op {
                Op::StoreVar => {
                    // The value only needs to reach memory. An input
                    // operand already lives there (direct move).
                    if p.op == Op::Input
                        || writes.iter().any(|&w| {
                            target
                                .xfers
                                .cost(Location::Bank(aviv_isdl::BankId(w)), Location::Mem)
                                .is_some()
                        })
                    {
                        continue;
                    }
                    out.push(Diagnostic::new(
                        Code::M002,
                        format!("{name}: {arg}→{id}"),
                        format!(
                            "value of {} ({arg}) cannot reach memory to be \
                             stored: no transfer path from {} to mem",
                            p.op,
                            bank_set_names(m, &writes),
                        ),
                    ));
                    continue;
                }
                Op::Load | Op::Store => mem_port_banks.clone(),
                Op::Const | Op::Input => continue,
                op => {
                    if interior[id.index()] {
                        // The consumer may be swallowed as a pattern
                        // interior, in which case this edge needs no
                        // route at all.
                        continue;
                    }
                    capable_banks(target, op, &rooted[id.index()], matches)
                }
            };
            if reads.is_empty() {
                continue; // consumer uncoverable or pattern-interior
            }
            let ok = writes.iter().any(|&w| reads.iter().any(|&r| reaches(w, r)));
            if !ok {
                out.push(Diagnostic::new(
                    Code::M002,
                    format!("{name}: {arg}→{id}"),
                    format!(
                        "no route for the value of {} ({arg}) into {} ({id}): \
                         producer banks {} cannot reach consumer banks {} \
                         even via a memory round trip",
                        p.op,
                        node.op,
                        bank_set_names(m, &writes),
                        bank_set_names(m, &reads),
                    ),
                ));
            }
        }
    }
}

fn bank_set_names(m: &Machine, banks: &BTreeSet<u32>) -> String {
    let names: Vec<&str> = banks
        .iter()
        .map(|&b| m.bank(aviv_isdl::BankId(b)).name.as_str())
        .collect();
    format!("{{{}}}", names.join(", "))
}

fn loc_name(m: &Machine, loc: Location) -> String {
    match loc {
        Location::Bank(b) => m.bank(b).name.clone(),
        Location::Mem => "mem".to_owned(),
    }
}

fn describe_node(dag: &BlockDag, f: &Function, id: NodeId) -> String {
    let node = dag.node(id);
    if let Some(s) = node.sym {
        return format!("near '{}'", f.syms.name(s));
    }
    for &a in &node.args {
        if let Some(s) = dag.node(a).sym {
            return format!("near '{}'", f.syms.name(s));
        }
    }
    format!(
        "{} operand{}",
        node.args.len(),
        if node.args.len() == 1 { "" } else { "s" }
    )
}

/// Render a full program analysis in the requested format.
///
/// Text output gives the human summary: op coverage, route closure,
/// per-block bounds and the combined diagnostic report. JSON output is
/// a single stable object (`schema_version` 1) suitable for golden
/// snapshots:
///
/// ```json
/// {"schema_version":1,"machine":"...","program":"...","feasible":true,
///  "ops":{"covered":N,"pattern_only":N,"uncovered":["div",...]},
///  "routes":[{"from":"R1","to":"R2","direct":1,"via_memory":false},...],
///  "blocks":[{"name":"...","nodes":N,"min_instructions":N,"min_pressure":N},...],
///  "errors":N,"warnings":N,"diagnostics":[...]}
/// ```
pub fn render_analysis(a: &ProgramAnalysis, format: Format) -> String {
    let mut diags: Vec<Diagnostic> = a.machine.diagnostics.clone();
    diags.extend(a.diagnostics.iter().cloned());
    let covered = a.machine.coverage.iter().filter(|c| !c.uncovered()).count();
    let pattern_only = a
        .machine
        .coverage
        .iter()
        .filter(|c| c.pattern_only())
        .count();
    let uncovered: Vec<&OpCoverage> = a
        .machine
        .coverage
        .iter()
        .filter(|c| c.uncovered())
        .collect();
    let routable = a.machine.routes.iter().filter(|r| r.routable()).count();
    let via_memory = a
        .machine
        .routes
        .iter()
        .filter(|r| r.direct.is_none() && r.via_memory)
        .count();

    match format {
        Format::Text => {
            let mut out = String::new();
            out.push_str(&format!(
                "machine {}: {covered}/{} ops coverable ({pattern_only} pattern-only), \
                 {} uncoverable\n",
                a.machine.machine,
                a.machine.coverage.len(),
                uncovered.len(),
            ));
            if !uncovered.is_empty() {
                let names: Vec<&str> = uncovered.iter().map(|c| c.op.mnemonic()).collect();
                out.push_str(&format!("  uncoverable: {}\n", names.join(", ")));
            }
            out.push_str(&format!(
                "routes: {routable}/{} location pairs routable ({via_memory} only via \
                 memory round trip)\n",
                a.machine.routes.len(),
            ));
            for b in &a.blocks {
                out.push_str(&format!(
                    "{}: {} nodes, >= {} instructions, >= {} registers\n",
                    b.name, b.nodes, b.min_instructions, b.min_pressure
                ));
            }
            out.push_str(&format!(
                "program {} on {}: {}\n",
                a.program,
                a.machine.machine,
                if a.feasible() {
                    "feasible"
                } else {
                    "INFEASIBLE"
                }
            ));
            out.push_str(&render_report(&diags, Format::Text));
            out
        }
        Format::Json => {
            let errors = diags
                .iter()
                .filter(|d| d.severity() == Severity::Error)
                .count();
            let warnings = diags.len() - errors;
            let mut sorted: Vec<&Diagnostic> = diags.iter().collect();
            sorted.sort_by_key(|d| d.severity());
            let diag_items: Vec<String> = sorted.iter().map(|d| d.to_json()).collect();
            let uncovered_names: Vec<String> = uncovered
                .iter()
                .map(|c| format!("\"{}\"", json_escape(c.op.mnemonic())))
                .collect();
            let route_items: Vec<String> = a
                .machine
                .routes
                .iter()
                .map(|r| {
                    format!(
                        "{{\"from\":\"{}\",\"to\":\"{}\",\"direct\":{},\"via_memory\":{}}}",
                        json_escape(&r.from),
                        json_escape(&r.to),
                        r.direct.map_or("null".to_owned(), |c| c.to_string()),
                        r.via_memory,
                    )
                })
                .collect();
            let block_items: Vec<String> = a
                .blocks
                .iter()
                .map(|b| {
                    format!(
                        "{{\"name\":\"{}\",\"nodes\":{},\"min_instructions\":{},\
                         \"min_pressure\":{}}}",
                        json_escape(&b.name),
                        b.nodes,
                        b.min_instructions,
                        b.min_pressure,
                    )
                })
                .collect();
            format!(
                "{{\"schema_version\":1,\"machine\":\"{}\",\"program\":\"{}\",\
                 \"feasible\":{},\"ops\":{{\"covered\":{covered},\
                 \"pattern_only\":{pattern_only},\"uncovered\":[{}]}},\
                 \"routes\":[{}],\"blocks\":[{}],\"errors\":{errors},\
                 \"warnings\":{warnings},\"diagnostics\":[{}]}}\n",
                json_escape(&a.machine.machine),
                json_escape(&a.program),
                a.feasible(),
                uncovered_names.join(","),
                route_items.join(","),
                block_items.join(","),
                diag_items.join(","),
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aviv_ir::parse_function;
    use aviv_isdl::archs;

    fn parse(src: &str) -> Function {
        parse_function(src).expect("test program parses")
    }

    #[test]
    fn clean_program_is_feasible_with_positive_bounds() {
        let target = Target::new(archs::example_arch(4));
        let f = parse("func f(a, b) { x = a * b + a; return x; }");
        let a = analyze_program(&f, &target);
        assert!(a.feasible(), "diags: {:?}", a.diagnostics);
        assert!(a.blocks[0].min_instructions >= 1);
        assert!(a.blocks[0].min_pressure >= 1);
    }

    #[test]
    fn unsupported_op_is_m001() {
        // example_arch has no divider.
        let target = Target::new(archs::example_arch(4));
        let f = parse("func f(a, b) { x = a / b; return x; }");
        let a = analyze_program(&f, &target);
        assert!(!a.feasible());
        assert!(a.diagnostics.iter().any(|d| d.code == Code::M001));
        let d = a.diagnostics.iter().find(|d| d.code == Code::M001).unwrap();
        assert!(d.message.contains("div"), "message: {}", d.message);
    }

    #[test]
    fn dead_unsupported_op_is_not_flagged() {
        // The division is dead (its result is shadowed before any use),
        // so the compiler never covers it and analyze must agree.
        let target = Target::new(archs::example_arch(4));
        let f = parse("func f(a, b) { x = a / b; x = a + b; return x; }");
        let a = analyze_program(&f, &target);
        assert!(a.feasible(), "diags: {:?}", a.diagnostics);
    }

    #[test]
    fn machine_analysis_reports_coverage_and_routes() {
        let target = Target::new(archs::example_arch(4));
        let ma = analyze_machine(&target);
        assert_eq!(ma.machine, target.machine.name);
        assert_eq!(ma.coverage.len(), Op::all_computational().len());
        let add = ma
            .coverage
            .iter()
            .find(|c| c.op == Op::Add)
            .expect("add coverage row");
        assert!(!add.units.is_empty());
        assert!(!ma.routes.is_empty());
        assert!(ma.routes.iter().all(Route::routable));
    }

    #[test]
    fn bundled_machines_have_full_route_closure() {
        for m in [
            archs::example_arch(4),
            archs::arch_two(4),
            archs::dsp_arch(4),
            archs::chained_arch(4),
            archs::single_alu(4),
            archs::wide_arch(4),
            archs::quad_vliw(4),
            archs::accumulator_dsp(),
        ] {
            let target = Target::new(m);
            let ma = analyze_machine(&target);
            assert!(
                ma.routes.iter().all(Route::routable),
                "machine {} has an unroutable pair",
                ma.machine
            );
        }
    }

    #[test]
    fn json_rendering_is_stable_and_escaped() {
        let target = Target::new(archs::example_arch(4));
        let f = parse("func f(a) { x = a + 1; return x; }");
        let a = analyze_program(&f, &target);
        let json = render_analysis(&a, Format::Json);
        assert!(json.starts_with("{\"schema_version\":1,"));
        assert!(json.contains("\"feasible\":true"));
        assert!(json.contains("\"blocks\":["));
        assert!(json.ends_with("}\n"));
        // Rendering twice is byte-identical (determinism).
        assert_eq!(json, render_analysis(&a, Format::Json));
    }

    #[test]
    fn identity_copy_contributes_nothing() {
        let target = Target::new(archs::example_arch(4));
        let f = parse("func f(a) { a = a; return a; }");
        let a = analyze_program(&f, &target);
        assert!(a.feasible());
    }

    #[test]
    fn bounds_respect_direct_memory_move() {
        // `x = a` is a direct memory→memory move: no load, no register.
        let target = Target::new(archs::example_arch(4));
        let f = parse("func f(a) { x = a; return x; }");
        let a = analyze_program(&f, &target);
        assert!(a.feasible());
        assert_eq!(a.blocks[0].min_pressure, 0);
        assert!(a.blocks[0].min_instructions <= 1);
    }
}
