//! # aviv-verify — structured diagnostics and static analysis for AVIV
//!
//! Retargetable code generators live or die by machine-description
//! validation: a malformed target produces silently wrong assembly or a
//! panic deep inside covering. This crate provides the shared
//! [`Diagnostic`] framework used by two static-analysis passes:
//!
//! * [`lint_machine`] — the ISDL target lint behind `avivc lint`,
//!   reporting coded defects (`E001`…, `W001`…) in a machine
//!   description;
//! * [`check_program`] — the source-program checker behind
//!   `avivc check`, reporting dataflow defects (`P001`…) found by the
//!   global analyses in [`aviv_ir::dataflow`];
//! * [`analyze_program`] — the machine×program feasibility analyzer
//!   behind `avivc analyze`, proving every node coverable and every
//!   def→use bank route present (`M001`…) and computing admissible
//!   per-block lower bounds on instruction count and register pressure;
//! * [`tv::validate_asm`] — the translation validator behind
//!   `avivc --validate`, which re-parses emitted assembly and proves
//!   it congruent to the source function block by block (`T001`…);
//! * the pipeline invariant verifier in `aviv::invariants` (the core
//!   crate), which reuses [`Diagnostic`] to report stage-by-stage
//!   violations (`V001`…) during compilation.
//!
//! Every diagnostic carries a stable [`Code`], a [`Severity`], the
//! machine element (or pipeline location) it refers to, and a one-line
//! explanation; reports render as text or JSON (see [`render_report`]).
//! The full registry is documented in `docs/diagnostics.md`.
//!
//! ```
//! use aviv_verify::{lint_machine, Code};
//! let m = aviv_isdl::archs::example_arch(4);
//! assert!(lint_machine(&m).is_empty());
//! ```

#![warn(missing_docs)]

pub mod analyze;
pub mod check;
pub mod diag;
pub mod lint;
pub mod tv;

pub use analyze::{
    analyze_machine, analyze_program, block_bounds, render_analysis, MachineAnalysis,
    ProgramAnalysis,
};
pub use check::check_program;
pub use diag::{render_report, Code, Diagnostic, Format, Severity};
pub use lint::lint_machine;
pub use tv::{parse_asm, render_asm, validate_asm, AsmProgram, TvReport};
