//! The ISDL machine-description lint.
//!
//! [`lint_machine`] walks an [`aviv_isdl::Machine`] and reports every
//! coded defect it can find, never stopping at the first. It accepts
//! machines built through the lenient constructors
//! ([`aviv_isdl::parse_machine_lenient`]) so that descriptions the
//! strict validator refuses — orphan banks, dead constraints — can
//! still be diagnosed with stable codes instead of a single free-form
//! error string.

use crate::diag::{Code, Diagnostic};
use aviv_ir::Op;
use aviv_isdl::{Location, Machine, PatTree, SlotPattern};
use std::collections::HashSet;

/// Lint a machine description, returning every finding.
///
/// The machine only needs referential integrity
/// ([`Machine::validate_refs`]); it does not need to pass the strict
/// [`Machine::validate`].
pub fn lint_machine(machine: &Machine) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    lint_resources(machine, &mut out);
    lint_reachability(machine, &mut out);
    lint_complexes(machine, &mut out);
    lint_buses(machine, &mut out);
    lint_bank_capacity(machine, &mut out);
    lint_constraints(machine, &mut out);
    out
}

/// True when some functional unit implements `op` directly.
fn implemented(machine: &Machine, op: Op) -> bool {
    machine.units().iter().any(|u| u.can_do(op))
}

/// E004 / W004: degenerate or duplicated hardware resources.
fn lint_resources(machine: &Machine, out: &mut Vec<Diagnostic>) {
    if machine.units().is_empty() {
        out.push(Diagnostic::new(
            Code::E004,
            format!("machine {}", machine.name),
            "machine declares no functional units",
        ));
    }
    let mut names: HashSet<&str> = HashSet::new();
    for u in machine.units() {
        let element = format!("unit {}", u.name);
        if !names.insert(&u.name) {
            out.push(Diagnostic::new(
                Code::E004,
                element.clone(),
                "duplicate unit name",
            ));
        }
        if u.ops.is_empty() {
            out.push(Diagnostic::new(
                Code::E004,
                element.clone(),
                "unit implements no operations",
            ));
        }
        let mut seen: HashSet<Op> = HashSet::new();
        for c in &u.ops {
            if c.op.is_leaf() || c.op.is_store() {
                out.push(Diagnostic::new(
                    Code::E004,
                    element.clone(),
                    format!("lists non-computational op {}", c.op),
                ));
            }
            if !seen.insert(c.op) {
                out.push(Diagnostic::new(
                    Code::W004,
                    element.clone(),
                    format!("op {} listed more than once", c.op),
                ));
            }
        }
    }
    for b in machine.banks() {
        if b.size == 0 {
            out.push(Diagnostic::new(
                Code::E004,
                format!("bank {}", b.name),
                "bank has zero registers",
            ));
        }
    }
    for bus in machine.buses() {
        let element = format!("bus {}", bus.name);
        let distinct: HashSet<Location> = bus.endpoints.iter().copied().collect();
        if distinct.len() < 2 {
            out.push(Diagnostic::new(
                Code::E004,
                element.clone(),
                "bus connects fewer than 2 distinct locations",
            ));
        }
        if bus.capacity == 0 {
            out.push(Diagnostic::new(
                Code::E004,
                element.clone(),
                "bus has zero transfer capacity",
            ));
        }
        if distinct.len() < bus.endpoints.len() {
            out.push(Diagnostic::new(
                Code::W004,
                element,
                "bus lists an endpoint more than once",
            ));
        }
    }
}

/// E002: every bank must reach memory and be reachable from it, or
/// leaves can never be loaded and results never stored.
fn lint_reachability(machine: &Machine, out: &mut Vec<Diagnostic>) {
    let from_mem = machine.reachable_from(Location::Mem);
    for (i, b) in machine.banks().iter().enumerate() {
        let loc = Location::Bank(aviv_isdl::BankId(i as u32));
        let to_mem = machine.reachable_from(loc).contains(&Location::Mem);
        let from = from_mem.contains(&loc);
        let problem = match (from, to_mem) {
            (true, true) => continue,
            (false, true) => "bank is unreachable from data memory: no program input can ever be loaded into it",
            (true, false) => "data memory is unreachable from this bank: results computed here can never be stored",
            (false, false) => "bank has no data-transfer path to or from memory (orphan bank)",
        };
        out.push(Diagnostic::new(
            Code::E002,
            format!("bank {}", b.name),
            problem,
        ));
    }
}

/// E001 / E003 / W004: complex-instruction pattern problems.
///
/// The pattern matcher (`aviv-splitdag`) never roots a match at a leaf
/// or store node, and the DAG's operand edges only reference
/// value-producing nodes — so a pattern whose root op is a leaf/store,
/// or that mentions a store anywhere, can never match. An op node whose
/// child count disagrees with the op's arity (only constructible through
/// the builder API; the parser rejects it) can never match either.
fn lint_complexes(machine: &Machine, out: &mut Vec<Diagnostic>) {
    let mut seen: Vec<(aviv_isdl::UnitId, &PatTree, u32, &str)> = Vec::new();
    for cx in machine.complexes() {
        let element = format!("complex {}", cx.name);
        if cx.pattern.op_count() < 1 {
            out.push(Diagnostic::new(
                Code::E003,
                element.clone(),
                "pattern contains no operation and covers nothing",
            ));
            continue;
        }
        if let PatTree::Op(op, _) = &cx.pattern {
            if op.is_leaf() || op.is_store() {
                out.push(Diagnostic::new(
                    Code::E003,
                    element.clone(),
                    format!("pattern root {op} is not a value-producing computation; the matcher never roots a match here"),
                ));
            }
        }
        let mut ops = Vec::new();
        collect_pattern_ops(&cx.pattern, &mut ops);
        for (op, n_subs, is_root) in ops {
            if n_subs != op.arity() {
                out.push(Diagnostic::new(
                    Code::E003,
                    element.clone(),
                    format!(
                        "pattern op {op} expects {} operands but has {n_subs}; the pattern can never match",
                        op.arity()
                    ),
                ));
            }
            if !is_root && op.is_store() {
                out.push(Diagnostic::new(
                    Code::E003,
                    element.clone(),
                    format!("pattern mentions store op {op}, which never appears as an operand of another node"),
                ));
            }
            if !op.is_leaf() && !op.is_store() && !implemented(machine, op) {
                out.push(Diagnostic::new(
                    Code::E001,
                    element.clone(),
                    format!(
                        "pattern references op {op} but no functional unit implements it; \
                         any program using {op} outside this exact shape cannot compile"
                    ),
                ));
            }
        }
        // Duplicate / shadowed alternatives on the same unit with an
        // identical pattern shape. Equal cost is a plain duplicate
        // (W004); a cost difference means one side is dominated on
        // every axis and can never be chosen (W005) — the costlier
        // declaration is the dead one, whichever order they appear in.
        if let Some(&(_, _, prior_cost, prior_name)) = seen
            .iter()
            .find(|&&(u, p, _, _)| u == cx.unit && *p == cx.pattern)
        {
            if prior_cost == cx.cost {
                out.push(Diagnostic::new(
                    Code::W004,
                    element.clone(),
                    "identical complex pattern already declared on this unit",
                ));
            } else {
                let (dead, live, dead_cost, live_cost) = if cx.cost > prior_cost {
                    (cx.name.as_str(), prior_name, cx.cost, prior_cost)
                } else {
                    (prior_name, cx.name.as_str(), prior_cost, cx.cost)
                };
                out.push(Diagnostic::new(
                    Code::W005,
                    format!("complex {dead}"),
                    format!(
                        "shadowed by complex {live}: identical pattern on the same unit \
                         at cost {live_cost} < {dead_cost}; {dead} can never be chosen"
                    ),
                ));
            }
        }
        seen.push((cx.unit, &cx.pattern, cx.cost, &cx.name));
    }
}

/// Collect `(op, child_count, is_root)` for every op node in a pattern.
fn collect_pattern_ops(pat: &PatTree, out: &mut Vec<(Op, usize, bool)>) {
    fn walk(pat: &PatTree, is_root: bool, out: &mut Vec<(Op, usize, bool)>) {
        if let PatTree::Op(op, subs) = pat {
            out.push((*op, subs.len(), is_root));
            for s in subs {
                walk(s, false, out);
            }
        }
    }
    walk(pat, true, out);
}

/// W001: a bus whose endpoint set is a strict subset of another bus with
/// at least the same capacity adds no connectivity or bandwidth — every
/// transfer it could carry, the wider bus already can.
fn lint_buses(machine: &Machine, out: &mut Vec<Diagnostic>) {
    let sets: Vec<HashSet<Location>> = machine
        .buses()
        .iter()
        .map(|b| b.endpoints.iter().copied().collect())
        .collect();
    for (i, bus) in machine.buses().iter().enumerate() {
        for (j, other) in machine.buses().iter().enumerate() {
            if i == j || sets[i].len() >= sets[j].len() {
                continue;
            }
            if sets[i].is_subset(&sets[j]) && other.capacity >= bus.capacity {
                out.push(Diagnostic::new(
                    Code::W001,
                    format!("bus {}", bus.name),
                    format!(
                        "shadowed by bus {}: its endpoints are a subset of {}'s and its capacity is no larger",
                        other.name, other.name
                    ),
                ));
                break;
            }
        }
    }
}

/// W002: an instruction executing on a unit can need up to its operand
/// count of simultaneously-live registers in the unit's bank (every
/// operand may be a distinct register value). A bank smaller than that
/// makes such instances unschedulable at any pressure.
fn lint_bank_capacity(machine: &Machine, out: &mut Vec<Diagnostic>) {
    for (ui, u) in machine.units().iter().enumerate() {
        if u.bank.index() >= machine.banks().len() {
            continue; // dangling ref reported elsewhere; nothing to measure
        }
        let bank = machine.bank(u.bank);
        let mut need = 0usize;
        let mut culprit = String::new();
        for c in &u.ops {
            if c.op.arity() > need {
                need = c.op.arity();
                culprit = format!("op {}", c.op);
            }
        }
        for cx in machine.complexes() {
            if cx.unit.index() == ui && cx.pattern.arg_count() > need {
                need = cx.pattern.arg_count();
                culprit = format!("complex {}", cx.name);
            }
        }
        if need > bank.size as usize {
            out.push(Diagnostic::new(
                Code::W002,
                format!("bank {}", bank.name),
                format!(
                    "{} on unit {} can need {need} simultaneously-live register operands but bank {} has only {} registers",
                    culprit, u.name, bank.name, bank.size
                ),
            ));
        }
    }
}

/// W003 / E001: constraints that can never trigger, or that reference
/// operations nothing implements.
fn lint_constraints(machine: &Machine, out: &mut Vec<Diagnostic>) {
    for (i, c) in machine.constraints().iter().enumerate() {
        let element = match &c.name {
            Some(n) => format!("constraint {n}"),
            None => format!("constraint #{i}"),
        };
        if c.members.len() < 2 {
            out.push(Diagnostic::new(
                Code::W003,
                element.clone(),
                "constraint has fewer than 2 members and can never trigger",
            ));
            continue;
        }
        // A member can only be active if its unit actually implements
        // the named op; count the members that can ever fire.
        let mut active = 0usize;
        for m in &c.members {
            match *m {
                SlotPattern::UnitOp { unit, op } => {
                    let u = &machine.units()[unit.index()];
                    match op {
                        Some(op) if !u.can_do(op) => {
                            if !implemented(machine, op) {
                                out.push(Diagnostic::new(
                                    Code::E001,
                                    element.clone(),
                                    format!(
                                        "references op {op}, which no functional unit implements"
                                    ),
                                ));
                            } else {
                                out.push(Diagnostic::new(
                                    Code::W003,
                                    element.clone(),
                                    format!(
                                        "member {}.{op} can never be active: unit {} does not implement {op}",
                                        u.name, u.name
                                    ),
                                ));
                            }
                        }
                        _ => active += 1,
                    }
                }
                SlotPattern::BusUse { .. } => active += 1,
            }
        }
        if active > 0 && c.at_most as usize >= active {
            out.push(Diagnostic::new(
                Code::W003,
                element,
                format!(
                    "at most {} of {} satisfiable members can never be exceeded",
                    c.at_most, active
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aviv_isdl::{archs, Bus, Constraint, MachineBuilder, OpCap, RegBank, Unit};

    fn codes(diags: &[Diagnostic]) -> Vec<Code> {
        let mut v: Vec<Code> = diags.iter().map(|d| d.code).collect();
        v.sort();
        v.dedup();
        v
    }

    #[test]
    fn paper_machines_are_clean() {
        for m in [
            archs::example_arch(4),
            archs::arch_two(4),
            archs::dsp_arch(4),
            archs::chained_arch(4),
            archs::single_alu(4),
            archs::wide_arch(4),
            archs::quad_vliw(4),
            archs::accumulator_dsp(),
        ] {
            let diags = lint_machine(&m);
            assert!(diags.is_empty(), "{}: {diags:?}", m.name);
        }
    }

    #[test]
    fn orphan_bank_is_e002() {
        // RF2 exists but no bus touches it.
        let m = Machine::from_parts_lenient(
            "orphan".into(),
            vec![
                Unit {
                    name: "U1".into(),
                    ops: vec![OpCap {
                        op: Op::Add,
                        cost: 1,
                    }],
                    bank: aviv_isdl::BankId(0),
                },
                Unit {
                    name: "U2".into(),
                    ops: vec![OpCap {
                        op: Op::Add,
                        cost: 1,
                    }],
                    bank: aviv_isdl::BankId(1),
                },
            ],
            vec![
                RegBank {
                    name: "RF1".into(),
                    size: 4,
                },
                RegBank {
                    name: "RF2".into(),
                    size: 4,
                },
            ],
            vec![Bus {
                name: "DB".into(),
                endpoints: vec![Location::Bank(aviv_isdl::BankId(0)), Location::Mem],
                capacity: 1,
            }],
            vec![],
            vec![],
        )
        .unwrap();
        let diags = lint_machine(&m);
        assert_eq!(codes(&diags), vec![Code::E002]);
        assert!(diags[0].element.contains("RF2"));
    }

    #[test]
    fn unimplemented_pattern_op_is_e001() {
        let mut b = MachineBuilder::new("m");
        let u1 = b.unit("U1", &[Op::Add], 4);
        b.bus("DB", &[u1], true, 1);
        b.complex(
            "mac",
            u1,
            PatTree::Op(
                Op::Add,
                vec![
                    PatTree::Op(Op::Mul, vec![PatTree::Arg(0), PatTree::Arg(1)]),
                    PatTree::Arg(2),
                ],
            ),
        );
        let m = b.build().unwrap();
        let diags = lint_machine(&m);
        assert_eq!(codes(&diags), vec![Code::E001]);
        assert!(diags[0].message.contains("mul"));
    }

    #[test]
    fn store_rooted_pattern_is_e003() {
        let mut b = MachineBuilder::new("m");
        let u1 = b.unit("U1", &[Op::Add], 4);
        b.bus("DB", &[u1], true, 1);
        b.complex("dead", u1, PatTree::Op(Op::StoreVar, vec![PatTree::Arg(0)]));
        let m = b.build().unwrap();
        assert_eq!(codes(&lint_machine(&m)), vec![Code::E003]);
    }

    #[test]
    fn arity_mismatch_pattern_is_e003() {
        // Only constructible via the builder; the parser rejects it.
        let mut b = MachineBuilder::new("m");
        let u1 = b.unit("U1", &[Op::Add], 4);
        b.bus("DB", &[u1], true, 1);
        b.complex("bad", u1, PatTree::Op(Op::Add, vec![PatTree::Arg(0)]));
        let m = b.build().unwrap();
        assert_eq!(codes(&lint_machine(&m)), vec![Code::E003]);
    }

    #[test]
    fn shadowed_bus_is_w001_but_parallel_twin_is_not() {
        // NARROW ⊂ WIDE with equal capacity: shadowed.
        let mut b = MachineBuilder::new("m");
        let u1 = b.unit("U1", &[Op::Add], 4);
        let u2 = b.unit("U2", &[Op::Add], 4);
        b.bus("WIDE", &[u1, u2], true, 1);
        b.bus("NARROW", &[u1, u2], false, 1);
        let m = b.build().unwrap();
        let diags = lint_machine(&m);
        assert_eq!(codes(&diags), vec![Code::W001]);
        assert!(diags[0].element.contains("NARROW"));

        // quad_vliw's DB0/DB1 have *equal* endpoint sets: intentional
        // bandwidth, not shadowing.
        assert!(lint_machine(&archs::quad_vliw(4)).is_empty());
    }

    #[test]
    fn small_bank_is_w002() {
        // mac needs 3 operand registers; a 2-register bank cannot hold
        // them. This is the defect accumulator_dsp shipped with.
        let mut b = MachineBuilder::new("m");
        let u1 = b.unit("MACU", &[Op::Add, Op::Mul], 2);
        b.bus("DB", &[u1], true, 1);
        b.complex(
            "mac",
            u1,
            PatTree::Op(
                Op::Add,
                vec![
                    PatTree::Op(Op::Mul, vec![PatTree::Arg(0), PatTree::Arg(1)]),
                    PatTree::Arg(2),
                ],
            ),
        );
        let m = b.build().unwrap();
        let diags = lint_machine(&m);
        assert_eq!(codes(&diags), vec![Code::W002]);
    }

    #[test]
    fn never_triggering_constraint_is_w003() {
        let m = Machine::from_parts_lenient(
            "m".into(),
            vec![Unit {
                name: "U1".into(),
                ops: vec![OpCap {
                    op: Op::Add,
                    cost: 1,
                }],
                bank: aviv_isdl::BankId(0),
            }],
            vec![RegBank {
                name: "RF1".into(),
                size: 4,
            }],
            vec![Bus {
                name: "DB".into(),
                endpoints: vec![Location::Bank(aviv_isdl::BankId(0)), Location::Mem],
                capacity: 1,
            }],
            vec![Constraint {
                name: Some("lax".into()),
                at_most: 2,
                members: vec![
                    SlotPattern::UnitOp {
                        unit: aviv_isdl::UnitId(0),
                        op: None,
                    },
                    SlotPattern::UnitOp {
                        unit: aviv_isdl::UnitId(0),
                        op: Some(Op::Add),
                    },
                ],
            }],
            vec![],
        )
        .unwrap();
        assert_eq!(codes(&lint_machine(&m)), vec![Code::W003]);
    }

    #[test]
    fn duplicate_op_is_w004() {
        let m = Machine::from_parts_lenient(
            "m".into(),
            vec![Unit {
                name: "U1".into(),
                ops: vec![
                    OpCap {
                        op: Op::Add,
                        cost: 1,
                    },
                    OpCap {
                        op: Op::Add,
                        cost: 1,
                    },
                ],
                bank: aviv_isdl::BankId(0),
            }],
            vec![RegBank {
                name: "RF1".into(),
                size: 4,
            }],
            vec![Bus {
                name: "DB".into(),
                endpoints: vec![Location::Bank(aviv_isdl::BankId(0)), Location::Mem],
                capacity: 1,
            }],
            vec![],
            vec![],
        )
        .unwrap();
        assert_eq!(codes(&lint_machine(&m)), vec![Code::W004]);
    }

    /// Same unit + same pattern + strictly greater cost: the costlier
    /// alternative is dominated on every axis and reported as W005, in
    /// either declaration order. Equal costs stay a W004 duplicate.
    #[test]
    fn dominated_complex_is_w005_either_order() {
        let mac = || {
            PatTree::Op(
                Op::Add,
                vec![
                    PatTree::Op(Op::Mul, vec![PatTree::Arg(0), PatTree::Arg(1)]),
                    PatTree::Arg(2),
                ],
            )
        };
        for cheap_first in [true, false] {
            let mut b = MachineBuilder::new("m");
            let u1 = b.unit("U1", &[Op::Add, Op::Mul], 4);
            b.bus("DB", &[u1], true, 1);
            if cheap_first {
                b.complex_with_cost("mac_fast", u1, mac(), 1);
                b.complex_with_cost("mac_slow", u1, mac(), 3);
            } else {
                b.complex_with_cost("mac_slow", u1, mac(), 3);
                b.complex_with_cost("mac_fast", u1, mac(), 1);
            }
            let m = b.build().unwrap();
            let diags = lint_machine(&m);
            assert_eq!(codes(&diags), vec![Code::W005], "cheap_first={cheap_first}");
            assert!(
                diags[0].element.contains("mac_slow"),
                "the costlier declaration is the dead one: {diags:?}"
            );
            assert!(diags[0].message.contains("mac_fast"), "{diags:?}");
        }
    }

    /// A shape duplicated on *different* units is neither W004 nor W005:
    /// a second unit able to run the same fusion enables parallelism.
    #[test]
    fn cross_unit_duplicate_shape_is_clean() {
        let mac = || {
            PatTree::Op(
                Op::Add,
                vec![
                    PatTree::Op(Op::Mul, vec![PatTree::Arg(0), PatTree::Arg(1)]),
                    PatTree::Arg(2),
                ],
            )
        };
        let mut b = MachineBuilder::new("m");
        let u1 = b.unit("U1", &[Op::Add, Op::Mul], 4);
        let u2 = b.unit("U2", &[Op::Add, Op::Mul], 4);
        b.bus("DB", &[u1, u2], true, 1);
        b.complex_with_cost("mac1", u1, mac(), 1);
        b.complex_with_cost("mac2", u2, mac(), 3);
        let m = b.build().unwrap();
        assert!(lint_machine(&m).is_empty());
    }

    #[test]
    fn complex_arg_count_drives_w002_via_dedicated_check() {
        // dsp_arch's mac has arg_count 3 on a 4-register bank: clean.
        assert!(lint_machine(&archs::dsp_arch(4)).is_empty());
    }
}
