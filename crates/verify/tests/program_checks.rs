//! Snapshot tests: each seeded-defect fixture under
//! `crates/verify/tests/fixtures/` must produce exactly the `P`
//! diagnostic codes it was written to demonstrate — no more, no fewer —
//! and the codes must be stable across releases (they are part of the
//! tool's interface). The bundled example programs must check clean.

use aviv_ir::parse_function;
use aviv_verify::{check_program, render_report, Code, Format};
use std::fs;
use std::path::{Path, PathBuf};

fn fixture(name: &str) -> String {
    let path: PathBuf = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()))
}

fn codes_for(name: &str) -> Vec<Code> {
    let f = parse_function(&fixture(name)).unwrap();
    check_program(&f).into_iter().map(|d| d.code).collect()
}

#[test]
fn uninit_use_reports_p001() {
    let codes = codes_for("uninit_use.av");
    assert_eq!(codes, vec![Code::P001], "uninit_use.av: {codes:?}");
}

#[test]
fn unreachable_reports_p002() {
    let codes = codes_for("unreachable.av");
    assert_eq!(codes, vec![Code::P002], "unreachable.av: {codes:?}");
}

#[test]
fn dead_store_reports_p003() {
    let codes = codes_for("dead_store.av");
    assert_eq!(codes, vec![Code::P003], "dead_store.av: {codes:?}");
}

#[test]
fn unused_param_reports_p004() {
    let codes = codes_for("unused_param.av");
    assert_eq!(codes, vec![Code::P004], "unused_param.av: {codes:?}");
}

#[test]
fn redundant_copy_reports_p005() {
    let codes = codes_for("redundant_copy.av");
    assert_eq!(codes, vec![Code::P005], "redundant_copy.av: {codes:?}");
}

#[test]
fn const_branch_reports_p006() {
    let codes = codes_for("const_branch.av");
    assert_eq!(codes, vec![Code::P006], "const_branch.av: {codes:?}");
}

#[test]
fn uninit_use_text_report_snapshot() {
    let f = parse_function(&fixture("uninit_use.av")).unwrap();
    let report = render_report(&check_program(&f), Format::Text);
    assert!(report.contains("error[P001]"), "{report}");
    assert!(report.contains("`x`"), "{report}");
    assert!(report.ends_with("1 error, 0 warnings\n"), "{report}");
}

#[test]
fn json_reports_carry_codes_and_explanations() {
    for (name, code, errors) in [
        ("uninit_use.av", "P001", 1),
        ("unreachable.av", "P002", 0),
        ("dead_store.av", "P003", 0),
        ("unused_param.av", "P004", 0),
        ("redundant_copy.av", "P005", 0),
        ("const_branch.av", "P006", 0),
    ] {
        let f = parse_function(&fixture(name)).unwrap();
        let report = render_report(&check_program(&f), Format::Json);
        assert!(
            report.contains(&format!("\"code\":\"{code}\"")),
            "{name}: {report}"
        );
        assert!(report.contains("\"explanation\":"), "{name}: {report}");
        assert!(
            report.contains(&format!("\"errors\":{errors}")),
            "{name}: {report}"
        );
    }
}

#[test]
fn all_shipped_programs_check_clean() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../assets");
    let mut checked = 0;
    for entry in fs::read_dir(&dir).unwrap() {
        let path = entry.unwrap().path();
        if path.extension().and_then(|e| e.to_str()) != Some("av") {
            continue;
        }
        let f = parse_function(&fs::read_to_string(&path).unwrap()).unwrap();
        let diags = check_program(&f);
        assert!(diags.is_empty(), "{}: {diags:?}", path.display());
        checked += 1;
    }
    assert!(checked > 0, "no .av assets found under {}", dir.display());
}
