//! Property tests for the program checker.
//!
//! Two directions: every [`random_function`] output is static-analysis
//! clean by construction — and stays clean through CFG simplification —
//! while single-mutation corruptions (dropping a definition, retargeting
//! a branch) are always caught with the right code.

use aviv_ir::cfgopt::simplify_cfg;
use aviv_ir::randdag::{random_function, RandDagConfig};
use aviv_ir::{BlockDag, BlockId, Function, NodeId, Op, Sym, Terminator};
use aviv_verify::{check_program, Code};
use proptest::prelude::*;

fn config(n_ops: usize) -> RandDagConfig {
    RandDagConfig {
        n_ops,
        n_inputs: 3,
        n_outputs: 2,
        ..Default::default()
    }
}

/// Copy `dag` minus one `StoreVar` node, returning the new DAG and the
/// old→new node map (random-function DAGs hold no memory operations).
fn rebuild_without_store(dag: &BlockDag, victim: NodeId) -> (BlockDag, Vec<Option<NodeId>>) {
    let mut out = BlockDag::new();
    let mut map: Vec<Option<NodeId>> = vec![None; dag.len()];
    for (id, node) in dag.iter() {
        if id == victim {
            continue;
        }
        let new = match node.op {
            Op::Input => out.add_input(node.sym.unwrap()),
            Op::Const => out.add_const(node.imm.unwrap()),
            Op::StoreVar => {
                let v = map[node.args[0].index()].unwrap();
                out.add_store_var(node.sym.unwrap(), v)
            }
            op => {
                let args: Vec<NodeId> = node.args.iter().map(|a| map[a.index()].unwrap()).collect();
                out.add_op(op, &args)
            }
        };
        map[id.index()] = Some(new);
    }
    (out, map)
}

fn remap_term(term: &mut Terminator, map: &[Option<NodeId>]) {
    match term {
        Terminator::Branch { cond, .. } => *cond = map[cond.index()].unwrap(),
        Terminator::Return(Some(v)) => *v = map[v.index()].unwrap(),
        _ => {}
    }
}

/// A `(block, store node, sym)` where the store's variable is read by a
/// later block — dropping it must create a possibly-uninitialized use.
fn cross_block_def(f: &Function) -> Option<(usize, NodeId, Sym)> {
    for (bid, b) in f.iter() {
        for (nid, node) in b.dag.iter() {
            if node.op != Op::StoreVar {
                continue;
            }
            let s = node.sym.expect("store names a variable");
            let read_later = f.iter().any(|(bid2, b2)| {
                bid2.index() > bid.index()
                    && b2
                        .dag
                        .iter()
                        .any(|(_, n)| n.op == Op::Input && n.sym == Some(s))
            });
            if read_later {
                return Some((bid.index(), nid, s));
            }
        }
    }
    None
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn random_functions_check_clean_through_simplify(
        seed in 0u64..10_000,
        n_blocks in 1usize..8,
        n_ops in 2usize..12,
    ) {
        let mut f = random_function(&config(n_ops), n_blocks, seed);
        let diags = check_program(&f);
        prop_assert!(diags.is_empty(), "fresh: {diags:?}");
        simplify_cfg(&mut f);
        let diags = check_program(&f);
        prop_assert!(diags.is_empty(), "after simplify_cfg: {diags:?}");
    }

    #[test]
    fn dropping_a_def_is_caught(seed in 0u64..10_000, n_blocks in 3usize..8) {
        let mut f = random_function(&config(6), n_blocks, seed);
        // Only meaningful when some store feeds a later block's read.
        let Some((bi, victim, _)) = cross_block_def(&f) else {
            return Ok(());
        };
        let (dag, map) = rebuild_without_store(&f.blocks[bi].dag, victim);
        remap_term(&mut f.blocks[bi].term, &map);
        f.blocks[bi].dag = dag;
        let codes: Vec<Code> = check_program(&f).iter().map(|d| d.code).collect();
        prop_assert!(codes.contains(&Code::P001), "{codes:?}");
    }

    #[test]
    fn retargeting_a_branch_is_caught(seed in 0u64..10_000, n_blocks in 3usize..8) {
        let mut f = random_function(&config(6), n_blocks, seed);
        // The CFG is forward-only, so block 1's only possible predecessor
        // is block 0: steering block 0's edges past it orphans it.
        match &mut f.blocks[0].term {
            Terminator::Jump(t) => *t = BlockId(2),
            Terminator::Branch { if_true, if_false, .. } => {
                if if_true.index() <= 1 {
                    *if_true = BlockId(2);
                }
                if if_false.index() <= 1 {
                    *if_false = BlockId(2);
                }
            }
            Terminator::Return(_) => unreachable!("non-final blocks never return"),
        }
        let codes: Vec<Code> = check_program(&f).iter().map(|d| d.code).collect();
        prop_assert!(codes.contains(&Code::P002), "{codes:?}");
    }
}
