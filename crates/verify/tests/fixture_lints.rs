//! Snapshot tests: each seeded-defect fixture under
//! `crates/isdl/tests/fixtures/` must produce exactly the diagnostic codes
//! it was written to demonstrate — no more, no fewer — and the codes must
//! be stable across releases (they are part of the tool's interface).

use aviv_verify::{lint_machine, render_report, Code, Format};
use std::fs;
use std::path::{Path, PathBuf};

fn fixture(name: &str) -> String {
    let path: PathBuf = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../isdl/tests/fixtures")
        .join(name);
    fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()))
}

fn codes_for(name: &str) -> Vec<Code> {
    let machine = aviv_isdl::parse_machine_lenient(&fixture(name)).unwrap();
    lint_machine(&machine).into_iter().map(|d| d.code).collect()
}

#[test]
fn orphan_bank_reports_e002() {
    let codes = codes_for("orphan_bank.isdl");
    assert_eq!(codes, vec![Code::E002], "orphan_bank.isdl: {codes:?}");
}

#[test]
fn uncoverable_op_reports_e001() {
    let codes = codes_for("uncoverable_op.isdl");
    assert_eq!(codes, vec![Code::E001], "uncoverable_op.isdl: {codes:?}");
}

#[test]
fn dead_complex_reports_e003() {
    let codes = codes_for("dead_complex.isdl");
    assert_eq!(codes, vec![Code::E003], "dead_complex.isdl: {codes:?}");
}

#[test]
fn orphan_bank_text_report_snapshot() {
    let machine = aviv_isdl::parse_machine_lenient(&fixture("orphan_bank.isdl")).unwrap();
    let report = render_report(&lint_machine(&machine), Format::Text);
    assert!(report.contains("error[E002]"), "{report}");
    assert!(report.contains("RF2"), "{report}");
    assert!(report.ends_with("1 error, 0 warnings\n"), "{report}");
}

#[test]
fn json_reports_carry_codes_and_explanations() {
    for (name, code) in [
        ("orphan_bank.isdl", "E002"),
        ("uncoverable_op.isdl", "E001"),
        ("dead_complex.isdl", "E003"),
    ] {
        let machine = aviv_isdl::parse_machine_lenient(&fixture(name)).unwrap();
        let report = render_report(&lint_machine(&machine), Format::Json);
        assert!(
            report.contains(&format!("\"code\":\"{code}\"")),
            "{name}: {report}"
        );
        assert!(report.contains("\"explanation\":"), "{name}: {report}");
        assert!(report.contains("\"errors\":1"), "{name}: {report}");
    }
}

#[test]
fn all_shipped_assets_lint_clean() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../assets");
    let mut linted = 0;
    for entry in fs::read_dir(&dir).unwrap() {
        let path = entry.unwrap().path();
        if path.extension().and_then(|e| e.to_str()) != Some("isdl") {
            continue;
        }
        let machine = aviv_isdl::parse_machine(&fs::read_to_string(&path).unwrap()).unwrap();
        let diags = lint_machine(&machine);
        assert!(diags.is_empty(), "{}: {diags:?}", path.display());
        linted += 1;
    }
    assert!(linted > 0, "no .isdl assets found under {}", dir.display());
}
