//! `avivd` — long-running compile server (see `docs/serving.md`).

use aviv_cli::serve::{ServeConfig, Server};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let config = match ServeConfig::parse(&args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let server = Server::new(&config);

    #[cfg(unix)]
    if let Some(path) = &config.socket {
        return match server.serve_unix(std::path::Path::new(path)) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("avivd: {e}");
                ExitCode::FAILURE
            }
        };
    }
    #[cfg(not(unix))]
    if config.socket.is_some() {
        eprintln!("avivd: --socket is only supported on Unix platforms");
        return ExitCode::FAILURE;
    }

    // The unlocked handle: `StdoutLock` is not `Send`, and the pooled
    // pump hands the writer to a drain thread.
    let stdin = std::io::stdin().lock();
    let stdout = std::io::stdout();
    match server.serve(stdin, stdout) {
        Ok(_) => {
            // Graceful end of stream (EOF or `shutdown`): snapshot the
            // plan cache so the next start is warm.
            if config.persist.is_some() {
                if let Err(e) = server.persist_now() {
                    eprintln!("avivd: persist on shutdown failed: {e}");
                }
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("avivd: {e}");
            ExitCode::FAILURE
        }
    }
}
