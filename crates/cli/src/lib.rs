//! # aviv-cli — command-line driver for the AVIV code generator
//!
//! The `avivc` binary ties the toolchain together the way the paper's
//! Fig. 1 draws it: a machine description and a source program in, and —
//! depending on the flags — assembly, a binary, Graphviz, statistics, or
//! a simulation out.
//!
//! ```text
//! avivc --machine fig3.isdl program.av              # print assembly
//! avivc --machine fig3.isdl program.av --emit bin -o prog.bin
//! avivc --machine fig3.isdl program.av --emit dot   # cover-graph graphviz
//! avivc --machine fig3.isdl program.av --simulate a=3,b=4
//! avivc --machine fig3.isdl program.av --stats --explain
//! avivc --machine fig3.isdl program.av --baseline   # sequential codegen
//! avivc --machine fig3.isdl program.av --verify     # invariant-checked
//! avivc lint fig3.isdl                              # machine lint
//! avivc lint fig3.isdl --format json
//! avivc check program.av                            # program dataflow check
//! avivc check program.av --machine fig3.isdl --deny-warnings
//! avivc analyze program.av --machine fig3.isdl      # feasibility pre-flight
//! avivc analyze program.av --machine fig3.isdl --format json
//! ```
//!
//! The argument parser is deliberately dependency-free; see
//! [`Command::parse`] for the accepted grammar.

#![warn(missing_docs)]

pub mod serve;

use aviv::verify::{
    analyze_program, check_program, lint_machine, render_analysis, render_report, validate_asm,
    Format, Severity,
};
use aviv::{CodeGenerator, CodegenError, CodegenOptions, VliwProgram};
use aviv_ir::{parse_function, Function, MemLayout};
use aviv_isdl::{parse_machine, parse_machine_lenient, Target};
use std::fmt::Write as _;

/// What the driver should produce.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Emit {
    /// Assembly text (default).
    Asm,
    /// Binary (byte-format container).
    Bin,
    /// Raw bit-packed ROM image (machine-derived field widths).
    Rom,
    /// Graphviz of the scheduled cover graph of the first block.
    Dot,
    /// Graphviz of the Split-Node DAG of the first block.
    SndagDot,
    /// ISDL echo of the parsed machine (round-trip check).
    Isdl,
}

/// Parsed command-line options.
#[derive(Debug, Clone)]
pub struct Options {
    /// Path to the machine description.
    pub machine_path: String,
    /// Path to the source program.
    pub program_path: String,
    /// Additional program paths (batch mode): every program is compiled
    /// for the same machine, across the worker pool when `--jobs` is not
    /// 1, and the outputs are concatenated in argument order.
    pub extra_programs: Vec<String>,
    /// What to emit.
    pub emit: Emit,
    /// Output path (`-` or absent = stdout).
    pub output: Option<String>,
    /// Heuristic preset: "on" (default), "thorough", or "off".
    pub preset: String,
    /// Worker threads for per-block covering: 1 = sequential (default),
    /// 0 = one per available core. Output is identical for any value.
    pub jobs: usize,
    /// Simulate with `name=value` bindings after compiling.
    pub simulate: Option<Vec<(String, i64)>>,
    /// Print utilization statistics.
    pub stats: bool,
    /// Print the per-block compilation explanation.
    pub explain: bool,
    /// Print the per-block optimality-gap table: achieved instruction
    /// count and peak pressure against the static lower bounds from
    /// `aviv_verify::analyze`.
    pub report: bool,
    /// Use the sequential baseline generator instead of AVIV.
    pub baseline: bool,
    /// Force the pipeline invariant verifier on (it already defaults on
    /// in debug builds).
    pub verify: bool,
    /// Run the translation validator on the emitted assembly: re-parse
    /// it and prove every block's exit-live values congruent to the
    /// source function (`T` diagnostics on divergence).
    pub validate: bool,
    /// Node-expansion fuel per block per degradation-ladder rung
    /// (`None` = unlimited).
    pub fuel: Option<u64>,
    /// Wall-clock deadline for the whole compile in milliseconds
    /// (`None` = no deadline).
    pub timeout_ms: Option<u64>,
}

/// What `avivc` was asked to do.
#[derive(Debug, Clone)]
pub enum Command {
    /// Compile a program for a machine (the default mode).
    Compile(Options),
    /// `avivc lint <machine.isdl>`: statically analyze a machine
    /// description and report coded diagnostics.
    Lint(LintOptions),
    /// `avivc check <program.av>`: statically analyze a source program
    /// with the global dataflow framework and report coded diagnostics.
    Check(CheckOptions),
    /// `avivc analyze <program.av> --machine <m.isdl>`: machine×program
    /// feasibility pre-flight with `M`-coded diagnostics and admissible
    /// per-block lower bounds.
    Analyze(AnalyzeOptions),
}

/// Options for the `lint` subcommand.
#[derive(Debug, Clone)]
pub struct LintOptions {
    /// Path to the machine description to lint.
    pub machine_path: String,
    /// Report format.
    pub format: Format,
    /// Exit nonzero on warnings, not just errors.
    pub deny_warnings: bool,
}

/// Options for the `check` subcommand.
#[derive(Debug, Clone)]
pub struct CheckOptions {
    /// Path to the source program to check.
    pub program_path: String,
    /// Optional machine description: when present, the program is also
    /// compiled for that machine with the pipeline invariant verifier
    /// on, and any `V` diagnostics join the report.
    pub machine_path: Option<String>,
    /// Report format.
    pub format: Format,
    /// Exit nonzero on warnings, not just errors.
    pub deny_warnings: bool,
}

/// Options for the `analyze` subcommand.
#[derive(Debug, Clone)]
pub struct AnalyzeOptions {
    /// Path to the source program to analyze.
    pub program_path: String,
    /// Path to the machine description to analyze against (required —
    /// feasibility is a property of the pair).
    pub machine_path: String,
    /// Report format.
    pub format: Format,
    /// Exit nonzero on warnings, not just errors.
    pub deny_warnings: bool,
}

impl Command {
    /// Parse an argument vector (without the program name), dispatching
    /// on the `lint` subcommand.
    ///
    /// # Errors
    ///
    /// Returns a [`CliError`] describing the first problem.
    pub fn parse(args: &[String]) -> Result<Command, CliError> {
        if args.first().is_some_and(|a| a == "lint") {
            let mut machine_path = None;
            let mut format = Format::Text;
            let mut deny_warnings = false;
            let mut it = args[1..].iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "-h" | "--help" => return Err(err(USAGE)),
                    "--format" => {
                        let f = it.next().ok_or_else(|| err("--format needs text|json"))?;
                        format = f.parse().map_err(err)?;
                    }
                    "--deny-warnings" => deny_warnings = true,
                    other if !other.starts_with('-') && machine_path.is_none() => {
                        machine_path = Some(other.to_string());
                    }
                    other => return Err(err(format!("unknown argument `{other}`\n{USAGE}"))),
                }
            }
            Ok(Command::Lint(LintOptions {
                machine_path: machine_path.ok_or_else(|| err("lint needs a machine path"))?,
                format,
                deny_warnings,
            }))
        } else if args.first().is_some_and(|a| a == "check") {
            let mut program_path = None;
            let mut machine_path = None;
            let mut format = Format::Text;
            let mut deny_warnings = false;
            let mut it = args[1..].iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "-h" | "--help" => return Err(err(USAGE)),
                    "--format" => {
                        let f = it.next().ok_or_else(|| err("--format needs text|json"))?;
                        format = f.parse().map_err(err)?;
                    }
                    "--machine" => {
                        machine_path = Some(
                            it.next()
                                .ok_or_else(|| err("--machine needs a path"))?
                                .clone(),
                        );
                    }
                    "--deny-warnings" => deny_warnings = true,
                    other if !other.starts_with('-') && program_path.is_none() => {
                        program_path = Some(other.to_string());
                    }
                    other => return Err(err(format!("unknown argument `{other}`\n{USAGE}"))),
                }
            }
            Ok(Command::Check(CheckOptions {
                program_path: program_path.ok_or_else(|| err("check needs a program path"))?,
                machine_path,
                format,
                deny_warnings,
            }))
        } else if args.first().is_some_and(|a| a == "analyze") {
            let mut program_path = None;
            let mut machine_path = None;
            let mut format = Format::Text;
            let mut deny_warnings = false;
            let mut it = args[1..].iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "-h" | "--help" => return Err(err(USAGE)),
                    "--format" => {
                        let f = it.next().ok_or_else(|| err("--format needs text|json"))?;
                        format = f.parse().map_err(err)?;
                    }
                    "--machine" => {
                        machine_path = Some(
                            it.next()
                                .ok_or_else(|| err("--machine needs a path"))?
                                .clone(),
                        );
                    }
                    "--deny-warnings" => deny_warnings = true,
                    other if !other.starts_with('-') && program_path.is_none() => {
                        program_path = Some(other.to_string());
                    }
                    other => return Err(err(format!("unknown argument `{other}`\n{USAGE}"))),
                }
            }
            Ok(Command::Analyze(AnalyzeOptions {
                program_path: program_path.ok_or_else(|| err("analyze needs a program path"))?,
                machine_path: machine_path
                    .ok_or_else(|| err("analyze needs --machine <file.isdl>"))?,
                format,
                deny_warnings,
            }))
        } else {
            Options::parse(args).map(Command::Compile)
        }
    }
}

/// A user-facing driver error.
#[derive(Debug)]
pub struct CliError(pub String);

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for CliError {}

fn err(msg: impl Into<String>) -> CliError {
    CliError(msg.into())
}

/// Usage text.
pub const USAGE: &str = "\
usage: avivc --machine <file.isdl> <program.av> [more.av ...] [options]
       avivc lint <file.isdl> [--format text|json] [--deny-warnings]
       avivc check <program.av> [--machine <file.isdl>]
                                [--format text|json] [--deny-warnings]
       avivc analyze <program.av> --machine <file.isdl>
                                [--format text|json] [--deny-warnings]

options:
  --emit asm|bin|rom|dot|sndag-dot|isdl
                                      what to produce (default: asm)
  -o, --output <path>                 write to a file instead of stdout
  --preset on|thorough|off            heuristic preset (default: on)
  --jobs <n>                          worker threads (1 = sequential,
                                      0 = one per core; default: 1).
                                      With one program the pool covers
                                      blocks; with several programs it
                                      covers whole programs. The output
                                      is identical for every value
  --simulate k=v[,k=v...]             run the program with these inputs
  --stats                             print utilization statistics
  --explain                           print per-block decisions
  --report                            print the per-block optimality-gap
                                      table: achieved instructions and
                                      peak pressure vs the static lower
                                      bounds
  --baseline                          use the sequential phase-ordered
                                      generator instead of AVIV
  --verify                            run the pipeline invariant verifier
                                      (default in debug builds); compile
                                      fails on any violation
  --validate                          re-parse the emitted assembly and
                                      statically prove every block's
                                      exit-live values congruent to the
                                      source function; the compile fails
                                      with `T` diagnostics on divergence
  --fuel <n>                          node-expansion fuel per block per
                                      degradation-ladder rung; on
                                      exhaustion the block falls back to
                                      simpler covering modes and the
                                      downgrade is reported (default:
                                      unlimited)
  --timeout-ms <n>                    wall-clock deadline for the whole
                                      compile; blocks still in flight
                                      when it passes degrade like fuel
                                      exhaustion (default: none)
  --format text|json                  lint/check report format
                                      (default: text)
  --deny-warnings                     lint/check exit nonzero on
                                      warnings, not just errors
  -h, --help                          this text

`avivc lint` statically analyzes a machine description and reports coded
diagnostics (see docs/diagnostics.md); it exits nonzero when any
error-severity finding is reported (or any finding at all under
`--deny-warnings`).

Passing several program paths compiles each of them for the same
machine (batch mode) and concatenates the assembly in argument order,
each chunk under a `; program <name>` banner. Batch mode supports
`--emit asm` only.

`avivc check` statically analyzes a source program with the global
dataflow framework — uninitialized uses, unreachable blocks, dead
stores, unused parameters, redundant copies, constant branches — and
reports `P`-coded diagnostics under the same exit-code contract. With
`--machine`, the program is additionally compiled for that machine with
the pipeline invariant verifier on.

`avivc --validate` runs the translation validator on every compile: the
emitted assembly is parsed back and each block's exit-live values are
proven congruent to the source IR over symbolic terms (see
docs/diagnostics.md, `T` codes). A clean run adds a one-line
`validate: ...` report; divergence fails the compile with the full
`T`-coded report.

`avivc analyze` runs the machine×program feasibility pre-flight: it
proves every operation coverable and every def→use value route present
on the given machine, reporting `M`-coded errors naming the exact node,
op, and bank pair otherwise, and prints admissible per-block lower
bounds on instruction count and register pressure. Exit status follows
the lint/check contract: nonzero on any error-severity finding, or on
any finding at all under `--deny-warnings`.
";

impl Options {
    /// Parse an argument vector (without the program name).
    ///
    /// # Errors
    ///
    /// Returns a [`CliError`] describing the first problem; `--help`
    /// yields an error carrying the usage text.
    pub fn parse(args: &[String]) -> Result<Options, CliError> {
        let mut machine_path = None;
        let mut program_path = None;
        let mut extra_programs = Vec::new();
        let mut emit = Emit::Asm;
        let mut output = None;
        let mut preset = "on".to_string();
        let mut jobs = 1usize;
        let mut simulate = None;
        let mut stats = false;
        let mut explain = false;
        let mut report = false;
        let mut baseline = false;
        let mut verify = false;
        let mut validate = false;
        let mut fuel = None;
        let mut timeout_ms = None;

        let mut it = args.iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "-h" | "--help" => return Err(err(USAGE)),
                "--machine" => {
                    machine_path = Some(
                        it.next()
                            .ok_or_else(|| err("--machine needs a path"))?
                            .clone(),
                    );
                }
                "--emit" => {
                    let kind = it.next().ok_or_else(|| err("--emit needs a kind"))?;
                    emit = match kind.as_str() {
                        "asm" => Emit::Asm,
                        "bin" => Emit::Bin,
                        "rom" => Emit::Rom,
                        "dot" => Emit::Dot,
                        "sndag-dot" => Emit::SndagDot,
                        "isdl" => Emit::Isdl,
                        other => return Err(err(format!("unknown emit kind `{other}`"))),
                    };
                }
                "-o" | "--output" => {
                    output = Some(
                        it.next()
                            .ok_or_else(|| err("--output needs a path"))?
                            .clone(),
                    );
                }
                "--preset" => {
                    preset = it
                        .next()
                        .ok_or_else(|| err("--preset needs a name"))?
                        .clone();
                    if !matches!(preset.as_str(), "on" | "thorough" | "off") {
                        return Err(err(format!("unknown preset `{preset}`")));
                    }
                }
                "--jobs" => {
                    let n = it.next().ok_or_else(|| err("--jobs needs a count"))?;
                    jobs = n
                        .parse()
                        .map_err(|_| err(format!("bad worker count `{n}`")))?;
                }
                "--simulate" => {
                    let spec = it.next().ok_or_else(|| err("--simulate needs k=v list"))?;
                    let mut bindings = Vec::new();
                    for pair in spec.split(',').filter(|s| !s.is_empty()) {
                        let (k, v) = pair
                            .split_once('=')
                            .ok_or_else(|| err(format!("bad binding `{pair}`")))?;
                        let v: i64 = v
                            .parse()
                            .map_err(|_| err(format!("bad value in `{pair}`")))?;
                        bindings.push((k.to_string(), v));
                    }
                    simulate = Some(bindings);
                }
                "--fuel" => {
                    let n = it.next().ok_or_else(|| err("--fuel needs a unit count"))?;
                    fuel = Some(
                        n.parse()
                            .map_err(|_| err(format!("bad fuel count `{n}`")))?,
                    );
                }
                "--timeout-ms" => {
                    let n = it
                        .next()
                        .ok_or_else(|| err("--timeout-ms needs milliseconds"))?;
                    timeout_ms = Some(n.parse().map_err(|_| err(format!("bad timeout `{n}`")))?);
                }
                "--stats" => stats = true,
                "--explain" => explain = true,
                "--report" => report = true,
                "--baseline" => baseline = true,
                "--verify" => verify = true,
                "--validate" => validate = true,
                other if !other.starts_with('-') && program_path.is_none() => {
                    program_path = Some(other.to_string());
                }
                other if !other.starts_with('-') => {
                    extra_programs.push(other.to_string());
                }
                other => return Err(err(format!("unknown argument `{other}`\n{USAGE}"))),
            }
        }
        Ok(Options {
            machine_path: machine_path.ok_or_else(|| err("missing --machine"))?,
            program_path: program_path.ok_or_else(|| err("missing program path"))?,
            extra_programs,
            emit,
            output,
            preset,
            jobs,
            simulate,
            stats,
            explain,
            report,
            baseline,
            verify,
            validate,
            fuel,
            timeout_ms,
        })
    }
}

/// The driver's product: the bytes/text to write plus log lines for
/// stderr-style reporting.
#[derive(Debug, Default)]
pub struct Outcome {
    /// Primary output (respecting `--emit`).
    pub output: Vec<u8>,
    /// Human-readable report lines (stats, explanation, simulation).
    pub report: String,
}

/// Run the driver on in-memory sources (the testable core of `main`).
///
/// # Errors
///
/// Returns a [`CliError`] with a user-facing message.
pub fn drive(options: &Options, machine_src: &str, program_src: &str) -> Result<Outcome, CliError> {
    let machine =
        parse_machine(machine_src).map_err(|e| err(format!("machine description: {e}")))?;
    let function = parse_function(program_src).map_err(|e| err(format!("program: {e}")))?;

    if options.emit == Emit::Isdl {
        return Ok(Outcome {
            output: aviv_isdl::to_isdl(&machine).into_bytes(),
            report: String::new(),
        });
    }

    let preset = build_preset(options);
    let mut outcome = Outcome::default();
    let generator = CodeGenerator::new(machine).options(preset);
    let target = generator.target().clone();

    if options.baseline {
        if options.validate {
            return Err(err(
                "--validate does not support --baseline (baseline blocks \
                 carry no terminators to check)",
            ));
        }
        return drive_baseline(options, &target, &function, outcome);
    }

    // Block-level emissions need the block artifacts.
    match options.emit {
        Emit::Dot | Emit::SndagDot => {
            let sndag = aviv_splitdag::SplitNodeDag::build(&function.blocks[0].dag, &target)
                .map_err(|e| err(format!("unsupported: {e}")))?;
            if options.emit == Emit::SndagDot {
                outcome.output =
                    aviv_splitdag::sndag_to_dot(&sndag, &function.blocks[0].dag, &target)
                        .into_bytes();
                return Ok(outcome);
            }
            let mut syms = function.syms.clone();
            let mut layout = MemLayout::for_function(&function);
            let block = generator
                .compile_block(&function.blocks[0].dag, &mut syms, &mut layout)
                .map_err(|e| err(format!("compile: {e}")))?;
            outcome.output =
                aviv::covergraph_to_dot(&block.graph, &target, &syms, Some(&block.schedule))
                    .into_bytes();
            return Ok(outcome);
        }
        _ => {}
    }

    let (program, report) = generator
        .compile_function(&function)
        .map_err(|e| err(format!("compile: {e}")))?;

    // Surface every degradation-ladder step: a budgeted compile that
    // stepped down still succeeds, but never silently.
    for d in &report.downgrades {
        let _ = writeln!(outcome.report, "downgrade: {d}");
    }
    if !report.complete {
        let _ = writeln!(
            outcome.report,
            "note: compile incomplete under the given budget; output is \
             correct but may be slower than an unbudgeted compile"
        );
    }

    if options.validate {
        run_validation(
            &function,
            &target,
            &program.render(&target),
            "",
            &mut outcome.report,
        )?;
    }

    if options.report {
        let _ = writeln!(
            outcome.report,
            "block  instrs  bound  gap  pressure  bound  gap"
        );
        for (bi, b) in report.blocks.iter().enumerate() {
            let _ = writeln!(
                outcome.report,
                "bb{bi}: {} {} {} {} {} {}",
                b.instructions,
                b.min_instructions_bound,
                b.instructions.saturating_sub(b.min_instructions_bound),
                b.peak_pressure,
                b.min_pressure_bound,
                b.peak_pressure.saturating_sub(b.min_pressure_bound),
            );
        }
    }
    if options.explain {
        let mut syms = function.syms.clone();
        let mut layout = MemLayout::for_function(&function);
        for (bi, block) in function.blocks.iter().enumerate() {
            let r = generator
                .compile_block(&block.dag, &mut syms, &mut layout)
                .map_err(|e| err(format!("compile: {e}")))?;
            let _ = writeln!(outcome.report, "--- block bb{bi} ---");
            outcome.report.push_str(&r.explain(&target, &syms));
        }
    }
    if options.stats {
        let stats = aviv_vm::program_stats(&target, &program);
        outcome.report.push_str(&stats.render(&target));
        let _ = writeln!(
            outcome.report,
            "blocks: {}, total instructions: {}",
            report.blocks.len(),
            report.total_instructions
        );
    }
    if let Some(bindings) = &options.simulate {
        run_simulation(&target, &program, bindings, &mut outcome)?;
    }

    outcome.output = match options.emit {
        Emit::Asm => program.render(&target).into_bytes(),
        Emit::Bin => aviv_vm::assemble(&program),
        Emit::Rom => {
            let (bytes, bits) = aviv_vm::encode_packed(&target, &program)
                .map_err(|e| err(format!("packed encoding: {e}")))?;
            let _ = writeln!(
                outcome.report,
                "ROM image: {bits} bits ({} bytes, {} instructions)",
                bytes.len(),
                program.instructions.len()
            );
            bytes
        }
        _ => unreachable!("handled above"),
    };
    Ok(outcome)
}

/// Run the translation validator on rendered assembly and either append
/// a one-line success note to `report` (prefixed for batch mode) or
/// fail with the full `T`-coded report.
fn run_validation(
    function: &Function,
    target: &Target,
    asm: &str,
    prefix: &str,
    report: &mut String,
) -> Result<(), CliError> {
    let tv = validate_asm(function, asm, &target.machine);
    if tv.ok() {
        let _ = writeln!(
            report,
            "{prefix}validate: {} block(s), {} obligation(s), ok",
            tv.blocks, tv.obligations
        );
        Ok(())
    } else {
        Err(err(format!(
            "{prefix}validate: emitted assembly diverges from the source\n{}",
            render_report(&tv.diagnostics, Format::Text)
        )))
    }
}

fn build_preset(options: &Options) -> CodegenOptions {
    let mut preset = match options.preset.as_str() {
        "thorough" => CodegenOptions::thorough(),
        "off" => CodegenOptions::heuristics_off(),
        _ => CodegenOptions::heuristics_on(),
    }
    .with_jobs(options.jobs)
    .with_fuel(options.fuel)
    .with_deadline_ms(options.timeout_ms);
    if options.verify {
        preset = preset.with_verify(true);
    }
    preset
}

/// Run the driver in batch mode: compile every program for the same
/// machine across the worker pool and concatenate the rendered assembly
/// in input order, each chunk under a `; program <name>` banner.
///
/// Programs are distributed over `--jobs` workers at whole-program
/// granularity (see `CodeGenerator::compile_batch`); the concatenated
/// output and the per-program report lines are byte-identical for any
/// worker count.
///
/// # Errors
///
/// Returns a [`CliError`] for unparsable sources, for the first failing
/// compile (prefixed with the program's name), or when an option that
/// has no batch meaning (`--emit` other than `asm`, `--baseline`,
/// `--simulate`, `--explain`) was combined with multiple programs.
pub fn drive_batch(
    options: &Options,
    machine_src: &str,
    programs: &[(String, String)],
) -> Result<Outcome, CliError> {
    if options.emit != Emit::Asm {
        return Err(err(
            "batch mode (multiple programs) supports --emit asm only",
        ));
    }
    if options.baseline || options.simulate.is_some() || options.explain {
        return Err(err(
            "batch mode (multiple programs) does not support --baseline, \
             --simulate, or --explain",
        ));
    }
    let machine =
        parse_machine(machine_src).map_err(|e| err(format!("machine description: {e}")))?;
    let mut functions = Vec::with_capacity(programs.len());
    for (name, src) in programs {
        functions.push(parse_function(src).map_err(|e| err(format!("{name}: {e}")))?);
    }

    let generator = CodeGenerator::new(machine).options(build_preset(options));
    let target = generator.target().clone();
    let mut outcome = Outcome::default();
    let results = generator.compile_batch(&functions);
    for (((name, _), function), result) in programs.iter().zip(&functions).zip(results) {
        let (program, report) = result.map_err(|e| err(format!("{name}: compile: {e}")))?;
        for d in &report.downgrades {
            let _ = writeln!(outcome.report, "{name}: downgrade: {d}");
        }
        if !report.complete {
            let _ = writeln!(
                outcome.report,
                "{name}: note: compile incomplete under the given budget; output \
                 is correct but may be slower than an unbudgeted compile"
            );
        }
        if options.validate {
            run_validation(
                function,
                &target,
                &program.render(&target),
                &format!("{name}: "),
                &mut outcome.report,
            )?;
        }
        if options.stats {
            let stats = aviv_vm::program_stats(&target, &program);
            outcome.report.push_str(&stats.render(&target));
            let _ = writeln!(
                outcome.report,
                "{name}: blocks: {}, total instructions: {}",
                report.blocks.len(),
                report.total_instructions
            );
        }
        outcome
            .output
            .extend_from_slice(format!("; program {name}\n").as_bytes());
        outcome
            .output
            .extend_from_slice(program.render(&target).as_bytes());
    }
    Ok(outcome)
}

/// Run the `lint` subcommand on an in-memory machine description.
///
/// Returns the rendered report plus whether the binary should exit
/// nonzero: any error-severity finding, or — under `--deny-warnings` —
/// any finding at all. The machine is parsed leniently so semantic
/// defects the strict validator refuses — orphan banks, dead
/// constraints — are reported with codes instead of aborting at the
/// first problem.
///
/// # Errors
///
/// Returns a [`CliError`] only for lexical/syntax problems or dangling
/// references; semantic defects become diagnostics.
pub fn run_lint(options: &LintOptions, machine_src: &str) -> Result<(String, bool), CliError> {
    let machine =
        parse_machine_lenient(machine_src).map_err(|e| err(format!("machine description: {e}")))?;
    let diags = lint_machine(&machine);
    let fail = diags.iter().any(|d| d.severity() == Severity::Error)
        || (options.deny_warnings && !diags.is_empty());
    Ok((render_report(&diags, options.format), fail))
}

/// Run the `check` subcommand on an in-memory program (and, when
/// `--machine` was given, its machine description).
///
/// Returns the rendered report plus whether the binary should exit
/// nonzero, under the same contract as [`run_lint`]. When a machine is
/// supplied the program is also compiled for it with the pipeline
/// invariant verifier forced on; invariant violations join the report
/// as `V` diagnostics.
///
/// # Errors
///
/// Returns a [`CliError`] for unparsable sources or for compile
/// failures other than invariant violations (unsupported operations,
/// covering failures).
pub fn run_check(
    options: &CheckOptions,
    program_src: &str,
    machine_src: Option<&str>,
) -> Result<(String, bool), CliError> {
    let function = parse_function(program_src).map_err(|e| err(format!("program: {e}")))?;
    let mut diags = check_program(&function);
    if let Some(machine_src) = machine_src {
        let machine =
            parse_machine(machine_src).map_err(|e| err(format!("machine description: {e}")))?;
        let generator =
            CodeGenerator::new(machine).options(CodegenOptions::default().with_verify(true));
        match generator.compile_function(&function) {
            Ok(_) => {}
            Err(CodegenError::Invariant(v)) => diags.extend(v),
            Err(e) => return Err(err(format!("compile: {e}"))),
        }
    }
    let fail = diags.iter().any(|d| d.severity() == Severity::Error)
        || (options.deny_warnings && !diags.is_empty());
    Ok((render_report(&diags, options.format), fail))
}

/// Run the `analyze` subcommand on an in-memory program and machine
/// description: the machine×program feasibility pre-flight behind
/// `avivc analyze`.
///
/// Returns the rendered analysis plus whether the binary should exit
/// nonzero, under the same contract as [`run_lint`]: any `M`-coded
/// error (uncoverable op, missing value route), or — under
/// `--deny-warnings` — any finding at all, including machine lints.
///
/// # Errors
///
/// Returns a [`CliError`] for unparsable sources only; feasibility
/// defects become diagnostics in the report.
pub fn run_analyze(
    options: &AnalyzeOptions,
    program_src: &str,
    machine_src: &str,
) -> Result<(String, bool), CliError> {
    let machine =
        parse_machine(machine_src).map_err(|e| err(format!("machine description: {e}")))?;
    let function = parse_function(program_src).map_err(|e| err(format!("program: {e}")))?;
    let target = Target::new(machine);
    let analysis = analyze_program(&function, &target);
    let machine_error = analysis
        .machine
        .diagnostics
        .iter()
        .any(|d| d.severity() == Severity::Error);
    let n_findings = analysis.machine.diagnostics.len() + analysis.diagnostics.len();
    let fail = !analysis.feasible() || machine_error || (options.deny_warnings && n_findings > 0);
    Ok((render_analysis(&analysis, options.format), fail))
}

fn drive_baseline(
    options: &Options,
    target: &Target,
    function: &Function,
    mut outcome: Outcome,
) -> Result<Outcome, CliError> {
    if function.blocks.len() != 1 {
        return Err(err("--baseline supports single-block programs"));
    }
    let generator = aviv_baseline::BaselineGenerator::with_target(target.clone());
    let mut syms = function.syms.clone();
    let mut layout = MemLayout::for_function(function);
    let r = generator
        .compile_block(&function.blocks[0].dag, &mut syms, &mut layout)
        .map_err(|e| err(format!("baseline compile: {e}")))?;
    let _ = writeln!(
        outcome.report,
        "baseline: {} instructions, {} spill(s)",
        r.size, r.spills
    );
    let program = VliwProgram {
        machine_name: target.machine.name.clone(),
        instructions: r.instructions,
        block_starts: vec![0],
        var_addrs: syms
            .iter()
            .map(|(s, n)| (n.to_string(), layout.addr(s)))
            .collect(),
    };
    outcome.output = match options.emit {
        Emit::Bin => aviv_vm::assemble(&program),
        _ => program.render(target).into_bytes(),
    };
    Ok(outcome)
}

fn run_simulation(
    target: &Target,
    program: &VliwProgram,
    bindings: &[(String, i64)],
    outcome: &mut Outcome,
) -> Result<(), CliError> {
    let mut sim = aviv_vm::Simulator::new(target, program);
    for (name, v) in bindings {
        if program.var_addrs.iter().any(|(n, _)| n == name) {
            sim.set_var(name, *v);
        } else {
            return Err(err(format!("unknown variable `{name}`")));
        }
    }
    let result = sim.run().map_err(|e| err(format!("simulate: {e}")))?;
    let _ = writeln!(
        outcome.report,
        "simulation: {} cycles, return {:?}",
        result.cycles, result.return_value
    );
    // Report the final value of every named, non-internal variable.
    let mut names: Vec<&str> = program
        .var_addrs
        .iter()
        .map(|(n, _)| n.as_str())
        .filter(|n| !n.starts_with("__"))
        .collect();
    names.sort_unstable();
    for name in names {
        if let Some(v) = sim.read_var(name) {
            let _ = writeln!(outcome.report, "  {name} = {v}");
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const MACHINE: &str = "machine M {
        unit U1 { ops { add, sub, compl, cmpgt } regfile R1[4]; }
        unit U2 { ops { add, mul } regfile R2[4]; }
        memory DM;
        bus DB capacity 1 connects { R1, R2, DM };
    }";

    const PROGRAM: &str = "func f(a, b) { x = a * b + 1; return x; }";

    fn opts(extra: &[&str]) -> Options {
        let mut args = vec![
            "--machine".to_string(),
            "m.isdl".to_string(),
            "prog.av".to_string(),
        ];
        args.extend(extra.iter().map(std::string::ToString::to_string));
        Options::parse(&args).unwrap()
    }

    #[test]
    fn parse_rejects_bad_args() {
        assert!(Options::parse(&["--emit".into()]).is_err());
        assert!(Options::parse(&["prog.av".into()]).is_err());
        assert!(Options::parse(&[
            "--machine".into(),
            "m".into(),
            "p".into(),
            "--emit".into(),
            "wat".into()
        ])
        .is_err());
        let help = Options::parse(&["--help".into()]).unwrap_err();
        assert!(help.0.contains("usage"));
    }

    #[test]
    fn asm_emission_works() {
        let out = drive(&opts(&[]), MACHINE, PROGRAM).unwrap();
        let text = String::from_utf8(out.output).unwrap();
        assert!(text.contains("mul"), "{text}");
        assert!(text.contains("ret"), "{text}");
    }

    #[test]
    fn bin_emission_round_trips() {
        let out = drive(&opts(&["--emit", "bin"]), MACHINE, PROGRAM).unwrap();
        let program = aviv_vm::disassemble(&out.output).unwrap();
        assert!(!program.instructions.is_empty());
    }

    #[test]
    fn dot_emissions_are_graphviz() {
        for kind in ["dot", "sndag-dot"] {
            let out = drive(&opts(&["--emit", kind]), MACHINE, PROGRAM).unwrap();
            let text = String::from_utf8(out.output).unwrap();
            assert!(text.starts_with("digraph"), "{kind}: {text}");
        }
    }

    #[test]
    fn isdl_echo_round_trips() {
        let out = drive(&opts(&["--emit", "isdl"]), MACHINE, PROGRAM).unwrap();
        let text = String::from_utf8(out.output).unwrap();
        assert!(aviv_isdl::parse_machine(&text).is_ok(), "{text}");
    }

    #[test]
    fn simulation_reports_variables() {
        let out = drive(&opts(&["--simulate", "a=6,b=7"]), MACHINE, PROGRAM).unwrap();
        assert!(out.report.contains("return Some(43)"), "{}", out.report);
        assert!(out.report.contains("x = 43"), "{}", out.report);
        // Unknown variables are rejected.
        assert!(drive(&opts(&["--simulate", "zz=1"]), MACHINE, PROGRAM).is_err());
    }

    #[test]
    fn stats_and_explain_produce_reports() {
        let out = drive(&opts(&["--stats", "--explain"]), MACHINE, PROGRAM).unwrap();
        assert!(out.report.contains("instructions"), "{}", out.report);
        assert!(out.report.contains("block bb0"), "{}", out.report);
    }

    #[test]
    fn baseline_mode_compiles() {
        let out = drive(&opts(&["--baseline"]), MACHINE, PROGRAM).unwrap();
        assert!(out.report.contains("baseline:"), "{}", out.report);
        let text = String::from_utf8(out.output).unwrap();
        assert!(text.contains("mul"));
    }

    #[test]
    fn rom_emission_reports_bits() {
        let out = drive(&opts(&["--emit", "rom"]), MACHINE, PROGRAM).unwrap();
        assert!(!out.output.is_empty());
        assert!(out.report.contains("ROM image:"), "{}", out.report);
    }

    #[test]
    fn jobs_flag_parses_and_output_matches_sequential() {
        assert_eq!(opts(&[]).jobs, 1);
        assert_eq!(opts(&["--jobs", "4"]).jobs, 4);
        assert_eq!(opts(&["--jobs", "0"]).jobs, 0);
        assert!(Options::parse(&[
            "--machine".into(),
            "m".into(),
            "p".into(),
            "--jobs".into(),
            "lots".into()
        ])
        .is_err());

        let program = "func f(a, b) { x = a * b + 1; if (x > 3) goto t;
            y = x + 2; t: return x; }";
        let seq = drive(&opts(&[]), MACHINE, program).unwrap();
        let par = drive(&opts(&["--jobs", "4"]), MACHINE, program).unwrap();
        assert_eq!(seq.output, par.output, "--jobs must not change output");
    }

    #[test]
    fn batch_parse_collects_extra_programs() {
        let o = Options::parse(&[
            "--machine".into(),
            "m.isdl".into(),
            "a.av".into(),
            "b.av".into(),
            "c.av".into(),
        ])
        .unwrap();
        assert_eq!(o.program_path, "a.av");
        assert_eq!(
            o.extra_programs,
            vec!["b.av".to_string(), "c.av".to_string()]
        );
        assert!(opts(&[]).extra_programs.is_empty());
    }

    #[test]
    fn batch_output_is_banner_separated_and_jobs_invariant() {
        let second = "func g(a, b) { y = a + b; z = y * y; return z; }";
        let programs = vec![
            ("first.av".to_string(), PROGRAM.to_string()),
            ("second.av".to_string(), second.to_string()),
        ];
        let batch = drive_batch(&opts(&[]), MACHINE, &programs).unwrap();
        let text = String::from_utf8(batch.output.clone()).unwrap();
        // Input order is preserved and each chunk matches the
        // single-program driver byte for byte.
        let one = drive(&opts(&[]), MACHINE, PROGRAM).unwrap();
        let two = drive(&opts(&[]), MACHINE, second).unwrap();
        let mut expected = b"; program first.av\n".to_vec();
        expected.extend_from_slice(&one.output);
        expected.extend_from_slice(b"; program second.av\n");
        expected.extend_from_slice(&two.output);
        assert_eq!(batch.output, expected, "{text}");
        // Worker count never changes the bytes.
        for jobs in ["0", "4"] {
            let par = drive_batch(&opts(&["--jobs", jobs]), MACHINE, &programs).unwrap();
            assert_eq!(par.output, batch.output, "--jobs {jobs}");
            assert_eq!(par.report, batch.report, "--jobs {jobs}");
        }
    }

    #[test]
    fn batch_rejects_single_program_modes() {
        let programs = vec![
            ("a.av".to_string(), PROGRAM.to_string()),
            ("b.av".to_string(), PROGRAM.to_string()),
        ];
        assert!(drive_batch(&opts(&["--emit", "bin"]), MACHINE, &programs).is_err());
        assert!(drive_batch(&opts(&["--baseline"]), MACHINE, &programs).is_err());
        assert!(drive_batch(&opts(&["--simulate", "a=1"]), MACHINE, &programs).is_err());
        assert!(drive_batch(&opts(&["--explain"]), MACHINE, &programs).is_err());
    }

    #[test]
    fn batch_reports_are_name_prefixed() {
        let programs = vec![
            ("a.av".to_string(), PROGRAM.to_string()),
            ("b.av".to_string(), PROGRAM.to_string()),
        ];
        let out = drive_batch(&opts(&["--fuel", "1"]), MACHINE, &programs).unwrap();
        assert!(out.report.contains("a.av: downgrade:"), "{}", out.report);
        assert!(out.report.contains("b.av: downgrade:"), "{}", out.report);
        let bad = vec![("broken.av".to_string(), "func f( {".to_string())];
        let e = drive_batch(&opts(&[]), MACHINE, &bad).unwrap_err();
        assert!(e.0.starts_with("broken.av:"), "{e}");
    }

    #[test]
    fn fuel_and_timeout_flags_parse() {
        assert_eq!(opts(&[]).fuel, None);
        assert_eq!(opts(&[]).timeout_ms, None);
        assert_eq!(opts(&["--fuel", "500"]).fuel, Some(500));
        assert_eq!(opts(&["--timeout-ms", "2000"]).timeout_ms, Some(2000));
        assert!(Options::parse(&[
            "--machine".into(),
            "m".into(),
            "p".into(),
            "--fuel".into(),
            "lots".into()
        ])
        .is_err());
        assert!(Options::parse(&[
            "--machine".into(),
            "m".into(),
            "p".into(),
            "--timeout-ms".into(),
            "-3".into()
        ])
        .is_err());
    }

    #[test]
    fn generous_fuel_output_matches_unlimited() {
        let unlimited = drive(&opts(&[]), MACHINE, PROGRAM).unwrap();
        let budgeted = drive(&opts(&["--fuel", "1000000"]), MACHINE, PROGRAM).unwrap();
        assert_eq!(unlimited.output, budgeted.output);
        assert!(
            !budgeted.report.contains("downgrade:"),
            "{}",
            budgeted.report
        );
    }

    #[test]
    fn tight_fuel_degrades_but_still_compiles_correctly() {
        let out = drive(
            &opts(&["--fuel", "1", "--verify", "--simulate", "a=6,b=7"]),
            MACHINE,
            PROGRAM,
        )
        .unwrap();
        assert!(out.report.contains("downgrade:"), "{}", out.report);
        assert!(out.report.contains("compile incomplete"), "{}", out.report);
        // Degraded code is still correct code.
        assert!(out.report.contains("return Some(43)"), "{}", out.report);
    }

    #[test]
    fn presets_are_accepted() {
        for preset in ["on", "thorough", "off"] {
            let out = drive(&opts(&["--preset", preset]), MACHINE, PROGRAM).unwrap();
            assert!(!out.output.is_empty(), "{preset}");
        }
    }

    #[test]
    fn verify_flag_compiles_clean_programs() {
        let out = drive(&opts(&["--verify"]), MACHINE, PROGRAM).unwrap();
        assert!(!out.output.is_empty());
        assert!(opts(&["--verify"]).verify);
        assert!(!opts(&[]).verify);
    }

    #[test]
    fn validate_flag_proves_emitted_asm() {
        assert!(!opts(&[]).validate);
        assert!(opts(&["--validate"]).validate);
        let out = drive(&opts(&["--validate"]), MACHINE, PROGRAM).unwrap();
        assert!(
            out.report.contains("validate: 1 block(s)"),
            "{}",
            out.report
        );
        assert!(out.report.contains("ok"), "{}", out.report);
        // Multi-block control flow validates too.
        let branchy = "func f(a, b) { x = a * b + 1; if (x > 3) goto t;
            x = x + 2; t: return x; }";
        let out = drive(&opts(&["--validate"]), MACHINE, branchy).unwrap();
        assert!(out.report.contains("validate: "), "{}", out.report);
        assert!(out.report.contains("ok"), "{}", out.report);
        // Degraded (spill-heavy) compiles still validate clean.
        let out = drive(&opts(&["--validate", "--fuel", "1"]), MACHINE, PROGRAM).unwrap();
        assert!(out.report.contains("downgrade:"), "{}", out.report);
        assert!(out.report.contains("validate: "), "{}", out.report);
        // --baseline output has no terminators to check.
        assert!(drive(&opts(&["--validate", "--baseline"]), MACHINE, PROGRAM).is_err());
    }

    #[test]
    fn batch_validate_is_name_prefixed() {
        let programs = vec![
            ("a.av".to_string(), PROGRAM.to_string()),
            ("b.av".to_string(), PROGRAM.to_string()),
        ];
        let out = drive_batch(&opts(&["--validate"]), MACHINE, &programs).unwrap();
        assert!(out.report.contains("a.av: validate: "), "{}", out.report);
        assert!(out.report.contains("b.av: validate: "), "{}", out.report);
    }

    #[test]
    fn lint_subcommand_parses() {
        let cmd = Command::parse(&["lint".into(), "m.isdl".into()]).unwrap();
        let Command::Lint(lint) = cmd else {
            panic!("expected lint command");
        };
        assert_eq!(lint.machine_path, "m.isdl");
        assert_eq!(lint.format, Format::Text);

        let cmd = Command::parse(&[
            "lint".into(),
            "m.isdl".into(),
            "--format".into(),
            "json".into(),
        ])
        .unwrap();
        let Command::Lint(lint) = cmd else {
            panic!("expected lint command");
        };
        assert_eq!(lint.format, Format::Json);

        assert!(Command::parse(&["lint".into()]).is_err());
        assert!(
            Command::parse(&["lint".into(), "m".into(), "--format".into(), "yaml".into()]).is_err()
        );
        // Non-lint argument vectors still parse as compiles.
        assert!(matches!(
            Command::parse(&["--machine".into(), "m".into(), "p".into()]),
            Ok(Command::Compile(_))
        ));
    }

    #[test]
    fn lint_reports_clean_machine() {
        let lint = LintOptions {
            machine_path: "m.isdl".into(),
            format: Format::Text,
            deny_warnings: false,
        };
        let (report, has_errors) = run_lint(&lint, MACHINE).unwrap();
        assert!(!has_errors);
        assert!(report.contains("0 errors, 0 warnings"), "{report}");
    }

    #[test]
    fn lint_reports_orphan_bank_with_code() {
        // RF2 is on no bus: the strict parser refuses this machine, the
        // lenient lint path reports it as E002.
        let broken = "machine Broken {
            unit U1 { ops { add } regfile R1[4]; }
            unit U2 { ops { add } regfile R2[4]; }
            memory DM;
            bus DB capacity 1 connects { R1, DM };
        }";
        assert!(aviv_isdl::parse_machine(broken).is_err());
        let lint = LintOptions {
            machine_path: "m.isdl".into(),
            format: Format::Text,
            deny_warnings: false,
        };
        let (report, has_errors) = run_lint(&lint, broken).unwrap();
        assert!(has_errors);
        assert!(report.contains("error[E002]"), "{report}");

        let json = LintOptions {
            machine_path: "m.isdl".into(),
            format: Format::Json,
            deny_warnings: false,
        };
        let (report, _) = run_lint(&json, broken).unwrap();
        assert!(report.contains("\"code\":\"E002\""), "{report}");
        assert!(report.contains("\"errors\":1"), "{report}");
    }

    fn check_opts(extra: &[&str]) -> CheckOptions {
        let mut args = vec!["check".to_string(), "prog.av".to_string()];
        args.extend(extra.iter().map(std::string::ToString::to_string));
        let Command::Check(check) = Command::parse(&args).unwrap() else {
            panic!("expected check command");
        };
        check
    }

    #[test]
    fn check_subcommand_parses() {
        let check = check_opts(&[]);
        assert_eq!(check.program_path, "prog.av");
        assert_eq!(check.machine_path, None);
        assert_eq!(check.format, Format::Text);
        assert!(!check.deny_warnings);

        let check = check_opts(&["--machine", "m.isdl", "--format", "json", "--deny-warnings"]);
        assert_eq!(check.machine_path.as_deref(), Some("m.isdl"));
        assert_eq!(check.format, Format::Json);
        assert!(check.deny_warnings);

        assert!(Command::parse(&["check".into()]).is_err());
        assert!(Command::parse(&["check".into(), "p".into(), "--wat".into()]).is_err());
    }

    #[test]
    fn lint_accepts_deny_warnings() {
        let cmd =
            Command::parse(&["lint".into(), "m.isdl".into(), "--deny-warnings".into()]).unwrap();
        let Command::Lint(lint) = cmd else {
            panic!("expected lint command");
        };
        assert!(lint.deny_warnings);
    }

    #[test]
    fn check_reports_clean_program() {
        let (report, fail) = run_check(&check_opts(&["--deny-warnings"]), PROGRAM, None).unwrap();
        assert!(!fail);
        assert!(report.contains("0 errors, 0 warnings"), "{report}");
        // A machine only adds invariant checking; the program stays clean.
        let (_, fail) =
            run_check(&check_opts(&["--deny-warnings"]), PROGRAM, Some(MACHINE)).unwrap();
        assert!(!fail);
    }

    #[test]
    fn check_reports_uninitialized_use_as_error() {
        let bad = "func f(a) { y = x + 1; return y; }";
        let (report, fail) = run_check(&check_opts(&[]), bad, None).unwrap();
        assert!(fail);
        assert!(report.contains("error[P001]"), "{report}");

        let (report, _) = run_check(&check_opts(&["--format", "json"]), bad, None).unwrap();
        assert!(report.contains("\"code\":\"P001\""), "{report}");
    }

    #[test]
    fn check_deny_warnings_fails_on_warnings_only() {
        // An unused parameter is warning-severity: clean exit normally,
        // nonzero under --deny-warnings.
        let warn = "func f(a, b) { return a; }";
        let (report, fail) = run_check(&check_opts(&[]), warn, None).unwrap();
        assert!(!fail, "{report}");
        assert!(report.contains("warning[P004]"), "{report}");
        let (_, fail) = run_check(&check_opts(&["--deny-warnings"]), warn, None).unwrap();
        assert!(fail);
    }

    fn analyze_opts(extra: &[&str]) -> AnalyzeOptions {
        let mut args = vec![
            "analyze".to_string(),
            "prog.av".to_string(),
            "--machine".to_string(),
            "m.isdl".to_string(),
        ];
        args.extend(extra.iter().map(std::string::ToString::to_string));
        let Command::Analyze(analyze) = Command::parse(&args).unwrap() else {
            panic!("expected analyze command");
        };
        analyze
    }

    #[test]
    fn analyze_subcommand_parses() {
        let a = analyze_opts(&[]);
        assert_eq!(a.program_path, "prog.av");
        assert_eq!(a.machine_path, "m.isdl");
        assert_eq!(a.format, Format::Text);
        assert!(!a.deny_warnings);

        let a = analyze_opts(&["--format", "json", "--deny-warnings"]);
        assert_eq!(a.format, Format::Json);
        assert!(a.deny_warnings);

        // The machine is required: feasibility is a property of the pair.
        assert!(Command::parse(&["analyze".into(), "p.av".into()]).is_err());
        assert!(Command::parse(&["analyze".into()]).is_err());
        assert!(Command::parse(&["analyze".into(), "p".into(), "--wat".into()]).is_err());
    }

    #[test]
    fn analyze_reports_feasible_program() {
        let (report, fail) = run_analyze(&analyze_opts(&[]), PROGRAM, MACHINE).unwrap();
        assert!(!fail, "{report}");
        assert!(report.contains("feasible"), "{report}");
        assert!(report.contains(">="), "{report}");
        assert!(report.contains("0 errors"), "{report}");
    }

    #[test]
    fn analyze_flags_unsupported_op_as_m001() {
        // MACHINE has no divider, so `/` is statically uncoverable.
        let bad = "func f(a, b) { x = a / b; return x; }";
        let (report, fail) = run_analyze(&analyze_opts(&[]), bad, MACHINE).unwrap();
        assert!(fail);
        assert!(report.contains("error[M001]"), "{report}");
        assert!(report.contains("INFEASIBLE"), "{report}");

        let (json, fail) = run_analyze(&analyze_opts(&["--format", "json"]), bad, MACHINE).unwrap();
        assert!(fail);
        assert!(json.contains("\"code\":\"M001\""), "{json}");
        assert!(json.contains("\"feasible\":false"), "{json}");
    }

    #[test]
    fn analyze_json_is_schema_stable() {
        let (json, fail) =
            run_analyze(&analyze_opts(&["--format", "json"]), PROGRAM, MACHINE).unwrap();
        assert!(!fail);
        for key in [
            "\"schema_version\":1",
            "\"machine\":\"M\"",
            "\"program\":\"f\"",
            "\"feasible\":true",
            "\"ops\":{",
            "\"routes\":[",
            "\"blocks\":[",
            "\"min_instructions\":",
            "\"min_pressure\":",
            "\"errors\":0",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }

    #[test]
    fn report_flag_prints_gap_table() {
        assert!(!opts(&[]).report);
        assert!(opts(&["--report"]).report);
        let out = drive(&opts(&["--report"]), MACHINE, PROGRAM).unwrap();
        assert!(
            out.report.contains("block  instrs  bound  gap"),
            "{}",
            out.report
        );
        assert!(out.report.contains("bb0:"), "{}", out.report);
    }
}
