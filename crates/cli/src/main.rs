//! `avivc` — compile programs for ISDL-described machines.

use aviv_cli::{drive, drive_batch, run_analyze, run_check, run_lint, Command};
use std::io::Write as _;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match Command::parse(&args) {
        Ok(Command::Lint(options)) => {
            let machine_src = match std::fs::read_to_string(&options.machine_path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("cannot read {}: {e}", options.machine_path);
                    return ExitCode::FAILURE;
                }
            };
            match run_lint(&options, &machine_src) {
                Ok((report, fail)) => {
                    print!("{report}");
                    if fail {
                        ExitCode::FAILURE
                    } else {
                        ExitCode::SUCCESS
                    }
                }
                Err(e) => {
                    eprintln!("{e}");
                    ExitCode::FAILURE
                }
            }
        }
        Ok(Command::Check(options)) => {
            let program_src = match std::fs::read_to_string(&options.program_path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("cannot read {}: {e}", options.program_path);
                    return ExitCode::FAILURE;
                }
            };
            let machine_src = match &options.machine_path {
                Some(path) => match std::fs::read_to_string(path) {
                    Ok(s) => Some(s),
                    Err(e) => {
                        eprintln!("cannot read {path}: {e}");
                        return ExitCode::FAILURE;
                    }
                },
                None => None,
            };
            match run_check(&options, &program_src, machine_src.as_deref()) {
                Ok((report, fail)) => {
                    print!("{report}");
                    if fail {
                        ExitCode::FAILURE
                    } else {
                        ExitCode::SUCCESS
                    }
                }
                Err(e) => {
                    eprintln!("{e}");
                    ExitCode::FAILURE
                }
            }
        }
        Ok(Command::Analyze(options)) => {
            let program_src = match std::fs::read_to_string(&options.program_path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("cannot read {}: {e}", options.program_path);
                    return ExitCode::FAILURE;
                }
            };
            let machine_src = match std::fs::read_to_string(&options.machine_path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("cannot read {}: {e}", options.machine_path);
                    return ExitCode::FAILURE;
                }
            };
            match run_analyze(&options, &program_src, &machine_src) {
                Ok((report, fail)) => {
                    print!("{report}");
                    if fail {
                        ExitCode::FAILURE
                    } else {
                        ExitCode::SUCCESS
                    }
                }
                Err(e) => {
                    eprintln!("{e}");
                    ExitCode::FAILURE
                }
            }
        }
        Ok(Command::Compile(options)) => {
            let machine_src = match std::fs::read_to_string(&options.machine_path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("cannot read {}: {e}", options.machine_path);
                    return ExitCode::FAILURE;
                }
            };
            let mut programs = Vec::new();
            for path in std::iter::once(&options.program_path).chain(&options.extra_programs) {
                match std::fs::read_to_string(path) {
                    Ok(s) => programs.push((path.clone(), s)),
                    Err(e) => {
                        eprintln!("cannot read {path}: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            let outcome = if programs.len() > 1 {
                drive_batch(&options, &machine_src, &programs)
            } else {
                drive(&options, &machine_src, &programs[0].1)
            };
            match outcome {
                Ok(outcome) => {
                    if !outcome.report.is_empty() {
                        eprint!("{}", outcome.report);
                    }
                    match options.output.as_deref() {
                        None | Some("-") => {
                            let mut stdout = std::io::stdout().lock();
                            if stdout.write_all(&outcome.output).is_err() {
                                return ExitCode::FAILURE;
                            }
                        }
                        Some(path) => {
                            if let Err(e) = std::fs::write(path, &outcome.output) {
                                eprintln!("cannot write {path}: {e}");
                                return ExitCode::FAILURE;
                            }
                        }
                    }
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("{e}");
                    ExitCode::FAILURE
                }
            }
        }
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}
