//! `avivd` — the serving layer: a long-running compile server answering
//! newline-delimited JSON requests from an incremental plan cache.
//!
//! One request per line in, one response per line out, in request order
//! regardless of how many workers race on the middle. The interesting
//! part is what *doesn't* recompute: every block plan is memoized in a
//! shared [`PlanCache`] keyed on `(block content hash, target
//! fingerprint, planning-options fingerprint)`, so a client recompiling
//! an edited program pays only for the blocks it actually changed — and
//! the served bytes are identical to a cold one-shot `avivc` compile at
//! any worker/job count (see `docs/serving.md` for the full contract).
//!
//! ```text
//! → {"op":"ping"}
//! ← {"ok":true,"op":"ping","protocol":2}
//! → {"id":1,"op":"compile","machine_path":"assets/fig3.isdl","program_path":"assets/dot4.av"}
//! ← {"id":1,"ok":true,"op":"compile","blocks":1,"cache_hits":0,"cache_misses":1,...,"asm":"..."}
//! → {"op":"stats"}
//! ← {"ok":true,"op":"stats","requests":2,"in_flight":0,...,"cache":{"hits":0,...}}
//! → {"op":"shutdown"}
//! ← {"ok":true,"op":"shutdown"}
//! ```
//!
//! Requests carry their own QoS: `preset`, `jobs`, `fuel`, `timeout_ms`,
//! and a `qos` class (`"interactive"`, the default, or `"batch"`) per
//! compile. Budgeted (incomplete) compiles still answer, but only
//! *complete* plans enter the cache, so a degraded response never
//! poisons later requests. A request may also set `"validate":true`
//! to run the translation validator on the rendered assembly — the
//! check runs on the final bytes, after any cache hits, so even a
//! corrupted cache entry is statically detectable.
//!
//! # Protocol v2: survival features
//!
//! * **Cancellation** — `{"op":"cancel","id":X}` fires the
//!   [`CancelToken`] of the in-flight (or queued) compile with id `X`;
//!   the compile aborts at its next budget check and answers
//!   `"ok":false,"cancelled":true`. A cancel for an id not yet seen is
//!   remembered, so a cancel that races ahead of its request still
//!   lands. Control ops take effect at *read* time — they work even
//!   while every worker is busy — but their responses still flow
//!   through the in-order pipeline.
//! * **Admission control** — at most `--queue-depth` compiles may be
//!   queued; beyond that requests are rejected immediately with
//!   `"ok":false,"retry_after_ms":N` instead of growing memory without
//!   bound. Queued compiles are scheduled fairly across QoS classes
//!   (round-robin between `interactive` and `batch`).
//! * **Persistence** — with `--persist <path>` the plan cache is
//!   snapshotted to disk (atomically: write-temp, fsync, rename) on
//!   graceful shutdown or on `{"op":"persist"}`, and restored on
//!   startup; a corrupt/truncated/stale snapshot is quarantined and the
//!   server starts cold. `--validate-on-load` forces translation
//!   validation on any compile served from restored entries.
//! * **Graceful shutdown** — `{"op":"shutdown"}` stops intake, answers
//!   everything already accepted (on every connection), persists the
//!   cache, then exits. A *dropped* connection instead cancels its
//!   in-flight compiles: read/write failures fire every token the
//!   session minted.

use aviv::jsonv::{self, Json};
use aviv::verify::{render_report, validate_asm, Format};
use aviv::{
    load_snapshot, save_snapshot, CacheStats, CancelToken, CodeGenerator, CodegenError,
    CodegenOptions, FaultConfig, LoadOutcome, PlanCache,
};
use aviv_ir::parse_function;
use aviv_isdl::{parse_machine, Target};
use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};
use std::fmt::Write as _;
use std::io::{self, BufRead, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Version of the request/response protocol, reported by `ping`.
pub const PROTOCOL_VERSION: u32 = 2;

/// Default bound on queued compile requests (see
/// [`ServeConfig::queue_depth`]).
pub const DEFAULT_QUEUE_DEPTH: usize = 256;

/// Bound on remembered early cancels (cancel requests that arrive
/// before the compile they name).
const PRECANCEL_CAPACITY: usize = 1024;

/// Server construction knobs (the `avivd` command line).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Request workers: 1 = handle requests sequentially (default),
    /// 0 = one per available core. Responses are always delivered in
    /// request order and are byte-identical for every value.
    pub workers: usize,
    /// Plan-cache capacity in block plans (see
    /// [`aviv::DEFAULT_CACHE_CAPACITY`]).
    pub cache_size: usize,
    /// Serve a Unix socket at this path instead of stdin/stdout.
    pub socket: Option<String>,
    /// Snapshot the plan cache to this file on graceful shutdown (and
    /// on `{"op":"persist"}`), restoring it on startup. See
    /// [`aviv::persist`](aviv::persist) for the format and recovery
    /// semantics.
    pub persist: Option<String>,
    /// Force translation validation on compiles served from entries
    /// restored out of a persisted snapshot.
    pub validate_on_load: bool,
    /// Bound on queued compile requests across all connections; beyond
    /// it requests are rejected with `retry_after_ms` backpressure.
    pub queue_depth: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 1,
            cache_size: aviv::DEFAULT_CACHE_CAPACITY,
            socket: None,
            persist: None,
            validate_on_load: false,
            queue_depth: DEFAULT_QUEUE_DEPTH,
        }
    }
}

impl ServeConfig {
    /// Parse the `avivd` argument vector (without the program name).
    ///
    /// # Errors
    ///
    /// Returns a [`CliError`](crate::CliError) describing the first
    /// problem; `--help` yields an error carrying [`SERVE_USAGE`].
    pub fn parse(args: &[String]) -> Result<ServeConfig, crate::CliError> {
        let mut config = ServeConfig::default();
        let mut it = args.iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "-h" | "--help" => return Err(crate::CliError(SERVE_USAGE.to_string())),
                "--workers" => {
                    let n = it
                        .next()
                        .ok_or_else(|| crate::CliError("--workers needs a count".into()))?;
                    config.workers = n
                        .parse()
                        .map_err(|_| crate::CliError(format!("bad worker count `{n}`")))?;
                }
                "--cache-size" => {
                    let n = it
                        .next()
                        .ok_or_else(|| crate::CliError("--cache-size needs a count".into()))?;
                    config.cache_size = n
                        .parse()
                        .map_err(|_| crate::CliError(format!("bad cache size `{n}`")))?;
                }
                "--queue-depth" => {
                    let n = it
                        .next()
                        .ok_or_else(|| crate::CliError("--queue-depth needs a count".into()))?;
                    config.queue_depth = n
                        .parse()
                        .map_err(|_| crate::CliError(format!("bad queue depth `{n}`")))?;
                }
                "--socket" => {
                    config.socket = Some(
                        it.next()
                            .ok_or_else(|| crate::CliError("--socket needs a path".into()))?
                            .clone(),
                    );
                }
                "--persist" => {
                    config.persist = Some(
                        it.next()
                            .ok_or_else(|| crate::CliError("--persist needs a path".into()))?
                            .clone(),
                    );
                }
                "--validate-on-load" => config.validate_on_load = true,
                other => {
                    return Err(crate::CliError(format!(
                        "unknown argument `{other}`\n{SERVE_USAGE}"
                    )))
                }
            }
        }
        Ok(config)
    }
}

/// Usage text for the `avivd` binary.
pub const SERVE_USAGE: &str = "\
usage: avivd [--workers <n>] [--cache-size <n>] [--queue-depth <n>]
             [--socket <path>] [--persist <path>] [--validate-on-load]

Long-running compile server. Reads one JSON request per line from
stdin (or the Unix socket given with --socket) and writes one JSON
response per line, in request order. See docs/serving.md for the
protocol (compile, cancel, persist, stats, ping, shutdown).

options:
  --workers <n>       request workers per connection (1 = sequential,
                      0 = one per core; default: 1). Responses are
                      identical and in request order for every value
  --cache-size <n>    plan-cache capacity in block plans
                      (default: 4096)
  --queue-depth <n>   bound on queued compile requests; beyond it
                      requests get \"retry_after_ms\" backpressure
                      (default: 256)
  --socket <path>     bind a Unix socket instead of stdin/stdout
                      (connections are served concurrently; the cache
                      is shared across all of them)
  --persist <path>    snapshot the plan cache to this file on
                      shutdown / {\"op\":\"persist\"}; restore it on
                      startup (corrupt snapshots are quarantined)
  --validate-on-load  re-prove restored cache entries through the
                      translation validator on first use
  -h, --help          this text
";

/// What [`Server::serve`] did: how many requests it answered and
/// whether a `shutdown` request ended the stream (as opposed to EOF).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeSummary {
    /// Responses written.
    pub requests: u64,
    /// True when a `shutdown` request ended the session.
    pub shutdown: bool,
}

/// A compile admitted past admission control, queued for a worker.
struct Job {
    seq: u64,
    id: String,
    key: Option<String>,
    generation: u64,
    token: CancelToken,
    req: Json,
}

#[derive(Default)]
struct DispatchState {
    interactive: VecDeque<Job>,
    batch: VecDeque<Job>,
    /// Fairness toggle: which class is next when both have work.
    serve_batch: bool,
    closed: bool,
}

/// The per-session compile queue: two QoS classes drained round-robin
/// by the worker pool.
struct Dispatch {
    state: Mutex<DispatchState>,
    cv: Condvar,
}

impl Dispatch {
    fn new() -> Dispatch {
        Dispatch {
            state: Mutex::new(DispatchState::default()),
            cv: Condvar::new(),
        }
    }

    fn push(&self, job: Job, batch: bool) {
        let mut st = lock_unpoisoned(&self.state);
        if batch {
            st.batch.push_back(job);
        } else {
            st.interactive.push_back(job);
        }
        drop(st);
        self.cv.notify_one();
    }

    fn close(&self) {
        lock_unpoisoned(&self.state).closed = true;
        self.cv.notify_all();
    }

    fn pop(&self) -> Option<Job> {
        let mut st = lock_unpoisoned(&self.state);
        loop {
            let job = if st.serve_batch {
                st.batch.pop_front().or_else(|| st.interactive.pop_front())
            } else {
                st.interactive.pop_front().or_else(|| st.batch.pop_front())
            };
            if let Some(job) = job {
                st.serve_batch = !st.serve_batch;
                return Some(job);
            }
            if st.closed {
                return None;
            }
            st = match self.cv.wait(st) {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
        }
    }
}

/// How a compile request failed.
enum CompileFailure {
    /// The request's cancel token fired; answer `"cancelled":true`.
    Cancelled,
    /// Anything else, as a message for the `"error"` field.
    Message(String),
}

impl From<String> for CompileFailure {
    fn from(m: String) -> Self {
        CompileFailure::Message(m)
    }
}

/// The compile server: a shared [`PlanCache`], a memoized machine
/// table, the in-flight request registry, and the request pump. One
/// `Server` outlives any number of [`serve`](Server::serve) sessions —
/// the cache and registry are shared by every concurrent connection.
pub struct Server {
    cache: Arc<PlanCache>,
    /// Parsed machines memoized by source-text hash: repeat requests
    /// skip ISDL parsing and share one `Target` across workers.
    targets: Mutex<HashMap<u64, Arc<Target>>>,
    workers: usize,
    requests: AtomicU64,
    /// Snapshot file for [`aviv::persist`] (None = persistence off).
    persist: Option<PathBuf>,
    validate_on_load: bool,
    queue_depth: usize,
    /// Compiles admitted but not yet picked up by a worker.
    queued: AtomicUsize,
    /// Compiles currently executing.
    in_flight: AtomicUsize,
    /// Compile responses served with `"cancelled":true`.
    cancellations: AtomicU64,
    /// Generation counter distinguishing cancel tokens that share an id.
    generation: AtomicU64,
    /// Cancellable requests by canonical id; a `cancel` op fires every
    /// token under its id (queued or executing, any connection).
    inflight: Mutex<HashMap<String, Vec<(u64, CancelToken)>>>,
    /// Ids cancelled before their compile arrived (bounded).
    precancelled: Mutex<HashSet<String>>,
    /// Exponential moving average of compile wall time, in
    /// microseconds — the unit of `retry_after_ms` backpressure.
    ema_compile_us: AtomicU64,
    /// Serializes snapshot writes.
    persist_lock: Mutex<()>,
    /// Concurrent serve sessions (socket connections), for sizing the
    /// outer pool registration.
    active_sessions: AtomicUsize,
}

/// RAII count of live serve sessions.
struct SessionGuard<'a>(&'a Server);

impl<'a> SessionGuard<'a> {
    fn new(server: &'a Server) -> SessionGuard<'a> {
        server.active_sessions.fetch_add(1, Ordering::SeqCst);
        SessionGuard(server)
    }
}

impl Drop for SessionGuard<'_> {
    fn drop(&mut self) {
        self.0.active_sessions.fetch_sub(1, Ordering::SeqCst);
    }
}

impl Server {
    /// Build a server from `config` (`workers == 0` resolves to one
    /// per available core). With [`ServeConfig::persist`] set, restores
    /// the snapshot — a corrupt or stale file is quarantined (see
    /// [`aviv::persist::load_snapshot`]) and the server starts cold.
    pub fn new(config: &ServeConfig) -> Server {
        let workers = match config.workers {
            0 => std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
            n => n,
        };
        let server = Server {
            cache: Arc::new(PlanCache::new(config.cache_size)),
            targets: Mutex::new(HashMap::new()),
            workers,
            requests: AtomicU64::new(0),
            persist: config.persist.as_ref().map(PathBuf::from),
            validate_on_load: config.validate_on_load,
            queue_depth: config.queue_depth.max(1),
            queued: AtomicUsize::new(0),
            in_flight: AtomicUsize::new(0),
            cancellations: AtomicU64::new(0),
            generation: AtomicU64::new(0),
            inflight: Mutex::new(HashMap::new()),
            precancelled: Mutex::new(HashSet::new()),
            ema_compile_us: AtomicU64::new(0),
            persist_lock: Mutex::new(()),
            active_sessions: AtomicUsize::new(0),
        };
        if let Some(path) = &server.persist {
            match load_snapshot(path, &server.cache) {
                Ok(LoadOutcome::Missing) => {}
                Ok(LoadOutcome::Loaded { entries, absorbed }) => {
                    eprintln!(
                        "avivd: restored {absorbed}/{entries} cached plans from {}",
                        path.display()
                    );
                }
                Ok(LoadOutcome::Quarantined { reason, moved_to }) => {
                    let dest = moved_to
                        .as_ref()
                        .map_or_else(|| "left in place".to_string(), |p| p.display().to_string());
                    eprintln!(
                        "avivd: snapshot {} failed verification ({reason}); quarantined ({dest}); \
                         serving from cold",
                        path.display()
                    );
                }
                Err(e) => {
                    eprintln!(
                        "avivd: cannot read snapshot {}: {e}; serving from cold",
                        path.display()
                    );
                }
            }
        }
        server
    }

    /// The shared plan cache (for inspection in tests and stats).
    pub fn cache(&self) -> &Arc<PlanCache> {
        &self.cache
    }

    /// Resolved worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Snapshot the plan cache to the configured `--persist` path,
    /// returning how many entries were written. Saves are serialized
    /// and atomic (write-temp, fsync, rename).
    ///
    /// # Errors
    ///
    /// A message when persistence is not configured or the write
    /// fails; the previous snapshot (if any) survives intact.
    pub fn persist_now(&self) -> Result<usize, String> {
        let Some(path) = &self.persist else {
            return Err("persistence is not configured (start avivd with --persist)".into());
        };
        let _guard = lock_unpoisoned(&self.persist_lock);
        save_snapshot(path, &self.cache).map_err(|e| format!("persist to {}: {e}", path.display()))
    }

    /// Pump requests from `reader` to `writer` until EOF or a
    /// `shutdown` request. Responses are written in request order and
    /// flushed per line; compiles are answered by a pool of
    /// [`workers`](Server::workers) behind a reorder buffer, while
    /// control ops (`ping`, `stats`, `cancel`, `persist`, `shutdown`)
    /// take effect the moment they are read — a `cancel` lands even
    /// when every worker is busy.
    ///
    /// EOF is graceful: everything already read is answered before the
    /// session ends. Read or write *errors* are treated as a dropped
    /// connection: every compile this session admitted is cancelled.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the reader or writer. Malformed
    /// requests are *not* errors — they get an `"ok":false` response.
    pub fn serve<R: BufRead, W: Write + Send>(
        &self,
        reader: R,
        mut writer: W,
    ) -> io::Result<ServeSummary> {
        let _session = SessionGuard::new(self);
        let dispatch = Dispatch::new();
        let (out_tx, out_rx) = mpsc::channel::<(u64, String, bool)>();
        // Every token this session minted, so a dropped connection can
        // abort them all.
        let session_tokens: Mutex<Vec<CancelToken>> = Mutex::new(Vec::new());

        std::thread::scope(|s| {
            let dispatch = &dispatch;
            let session_tokens = &session_tokens;
            for _ in 0..self.workers {
                let tx = out_tx.clone();
                s.spawn(move || {
                    // Tell nested per-block pools how wide the outer
                    // pool is — workers × live connections — so
                    // concurrent sessions never oversubscribe the
                    // machine (see aviv::register_outer_pool).
                    let sessions = self.active_sessions.load(Ordering::SeqCst).max(1);
                    aviv::register_outer_pool(self.workers * sessions);
                    while let Some(job) = dispatch.pop() {
                        self.queued.fetch_sub(1, Ordering::SeqCst);
                        self.in_flight.fetch_add(1, Ordering::SeqCst);
                        let started = Instant::now();
                        let body = self.compile_job(&job);
                        self.in_flight.fetch_sub(1, Ordering::SeqCst);
                        self.update_ema(started.elapsed());
                        self.retire(job.key.as_deref(), job.generation);
                        if tx.send((job.seq, body, false)).is_err() {
                            break;
                        }
                    }
                });
            }

            let drain = s.spawn(move || -> io::Result<ServeSummary> {
                let mut pending: BTreeMap<u64, (String, bool)> = BTreeMap::new();
                let mut next = 0u64;
                let mut summary = ServeSummary {
                    requests: 0,
                    shutdown: false,
                };
                while let Ok((seq, body, shutdown)) = out_rx.recv() {
                    pending.insert(seq, (body, shutdown));
                    while let Some((body, shutdown)) = pending.remove(&next) {
                        if let Err(e) = writeln!(writer, "{body}").and_then(|()| writer.flush()) {
                            // The connection is gone: abort every
                            // compile this session still has in
                            // flight, then surface the error.
                            for t in lock_unpoisoned(session_tokens).iter() {
                                t.cancel();
                            }
                            return Err(e);
                        }
                        next += 1;
                        summary.requests += 1;
                        summary.shutdown |= shutdown;
                    }
                }
                Ok(summary)
            });

            let mut seq = 0u64;
            let mut read_error = None;
            for line in reader.lines() {
                let line = match line {
                    Ok(l) => l,
                    Err(e) => {
                        read_error = Some(e);
                        break;
                    }
                };
                if line.trim().is_empty() {
                    continue;
                }
                let my_seq = seq;
                seq += 1;
                let stop = self.ingest(my_seq, &line, dispatch, &out_tx, session_tokens);
                if stop {
                    break;
                }
            }
            if read_error.is_some() {
                // Dropped connection: abort, don't just drain.
                for t in lock_unpoisoned(session_tokens).iter() {
                    t.cancel();
                }
            }
            dispatch.close();
            drop(out_tx);

            let summary = drain
                .join()
                .unwrap_or_else(|_| Err(io::Error::other("response writer panicked")))?;
            match read_error {
                Some(e) => Err(e),
                None => Ok(summary),
            }
        })
    }

    /// Process one request line at read time: answer control ops
    /// inline (through the in-order output channel), enqueue compiles
    /// past admission control. Returns `true` when intake must stop
    /// (a `shutdown` request).
    fn ingest(
        &self,
        seq: u64,
        line: &str,
        dispatch: &Dispatch,
        out: &mpsc::Sender<(u64, String, bool)>,
        session_tokens: &Mutex<Vec<CancelToken>>,
    ) -> bool {
        self.requests.fetch_add(1, Ordering::Relaxed);
        let respond = |body: String, shutdown: bool| {
            let _ = out.send((seq, body, shutdown));
            shutdown
        };
        let req = match jsonv::parse(line) {
            Ok(v) => v,
            Err(e) => return respond(error_body("", &format!("bad request: {e}")), false),
        };
        let id = id_prefix(&req);
        let Some(op) = req.get("op").and_then(Json::as_str) else {
            return respond(error_body(&id, "missing `op` field"), false);
        };
        match op {
            "ping" => respond(
                format!("{{{id}\"ok\":true,\"op\":\"ping\",\"protocol\":{PROTOCOL_VERSION}}}"),
                false,
            ),
            "stats" => respond(self.stats_body(&id), false),
            "shutdown" => respond(format!("{{{id}\"ok\":true,\"op\":\"shutdown\"}}"), true),
            "cancel" => {
                let Some(key) = id_key(&req) else {
                    return respond(
                        error_body(&id, "`cancel` needs the `id` of the request to cancel"),
                        false,
                    );
                };
                let delivered = self.cancel_by_key(&key);
                respond(
                    format!("{{{id}\"ok\":true,\"op\":\"cancel\",\"delivered\":{delivered}}}"),
                    false,
                )
            }
            "persist" => match self.persist_now() {
                Ok(entries) => respond(
                    format!("{{{id}\"ok\":true,\"op\":\"persist\",\"entries\":{entries}}}"),
                    false,
                ),
                Err(m) => respond(error_body(&id, &m), false),
            },
            "compile" => {
                let batch = match req.get("qos").and_then(Json::as_str) {
                    None | Some("interactive") => false,
                    Some("batch") => true,
                    Some(other) => {
                        return respond(
                            error_body(&id, &format!("unknown qos class `{other}`")),
                            false,
                        )
                    }
                };
                // Admission control: a full queue answers immediately
                // with backpressure instead of buffering without bound.
                if self.queued.load(Ordering::SeqCst) >= self.queue_depth {
                    let retry = self.retry_after_ms();
                    return respond(
                        format!(
                            "{{{id}\"ok\":false,\"error\":\"server overloaded: compile queue \
                             is full\",\"retry_after_ms\":{retry}}}"
                        ),
                        false,
                    );
                }
                self.queued.fetch_add(1, Ordering::SeqCst);
                let key = id_key(&req);
                let (generation, token) = self.admit(key.as_deref());
                lock_unpoisoned(session_tokens).push(token.clone());
                dispatch.push(
                    Job {
                        seq,
                        id,
                        key,
                        generation,
                        token,
                        req,
                    },
                    batch,
                );
                false
            }
            other => respond(error_body(&id, &format!("unknown op `{other}`")), false),
        }
    }

    /// Mint and register a cancel token for an admitted compile. An id
    /// that was cancelled before arriving gets its token fired on the
    /// spot, so the compile aborts before doing any work.
    fn admit(&self, key: Option<&str>) -> (u64, CancelToken) {
        let generation = self.generation.fetch_add(1, Ordering::Relaxed);
        let token = CancelToken::with_generation(generation);
        if let Some(k) = key {
            if lock_unpoisoned(&self.precancelled).remove(k) {
                token.cancel();
            }
            lock_unpoisoned(&self.inflight)
                .entry(k.to_string())
                .or_default()
                .push((generation, token.clone()));
        }
        (generation, token)
    }

    /// Drop a finished compile from the in-flight registry.
    fn retire(&self, key: Option<&str>, generation: u64) {
        if let Some(k) = key {
            let mut map = lock_unpoisoned(&self.inflight);
            if let Some(v) = map.get_mut(k) {
                v.retain(|(g, _)| *g != generation);
                if v.is_empty() {
                    map.remove(k);
                }
            }
        }
    }

    /// Fire every token registered under `key` (queued or executing,
    /// any connection). Returns whether anything was in flight; if not,
    /// the id is remembered so a cancel racing ahead of its compile
    /// still lands (bounded memory).
    fn cancel_by_key(&self, key: &str) -> bool {
        let delivered = match lock_unpoisoned(&self.inflight).get(key) {
            Some(tokens) if !tokens.is_empty() => {
                for (_, t) in tokens {
                    t.cancel();
                }
                true
            }
            _ => false,
        };
        if !delivered {
            let mut set = lock_unpoisoned(&self.precancelled);
            if set.len() < PRECANCEL_CAPACITY {
                set.insert(key.to_string());
            }
        }
        delivered
    }

    /// Backpressure hint for a rejected compile: how long the current
    /// backlog should take to drain, from the compile-time EMA.
    fn retry_after_ms(&self) -> u64 {
        let ema_us = self.ema_compile_us.load(Ordering::Relaxed).max(1_000);
        let backlog = (self.queued.load(Ordering::SeqCst) / self.workers.max(1) + 1) as u64;
        backlog.saturating_mul(ema_us).div_ceil(1_000).max(1)
    }

    fn update_ema(&self, elapsed: Duration) {
        let us = u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX);
        let old = self.ema_compile_us.load(Ordering::Relaxed);
        let new = if old == 0 { us } else { (old * 7 + us) / 8 };
        self.ema_compile_us.store(new, Ordering::Relaxed);
    }

    /// Run one queued compile and render its response body.
    fn compile_job(&self, job: &Job) -> String {
        let id = &job.id;
        match self.compile(&job.req, job.token.clone()) {
            Ok(fields) => format!("{{{id}\"ok\":true,\"op\":\"compile\",{fields}}}"),
            Err(CompileFailure::Cancelled) => {
                self.cancellations.fetch_add(1, Ordering::Relaxed);
                format!(
                    "{{{id}\"ok\":false,\"cancelled\":true,\"error\":\"compile cancelled (C007)\"}}"
                )
            }
            Err(CompileFailure::Message(m)) => error_body(id, &m),
        }
    }

    fn stats_body(&self, id: &str) -> String {
        let CacheStats {
            hits,
            misses,
            evictions,
            entries,
            capacity,
            persist_saves,
            persist_loads,
            quarantines,
        } = self.cache.stats();
        format!(
            "{{{id}\"ok\":true,\"op\":\"stats\",\"requests\":{},\"workers\":{},\
             \"in_flight\":{},\"queued\":{},\"queue_depth\":{},\"cancellations\":{},\
             \"cache\":{{\"hits\":{hits},\"misses\":{misses},\"evictions\":{evictions},\
             \"entries\":{entries},\"capacity\":{capacity},\"persist_saves\":{persist_saves},\
             \"persist_loads\":{persist_loads},\"quarantines\":{quarantines}}}}}",
            self.requests.load(Ordering::Relaxed),
            self.workers,
            self.in_flight.load(Ordering::SeqCst),
            self.queued.load(Ordering::SeqCst),
            self.queue_depth,
            self.cancellations.load(Ordering::Relaxed),
        )
    }

    /// Handle a `compile` request, returning the response's payload
    /// fields (everything after `"op":"compile",`) or a failure.
    fn compile(&self, req: &Json, token: CancelToken) -> Result<String, CompileFailure> {
        let machine_src = source_field(req, "machine", "machine_path")?;
        let program_src = source_field(req, "program", "program_path")?;
        let mut options = request_options(req)?.with_cancel(Some(token));
        if let Some(v) = req.get("fault_seed") {
            let seed = v
                .as_u64()
                .ok_or_else(|| "`fault_seed` must be a non-negative integer".to_string())?;
            options = options.with_faults(Some(FaultConfig::seeded(seed)));
        }
        let validate_requested = match req.get("validate") {
            None => false,
            Some(v) => v
                .as_bool()
                .ok_or_else(|| "`validate` must be a boolean".to_string())?,
        };
        let target = self.target_for(&machine_src)?;
        let function = parse_function(&program_src).map_err(|e| format!("program: {e}"))?;
        let generator = CodeGenerator::with_shared_target(target)
            .options(options)
            .with_cache(Arc::clone(&self.cache));
        let (program, report) = generator.compile_function(&function).map_err(|e| match e {
            CodegenError::Cancelled => CompileFailure::Cancelled,
            other => CompileFailure::Message(format!("compile: {other}")),
        })?;
        let asm = program.render(generator.target());

        // Translation validation runs on the final rendered bytes, so
        // cache-served plans are checked too: a poisoned or stale cache
        // entry that changes the program's meaning is caught here.
        // `--validate-on-load` additionally forces the check whenever a
        // block was served from a *restored* (disk) cache entry.
        let validate = validate_requested || (self.validate_on_load && report.restored_hits > 0);
        if validate {
            let tv = validate_asm(&function, &asm, &generator.target().machine);
            if !tv.ok() {
                return Err(CompileFailure::Message(format!(
                    "validate: emitted assembly diverges from the source\n{}",
                    render_report(&tv.diagnostics, Format::Text)
                )));
            }
        }

        let mut notes = String::new();
        for d in &report.downgrades {
            let _ = writeln!(notes, "downgrade: {d}");
        }
        if !report.complete {
            notes.push_str("note: compile incomplete under the given budget\n");
        }
        let mut fields = format!(
            "\"blocks\":{},\"instructions\":{},\"cache_hits\":{},\"cache_misses\":{},\
             \"complete\":{}",
            report.blocks.len(),
            report.total_instructions,
            report.cache_hits,
            report.cache_misses,
            report.complete,
        );
        if report.restored_hits > 0 {
            let _ = write!(fields, ",\"restored_hits\":{}", report.restored_hits);
        }
        if validate {
            fields.push_str(",\"validated\":true");
        }
        if !notes.is_empty() {
            let _ = write!(fields, ",\"notes\":\"{}\"", jsonv::escape(&notes));
        }
        let _ = write!(fields, ",\"asm\":\"{}\"", jsonv::escape(&asm));
        Ok(fields)
    }

    /// Parse-or-reuse the machine for `machine_src`. Keyed on the raw
    /// source text: two requests with the same bytes share one
    /// [`Target`] (and its derived tables) across all workers.
    fn target_for(&self, machine_src: &str) -> Result<Arc<Target>, String> {
        let key = aviv_ir::stablehash::hash_str(machine_src);
        if let Some(t) = lock_unpoisoned(&self.targets).get(&key) {
            return Ok(Arc::clone(t));
        }
        let machine =
            parse_machine(machine_src).map_err(|e| format!("machine description: {e}"))?;
        let target = Arc::new(Target::new(machine));
        // A racing worker may have inserted meanwhile; keep the first.
        Ok(Arc::clone(
            lock_unpoisoned(&self.targets).entry(key).or_insert(target),
        ))
    }

    /// Serve a Unix socket. Connections are accepted *concurrently* —
    /// each gets its own session of [`workers`](Server::workers) — and
    /// all share the plan cache and cancel registry, so a reconnecting
    /// client keeps its warm entries and any client can cancel any
    /// in-flight request by id.
    ///
    /// A client `shutdown` stops the listener deterministically (a
    /// connect-to-self nudge unblocks `accept`), half-closes every
    /// other live connection so its session drains gracefully, answers
    /// everything already accepted, persists the cache when configured,
    /// and removes the socket file exactly once — on every exit path.
    ///
    /// # Errors
    ///
    /// Propagates bind/accept errors. Per-connection I/O errors only
    /// end that connection (logged to stderr), never the server.
    #[cfg(unix)]
    pub fn serve_unix(&self, path: &std::path::Path) -> io::Result<()> {
        use std::os::unix::io::AsRawFd;
        use std::os::unix::net::{UnixListener, UnixStream};
        use std::sync::atomic::AtomicBool;

        // A stale socket file from a previous run would make bind fail.
        let _ = std::fs::remove_file(path);
        let listener = UnixListener::bind(path)?;
        let shutdown = AtomicBool::new(false);
        // Read-side clones of every live connection (keyed by the
        // handler stream's fd), so shutdown can half-close them — their
        // sessions then drain and exit.
        let conns: Mutex<Vec<(i32, UnixStream)>> = Mutex::new(Vec::new());

        let result: io::Result<()> = std::thread::scope(|s| {
            loop {
                let (stream, _) = match listener.accept() {
                    Ok(c) => c,
                    Err(e) => {
                        if shutdown.load(Ordering::SeqCst) {
                            break;
                        }
                        // Wake any live sessions before propagating.
                        shutdown.store(true, Ordering::SeqCst);
                        for (_, c) in lock_unpoisoned(&conns).iter() {
                            let _ = c.shutdown(std::net::Shutdown::Read);
                        }
                        return Err(e);
                    }
                };
                if shutdown.load(Ordering::SeqCst) {
                    // The connect-to-self nudge (or a client racing the
                    // shutdown): stop accepting.
                    break;
                }
                if let Ok(clone) = stream.try_clone() {
                    lock_unpoisoned(&conns).push((stream.as_raw_fd(), clone));
                }
                let shutdown = &shutdown;
                let conns = &conns;
                s.spawn(move || {
                    let fd = stream.as_raw_fd();
                    let outcome = match stream.try_clone() {
                        Ok(read_half) => self.serve(io::BufReader::new(read_half), &stream),
                        Err(e) => Err(e),
                    };
                    lock_unpoisoned(conns).retain(|(k, _)| *k != fd);
                    match outcome {
                        Ok(summary) if summary.shutdown => {
                            if !shutdown.swap(true, Ordering::SeqCst) {
                                // Half-close the other connections:
                                // their readers see EOF, answer what
                                // they already accepted, and exit.
                                for (_, c) in lock_unpoisoned(conns).iter() {
                                    let _ = c.shutdown(std::net::Shutdown::Read);
                                }
                                // Deterministically unblock accept().
                                let _ = UnixStream::connect(path);
                            }
                        }
                        Ok(_) => {}
                        Err(e) => eprintln!("avivd: connection error: {e}"),
                    }
                });
            }
            Ok(())
        });
        // Exactly once, on every exit path (including accept errors).
        let _ = std::fs::remove_file(path);
        result?;
        if self.persist.is_some() {
            if let Err(e) = self.persist_now() {
                eprintln!("avivd: persist on shutdown failed: {e}");
            }
        }
        Ok(())
    }
}

/// Per-request codegen options: the same knobs as the `avivc` command
/// line, defaulting to the default preset with sequential inner jobs.
fn request_options(req: &Json) -> Result<CodegenOptions, String> {
    let preset = req.get("preset").and_then(Json::as_str).unwrap_or("on");
    let base = match preset {
        "on" => CodegenOptions::heuristics_on(),
        "thorough" => CodegenOptions::thorough(),
        "off" => CodegenOptions::heuristics_off(),
        other => return Err(format!("unknown preset `{other}`")),
    };
    let jobs = match req.get("jobs") {
        None => 1,
        Some(v) => v.as_u64().ok_or("`jobs` must be a non-negative integer")? as usize,
    };
    let fuel = match req.get("fuel") {
        None => None,
        Some(v) => Some(v.as_u64().ok_or("`fuel` must be a non-negative integer")?),
    };
    let timeout_ms = match req.get("timeout_ms") {
        None => None,
        Some(v) => Some(
            v.as_u64()
                .ok_or("`timeout_ms` must be a non-negative integer")?,
        ),
    };
    Ok(base
        .with_jobs(jobs)
        .with_fuel(fuel)
        .with_deadline_ms(timeout_ms))
}

/// Resolve a source payload that may be inline (`machine`/`program`)
/// or a path to read (`machine_path`/`program_path`).
fn source_field(req: &Json, inline_key: &str, path_key: &str) -> Result<String, String> {
    match (req.get(inline_key), req.get(path_key)) {
        (Some(_), Some(_)) => Err(format!("give `{inline_key}` or `{path_key}`, not both")),
        (Some(v), None) => v
            .as_str()
            .map(str::to_string)
            .ok_or(format!("`{inline_key}` must be a string")),
        (None, Some(v)) => {
            let path = v.as_str().ok_or(format!("`{path_key}` must be a string"))?;
            std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))
        }
        (None, None) => Err(format!("missing `{inline_key}` (or `{path_key}`)")),
    }
}

/// Render the echoed `"id":...,` fragment (empty when the request has
/// no id). Integer and string ids are supported.
fn id_prefix(req: &Json) -> String {
    match req.get("id") {
        Some(Json::Num(_)) => match req.get("id").and_then(Json::as_u64) {
            Some(n) => format!("\"id\":{n},"),
            None => String::new(),
        },
        Some(Json::Str(s)) => format!("\"id\":\"{}\",", jsonv::escape(s)),
        _ => String::new(),
    }
}

/// The canonical registry key for a request id (integer and string
/// ids live in one namespace: `7` and `"7"` are the same request).
fn id_key(req: &Json) -> Option<String> {
    match req.get("id") {
        Some(Json::Num(_)) => req.get("id").and_then(Json::as_u64).map(|n| n.to_string()),
        Some(Json::Str(s)) => Some(s.clone()),
        _ => None,
    }
}

fn error_body(id: &str, message: &str) -> String {
    format!(
        "{{{id}\"ok\":false,\"error\":\"{}\"}}",
        jsonv::escape(message)
    )
}

fn lock_unpoisoned<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    match m.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MACHINE: &str = "machine M {
        unit U1 { ops { add, sub, compl, cmpgt } regfile R1[4]; }
        unit U2 { ops { add, mul } regfile R2[4]; }
        memory DM;
        bus DB capacity 1 connects { R1, R2, DM };
    }";

    const PROGRAM: &str = "func f(a, b) { x = a * b + 1; return x; }";

    fn run(server: &Server, requests: &str) -> Vec<Json> {
        let mut out = Vec::new();
        server
            .serve(io::Cursor::new(requests.to_string()), &mut out)
            .unwrap();
        String::from_utf8(out)
            .unwrap()
            .lines()
            .map(|l| jsonv::parse(l).unwrap())
            .collect()
    }

    fn compile_req(id: u64) -> String {
        format!(
            "{{\"id\":{id},\"op\":\"compile\",\"machine\":\"{}\",\"program\":\"{}\"}}",
            jsonv::escape(MACHINE),
            jsonv::escape(PROGRAM)
        )
    }

    #[test]
    fn config_parses_and_rejects() {
        let c = ServeConfig::parse(&[]).unwrap();
        assert_eq!((c.workers, c.cache_size), (1, aviv::DEFAULT_CACHE_CAPACITY));
        assert_eq!(c.queue_depth, DEFAULT_QUEUE_DEPTH);
        assert!(c.persist.is_none());
        assert!(!c.validate_on_load);
        let c = ServeConfig::parse(&[
            "--workers".into(),
            "4".into(),
            "--cache-size".into(),
            "64".into(),
            "--socket".into(),
            "/tmp/s".into(),
            "--persist".into(),
            "/tmp/plans.avivcache".into(),
            "--validate-on-load".into(),
            "--queue-depth".into(),
            "9".into(),
        ])
        .unwrap();
        assert_eq!((c.workers, c.cache_size), (4, 64));
        assert_eq!(c.socket.as_deref(), Some("/tmp/s"));
        assert_eq!(c.persist.as_deref(), Some("/tmp/plans.avivcache"));
        assert!(c.validate_on_load);
        assert_eq!(c.queue_depth, 9);
        assert!(ServeConfig::parse(&["--workers".into()]).is_err());
        assert!(ServeConfig::parse(&["--workers".into(), "many".into()]).is_err());
        assert!(ServeConfig::parse(&["--persist".into()]).is_err());
        assert!(ServeConfig::parse(&["--queue-depth".into(), "x".into()]).is_err());
        assert!(ServeConfig::parse(&["--wat".into()]).is_err());
        let help = ServeConfig::parse(&["--help".into()]).unwrap_err();
        assert!(help.0.contains("usage"));
    }

    #[test]
    fn ping_stats_and_shutdown_round_trip() {
        let server = Server::new(&ServeConfig::default());
        let responses = run(
            &server,
            "{\"op\":\"ping\"}\n{\"op\":\"stats\"}\n{\"op\":\"shutdown\"}\n{\"op\":\"ping\"}\n",
        );
        // The request after shutdown is never answered.
        assert_eq!(responses.len(), 3);
        assert_eq!(responses[0].get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(
            responses[0].get("protocol").and_then(Json::as_u64),
            Some(u64::from(PROTOCOL_VERSION))
        );
        let stats = &responses[1];
        let cache = stats.get("cache").unwrap();
        assert_eq!(cache.get("hits").and_then(Json::as_u64), Some(0));
        assert_eq!(cache.get("persist_saves").and_then(Json::as_u64), Some(0));
        assert_eq!(stats.get("in_flight").and_then(Json::as_u64), Some(0));
        assert_eq!(stats.get("queued").and_then(Json::as_u64), Some(0));
        assert_eq!(stats.get("cancellations").and_then(Json::as_u64), Some(0));
        assert_eq!(
            responses[2].get("op").and_then(Json::as_str),
            Some("shutdown")
        );
    }

    #[test]
    fn malformed_requests_get_error_responses() {
        let server = Server::new(&ServeConfig::default());
        let responses = run(
            &server,
            "not json\n{\"op\":\"wat\"}\n{\"id\":7,\"op\":\"compile\",\"machine\":\"m\"}\n\
             {\"op\":\"compile\",\"machine\":\"bad\",\"program\":\"func f(a) { return a; }\"}\n",
        );
        assert_eq!(responses.len(), 4);
        for r in &responses {
            assert_eq!(r.get("ok").and_then(Json::as_bool), Some(false), "{r:?}");
            assert!(r.get("error").is_some());
        }
        // The id is echoed even on errors.
        assert_eq!(responses[2].get("id").and_then(Json::as_u64), Some(7));
        let msg = responses[3].get("error").and_then(Json::as_str).unwrap();
        assert!(msg.contains("machine description"), "{msg}");
    }

    #[test]
    fn repeat_compiles_hit_the_cache_and_match() {
        let server = Server::new(&ServeConfig::default());
        let responses = run(
            &server,
            &format!("{}\n{}\n", compile_req(1), compile_req(2)),
        );
        let cold = &responses[0];
        let warm = &responses[1];
        assert_eq!(
            cold.get("ok").and_then(Json::as_bool),
            Some(true),
            "{cold:?}"
        );
        assert_eq!(cold.get("cache_hits").and_then(Json::as_u64), Some(0));
        assert_eq!(warm.get("cache_misses").and_then(Json::as_u64), Some(0));
        assert_eq!(
            warm.get("cache_hits").and_then(Json::as_u64),
            warm.get("blocks").and_then(Json::as_u64)
        );
        assert_eq!(cold.get("asm"), warm.get("asm"));
        // And the served assembly equals the one-shot driver's bytes.
        let opts = crate::Options::parse(&["--machine".into(), "m.isdl".into(), "prog.av".into()])
            .unwrap();
        let oneshot = crate::drive(&opts, MACHINE, PROGRAM).unwrap();
        assert_eq!(
            cold.get("asm").and_then(Json::as_str).unwrap().as_bytes(),
            &oneshot.output[..]
        );
    }

    #[test]
    fn worker_pool_keeps_request_order_and_bytes() {
        let sequential = Server::new(&ServeConfig::default());
        let requests: String = (0..8).map(|i| format!("{}\n", compile_req(i))).collect();
        let expect = run(&sequential, &requests);
        for workers in [2, 0] {
            let pooled = Server::new(&ServeConfig {
                workers,
                ..ServeConfig::default()
            });
            let got = run(&pooled, &requests);
            assert_eq!(got.len(), expect.len());
            for (g, e) in got.iter().zip(&expect) {
                assert_eq!(g.get("id"), e.get("id"), "workers={workers}");
                assert_eq!(g.get("asm"), e.get("asm"), "workers={workers}");
            }
        }
    }

    #[test]
    fn per_request_qos_is_honored() {
        let server = Server::new(&ServeConfig::default());
        let tight = format!(
            "{{\"op\":\"compile\",\"machine\":\"{}\",\"program\":\"{}\",\"fuel\":1}}",
            jsonv::escape(MACHINE),
            jsonv::escape(PROGRAM)
        );
        let responses = run(&server, &format!("{tight}\n{}\n", compile_req(1)));
        let degraded = &responses[0];
        assert_eq!(degraded.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(
            degraded.get("complete").and_then(Json::as_bool),
            Some(false)
        );
        let notes = degraded.get("notes").and_then(Json::as_str).unwrap();
        assert!(notes.contains("downgrade:"), "{notes}");
        // The degraded compile did not poison the cache: the follow-up
        // unbudgeted request is a miss, not a bogus hit.
        let fresh = &responses[1];
        assert_eq!(fresh.get("complete").and_then(Json::as_bool), Some(true));
        assert_eq!(
            fresh.get("cache_hits").and_then(Json::as_u64),
            Some(0),
            "{fresh:?}"
        );
    }

    #[test]
    fn validate_flag_checks_cold_and_cached_compiles() {
        let server = Server::new(&ServeConfig::default());
        let req = |id: u64| {
            format!(
                "{{\"id\":{id},\"op\":\"compile\",\"machine\":\"{}\",\"program\":\"{}\",\
                 \"validate\":true}}",
                jsonv::escape(MACHINE),
                jsonv::escape(PROGRAM)
            )
        };
        let responses = run(&server, &format!("{}\n{}\n", req(1), req(2)));
        let cold = &responses[0];
        let warm = &responses[1];
        assert_eq!(
            cold.get("ok").and_then(Json::as_bool),
            Some(true),
            "{cold:?}"
        );
        assert_eq!(cold.get("validated").and_then(Json::as_bool), Some(true));
        // The warm request is served from the cache and still validated.
        assert_eq!(
            warm.get("cache_hits").and_then(Json::as_u64),
            warm.get("blocks").and_then(Json::as_u64)
        );
        assert_eq!(warm.get("validated").and_then(Json::as_bool), Some(true));
        // Requests without the flag carry no `validated` field.
        let responses = run(&server, &format!("{}\n", compile_req(3)));
        assert!(responses[0].get("validated").is_none());
        // Non-boolean `validate` is rejected.
        let bad = format!(
            "{{\"op\":\"compile\",\"machine\":\"{}\",\"program\":\"{}\",\"validate\":7}}",
            jsonv::escape(MACHINE),
            jsonv::escape(PROGRAM)
        );
        let responses = run(&server, &format!("{bad}\n"));
        let msg = responses[0].get("error").and_then(Json::as_str).unwrap();
        assert!(msg.contains("`validate` must be a boolean"), "{msg}");
    }

    #[test]
    fn string_ids_and_unknown_presets() {
        let server = Server::new(&ServeConfig::default());
        let responses = run(
            &server,
            "{\"id\":\"req-a\",\"op\":\"ping\"}\n\
             {\"op\":\"compile\",\"machine\":\"m\",\"program\":\"p\",\"preset\":\"fast\"}\n",
        );
        assert_eq!(responses[0].get("id").and_then(Json::as_str), Some("req-a"));
        let msg = responses[1].get("error").and_then(Json::as_str).unwrap();
        assert!(msg.contains("unknown preset"), "{msg}");
    }

    #[test]
    fn precancelled_request_aborts_without_compiling() {
        let server = Server::new(&ServeConfig::default());
        // Cancel arrives before the compile it names (the race an
        // interactive client loses constantly): the compile must answer
        // cancelled without planning anything.
        let responses = run(
            &server,
            &format!("{{\"id\":9,\"op\":\"cancel\"}}\n{}\n", compile_req(9)),
        );
        assert_eq!(responses.len(), 2);
        let cancel = &responses[0];
        assert_eq!(cancel.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(cancel.get("delivered").and_then(Json::as_bool), Some(false));
        let compiled = &responses[1];
        assert_eq!(compiled.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(
            compiled.get("cancelled").and_then(Json::as_bool),
            Some(true)
        );
        // Nothing was cached by the aborted compile.
        assert!(server.cache().is_empty());
        // And the cancellation is visible in stats.
        let responses = run(&server, "{\"op\":\"stats\"}\n");
        assert_eq!(
            responses[0].get("cancellations").and_then(Json::as_u64),
            Some(1)
        );
    }

    #[test]
    fn cancel_without_id_is_an_error() {
        let server = Server::new(&ServeConfig::default());
        let responses = run(&server, "{\"op\":\"cancel\"}\n");
        let msg = responses[0].get("error").and_then(Json::as_str).unwrap();
        assert!(msg.contains("needs the `id`"), "{msg}");
    }

    #[test]
    fn queue_overflow_gets_backpressure_not_memory_growth() {
        // One worker, queue depth 1, and a session whose compiles all
        // pile up behind an uncancellable... no — behind each other:
        // with depth 1 only one compile may be queued at a time; since
        // the reader ingests the whole batch before the worker can
        // drain (the worker blocks on the first pop only after it is
        // pushed), at least one of a rapid burst must be rejected.
        // Deterministic variant: pre-cancel nothing, just send many
        // compiles and count outcomes.
        let server = Server::new(&ServeConfig {
            workers: 1,
            queue_depth: 1,
            ..ServeConfig::default()
        });
        let burst: String = (0..12).map(|i| format!("{}\n", compile_req(i))).collect();
        let responses = run(&server, &burst);
        assert_eq!(responses.len(), 12);
        let rejected: Vec<&Json> = responses
            .iter()
            .filter(|r| r.get("retry_after_ms").is_some())
            .collect();
        for r in &rejected {
            assert_eq!(r.get("ok").and_then(Json::as_bool), Some(false));
            assert!(r.get("retry_after_ms").and_then(Json::as_u64).unwrap() >= 1);
        }
        let served = responses.len() - rejected.len();
        assert!(served >= 1, "at least one compile is admitted");
        // Every admitted compile still succeeded, in order.
        for r in &responses {
            if r.get("retry_after_ms").is_none() {
                assert_eq!(r.get("ok").and_then(Json::as_bool), Some(true), "{r:?}");
            }
        }
    }

    #[test]
    fn qos_classes_parse_and_reject() {
        let server = Server::new(&ServeConfig::default());
        let batch = format!(
            "{{\"id\":1,\"op\":\"compile\",\"machine\":\"{}\",\"program\":\"{}\",\
             \"qos\":\"batch\"}}",
            jsonv::escape(MACHINE),
            jsonv::escape(PROGRAM)
        );
        let bad = format!(
            "{{\"id\":2,\"op\":\"compile\",\"machine\":\"{}\",\"program\":\"{}\",\
             \"qos\":\"turbo\"}}",
            jsonv::escape(MACHINE),
            jsonv::escape(PROGRAM)
        );
        let responses = run(&server, &format!("{batch}\n{bad}\n"));
        assert_eq!(responses[0].get("ok").and_then(Json::as_bool), Some(true));
        let msg = responses[1].get("error").and_then(Json::as_str).unwrap();
        assert!(msg.contains("unknown qos class"), "{msg}");
    }

    #[test]
    fn persist_op_requires_configuration() {
        let server = Server::new(&ServeConfig::default());
        let responses = run(&server, "{\"op\":\"persist\"}\n");
        let msg = responses[0].get("error").and_then(Json::as_str).unwrap();
        assert!(msg.contains("--persist"), "{msg}");
    }

    #[test]
    fn persist_and_restore_across_server_instances() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!(
            "aviv_serve_persist_{}_{:?}.avivcache",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_file(&path);
        let config = ServeConfig {
            persist: Some(path.display().to_string()),
            validate_on_load: true,
            ..ServeConfig::default()
        };

        // First server: warm the cache, then persist via the protocol.
        // (Control ops take effect at read time, so the persist is sent
        // after the compile's response arrives — as a real client would.)
        let first = Server::new(&config);
        let responses = run(&first, &format!("{}\n", compile_req(1)));
        let cold_asm = responses[0]
            .get("asm")
            .and_then(Json::as_str)
            .unwrap()
            .to_string();
        let responses = run(&first, "{\"op\":\"persist\"}\n");
        let persisted = &responses[0];
        assert_eq!(persisted.get("ok").and_then(Json::as_bool), Some(true));
        assert!(persisted.get("entries").and_then(Json::as_u64).unwrap() > 0);
        assert_eq!(first.cache().stats().persist_saves, 1);

        // Second server: restores the snapshot, serves all-hits
        // byte-identical output, forces validation on restored plans.
        let second = Server::new(&config);
        assert!(second.cache().stats().persist_loads > 0);
        let responses = run(&second, &format!("{}\n", compile_req(2)));
        let restored = &responses[0];
        assert_eq!(
            restored.get("ok").and_then(Json::as_bool),
            Some(true),
            "{restored:?}"
        );
        assert_eq!(
            restored.get("cache_hits").and_then(Json::as_u64),
            restored.get("blocks").and_then(Json::as_u64)
        );
        assert!(
            restored
                .get("restored_hits")
                .and_then(Json::as_u64)
                .unwrap()
                > 0
        );
        // --validate-on-load forced the check without the client asking.
        assert_eq!(
            restored.get("validated").and_then(Json::as_bool),
            Some(true)
        );
        assert_eq!(
            restored.get("asm").and_then(Json::as_str),
            Some(&cold_asm[..])
        );

        // Third server: a corrupted snapshot is quarantined, not
        // trusted — the compile is served correct from cold.
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        let third = Server::new(&config);
        assert_eq!(third.cache().stats().quarantines, 1);
        assert!(third.cache().is_empty());
        let responses = run(&third, &format!("{}\n", compile_req(3)));
        let cold = &responses[0];
        assert_eq!(cold.get("cache_hits").and_then(Json::as_u64), Some(0));
        assert_eq!(cold.get("asm").and_then(Json::as_str), Some(&cold_asm[..]));
        let q = path.with_file_name(format!(
            "{}.quarantined",
            path.file_name().unwrap().to_str().unwrap()
        ));
        assert!(q.exists(), "corrupt snapshot moved aside as evidence");
        let _ = std::fs::remove_file(&q);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn fault_seed_requests_fail_structurally_not_by_panicking() {
        let server = Server::new(&ServeConfig::default());
        // Seeds that fire injected faults: the server must answer every
        // one (ok or structured error), never wedge or panic.
        let requests: String = (0..6)
            .map(|seed| {
                format!(
                    "{{\"id\":{seed},\"op\":\"compile\",\"machine\":\"{}\",\"program\":\"{}\",\
                     \"fault_seed\":{seed}}}\n",
                    jsonv::escape(MACHINE),
                    jsonv::escape(PROGRAM)
                )
            })
            .collect();
        let responses = run(&server, &requests);
        assert_eq!(responses.len(), 6);
        for r in &responses {
            assert!(r.get("ok").is_some(), "{r:?}");
        }
        // Fault-injected compiles bypass the cache, so a clean compile
        // afterwards is not contaminated.
        let clean = run(&server, &format!("{}\n", compile_req(100)));
        assert_eq!(clean[0].get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(clean[0].get("complete").and_then(Json::as_bool), Some(true));
    }
}
