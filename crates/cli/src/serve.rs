//! `avivd` — the serving layer: a long-running compile server answering
//! newline-delimited JSON requests from an incremental plan cache.
//!
//! One request per line in, one response per line out, in request order
//! regardless of how many workers race on the middle. The interesting
//! part is what *doesn't* recompute: every block plan is memoized in a
//! shared [`PlanCache`] keyed on `(block content hash, target
//! fingerprint, planning-options fingerprint)`, so a client recompiling
//! an edited program pays only for the blocks it actually changed — and
//! the served bytes are identical to a cold one-shot `avivc` compile at
//! any worker/job count (see `docs/serving.md` for the full contract).
//!
//! ```text
//! → {"op":"ping"}
//! ← {"ok":true,"op":"ping","protocol":1}
//! → {"id":1,"op":"compile","machine_path":"assets/fig3.isdl","program_path":"assets/dot4.av"}
//! ← {"id":1,"ok":true,"op":"compile","blocks":1,"cache_hits":0,"cache_misses":1,...,"asm":"..."}
//! → {"op":"stats"}
//! ← {"ok":true,"op":"stats","requests":2,"cache":{"hits":0,"misses":1,...}}
//! → {"op":"shutdown"}
//! ← {"ok":true,"op":"shutdown"}
//! ```
//!
//! Requests carry their own QoS: `preset`, `jobs`, `fuel`, and
//! `timeout_ms` per compile, with the same meaning as the `avivc`
//! flags. Budgeted (incomplete) compiles still answer, but only
//! *complete* plans enter the cache, so a degraded response never
//! poisons later requests. A request may also set `"validate":true`
//! to run the translation validator on the rendered assembly — the
//! check runs on the final bytes, after any cache hits, so even a
//! corrupted cache entry is statically detectable; a clean check adds
//! `"validated":true` to the response, a divergence fails the request
//! with the `T`-coded report.

use aviv::jsonv::{self, Json};
use aviv::verify::{render_report, validate_asm, Format};
use aviv::{CacheStats, CodeGenerator, CodegenOptions, PlanCache};
use aviv_ir::parse_function;
use aviv_isdl::{parse_machine, Target};
use std::collections::{BTreeMap, HashMap};
use std::fmt::Write as _;
use std::io::{self, BufRead, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};

/// Version of the request/response protocol, reported by `ping`.
pub const PROTOCOL_VERSION: u32 = 1;

/// Server construction knobs (the `avivd` command line).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Request workers: 1 = handle requests sequentially (default),
    /// 0 = one per available core. Responses are always delivered in
    /// request order and are byte-identical for every value.
    pub workers: usize,
    /// Plan-cache capacity in block plans (see
    /// [`aviv::DEFAULT_CACHE_CAPACITY`]).
    pub cache_size: usize,
    /// Serve a Unix socket at this path instead of stdin/stdout.
    pub socket: Option<String>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 1,
            cache_size: aviv::DEFAULT_CACHE_CAPACITY,
            socket: None,
        }
    }
}

impl ServeConfig {
    /// Parse the `avivd` argument vector (without the program name).
    ///
    /// # Errors
    ///
    /// Returns a [`CliError`](crate::CliError) describing the first
    /// problem; `--help` yields an error carrying [`SERVE_USAGE`].
    pub fn parse(args: &[String]) -> Result<ServeConfig, crate::CliError> {
        let mut config = ServeConfig::default();
        let mut it = args.iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "-h" | "--help" => return Err(crate::CliError(SERVE_USAGE.to_string())),
                "--workers" => {
                    let n = it
                        .next()
                        .ok_or_else(|| crate::CliError("--workers needs a count".into()))?;
                    config.workers = n
                        .parse()
                        .map_err(|_| crate::CliError(format!("bad worker count `{n}`")))?;
                }
                "--cache-size" => {
                    let n = it
                        .next()
                        .ok_or_else(|| crate::CliError("--cache-size needs a count".into()))?;
                    config.cache_size = n
                        .parse()
                        .map_err(|_| crate::CliError(format!("bad cache size `{n}`")))?;
                }
                "--socket" => {
                    config.socket = Some(
                        it.next()
                            .ok_or_else(|| crate::CliError("--socket needs a path".into()))?
                            .clone(),
                    );
                }
                other => {
                    return Err(crate::CliError(format!(
                        "unknown argument `{other}`\n{SERVE_USAGE}"
                    )))
                }
            }
        }
        Ok(config)
    }
}

/// Usage text for the `avivd` binary.
pub const SERVE_USAGE: &str = "\
usage: avivd [--workers <n>] [--cache-size <n>] [--socket <path>]

Long-running compile server. Reads one JSON request per line from
stdin (or the Unix socket given with --socket) and writes one JSON
response per line, in request order. See docs/serving.md for the
protocol.

options:
  --workers <n>     request workers (1 = sequential, 0 = one per
                    core; default: 1). Responses are identical and
                    in request order for every value
  --cache-size <n>  plan-cache capacity in block plans
                    (default: 4096)
  --socket <path>   bind a Unix socket instead of stdin/stdout
                    (connections are served one at a time; the cache
                    persists across connections)
  -h, --help        this text
";

/// What [`Server::serve`] did: how many requests it answered and
/// whether a `shutdown` request ended the stream (as opposed to EOF).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeSummary {
    /// Responses written.
    pub requests: u64,
    /// True when a `shutdown` request ended the session.
    pub shutdown: bool,
}

struct Response {
    body: String,
    shutdown: bool,
}

/// The compile server: a shared [`PlanCache`], a memoized machine
/// table, and the request pump. One `Server` outlives any number of
/// [`serve`](Server::serve) sessions, so the cache stays warm across
/// socket connections.
pub struct Server {
    cache: Arc<PlanCache>,
    /// Parsed machines memoized by source-text hash: repeat requests
    /// skip ISDL parsing and share one `Target` across workers.
    targets: Mutex<HashMap<u64, Arc<Target>>>,
    workers: usize,
    requests: AtomicU64,
}

impl Server {
    /// Build a server from `config` (`workers == 0` resolves to one
    /// per available core).
    pub fn new(config: &ServeConfig) -> Server {
        let workers = match config.workers {
            0 => std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
            n => n,
        };
        Server {
            cache: Arc::new(PlanCache::new(config.cache_size)),
            targets: Mutex::new(HashMap::new()),
            workers,
            requests: AtomicU64::new(0),
        }
    }

    /// The shared plan cache (for inspection in tests and stats).
    pub fn cache(&self) -> &Arc<PlanCache> {
        &self.cache
    }

    /// Resolved worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Pump requests from `reader` to `writer` until EOF or a
    /// `shutdown` request. Responses are written in request order and
    /// flushed per line; with more than one worker, requests are
    /// answered concurrently behind a reorder buffer.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the reader or writer. Malformed
    /// requests are *not* errors — they get an `"ok":false` response.
    pub fn serve<R: BufRead, W: Write + Send>(
        &self,
        reader: R,
        mut writer: W,
    ) -> io::Result<ServeSummary> {
        if self.workers == 1 {
            let mut summary = ServeSummary {
                requests: 0,
                shutdown: false,
            };
            for line in reader.lines() {
                let line = line?;
                if line.trim().is_empty() {
                    continue;
                }
                let r = self.respond(&line);
                writeln!(writer, "{}", r.body)?;
                writer.flush()?;
                summary.requests += 1;
                if r.shutdown {
                    summary.shutdown = true;
                    break;
                }
            }
            return Ok(summary);
        }
        self.serve_pooled(reader, writer)
    }

    /// The multi-worker pump: a job channel fans lines out to workers,
    /// a reorder buffer puts responses back in request order.
    fn serve_pooled<R: BufRead, W: Write + Send>(
        &self,
        reader: R,
        mut writer: W,
    ) -> io::Result<ServeSummary> {
        let workers = self.workers;
        let (job_tx, job_rx) = mpsc::channel::<(u64, String)>();
        let job_rx = Arc::new(Mutex::new(job_rx));
        let (out_tx, out_rx) = mpsc::channel::<(u64, String, bool)>();

        std::thread::scope(|s| {
            for _ in 0..workers {
                let rx = Arc::clone(&job_rx);
                let tx = out_tx.clone();
                s.spawn(move || {
                    // Tell nested per-block pools how wide this outer
                    // pool is, so workers × jobs never oversubscribes
                    // the machine (see aviv::register_outer_pool).
                    aviv::register_outer_pool(workers);
                    loop {
                        let job = {
                            let guard = lock_unpoisoned(&rx);
                            guard.recv()
                        };
                        let Ok((seq, line)) = job else { break };
                        let r = self.respond(&line);
                        if tx.send((seq, r.body, r.shutdown)).is_err() {
                            break;
                        }
                    }
                });
            }
            drop(out_tx);

            let drain = s.spawn(move || -> io::Result<ServeSummary> {
                let mut pending: BTreeMap<u64, (String, bool)> = BTreeMap::new();
                let mut next = 0u64;
                let mut summary = ServeSummary {
                    requests: 0,
                    shutdown: false,
                };
                while let Ok((seq, body, shutdown)) = out_rx.recv() {
                    pending.insert(seq, (body, shutdown));
                    while let Some((body, shutdown)) = pending.remove(&next) {
                        writeln!(writer, "{body}")?;
                        writer.flush()?;
                        next += 1;
                        summary.requests += 1;
                        summary.shutdown |= shutdown;
                    }
                }
                Ok(summary)
            });

            let mut seq = 0u64;
            let mut read_error = None;
            for line in reader.lines() {
                let line = match line {
                    Ok(l) => l,
                    Err(e) => {
                        read_error = Some(e);
                        break;
                    }
                };
                if line.trim().is_empty() {
                    continue;
                }
                // Stop reading once a shutdown request is enqueued;
                // earlier requests still drain through the reorder
                // buffer before the session ends.
                let is_shutdown = jsonv::parse(&line)
                    .ok()
                    .and_then(|v| v.get("op").and_then(Json::as_str).map(|o| o == "shutdown"))
                    .unwrap_or(false);
                if job_tx.send((seq, line)).is_err() {
                    break;
                }
                seq += 1;
                if is_shutdown {
                    break;
                }
            }
            drop(job_tx);

            let summary = drain
                .join()
                .unwrap_or_else(|_| Err(io::Error::other("response writer panicked")))?;
            match read_error {
                Some(e) => Err(e),
                None => Ok(summary),
            }
        })
    }

    /// Serve a Unix socket: connections are accepted one at a time and
    /// share the plan cache, so a reconnecting client keeps its warm
    /// entries. Returns after a client sends `shutdown`.
    ///
    /// # Errors
    ///
    /// Propagates bind/accept/stream I/O errors.
    #[cfg(unix)]
    pub fn serve_unix(&self, path: &std::path::Path) -> io::Result<()> {
        use std::os::unix::net::UnixListener;
        // A stale socket file from a previous run would make bind fail.
        let _ = std::fs::remove_file(path);
        let listener = UnixListener::bind(path)?;
        loop {
            let (stream, _) = listener.accept()?;
            let reader = io::BufReader::new(stream.try_clone()?);
            let summary = self.serve(reader, stream)?;
            if summary.shutdown {
                break;
            }
        }
        let _ = std::fs::remove_file(path);
        Ok(())
    }

    /// Answer one request line. Never panics on malformed input: every
    /// failure becomes an `"ok":false` response carrying the request id
    /// when one was given.
    fn respond(&self, line: &str) -> Response {
        self.requests.fetch_add(1, Ordering::Relaxed);
        let req = match jsonv::parse(line) {
            Ok(v) => v,
            Err(e) => {
                return Response {
                    body: error_body("", &format!("bad request: {e}")),
                    shutdown: false,
                }
            }
        };
        let id = id_prefix(&req);
        let Some(op) = req.get("op").and_then(Json::as_str) else {
            return Response {
                body: error_body(&id, "missing `op` field"),
                shutdown: false,
            };
        };
        match op {
            "ping" => Response {
                body: format!(
                    "{{{id}\"ok\":true,\"op\":\"ping\",\"protocol\":{PROTOCOL_VERSION}}}"
                ),
                shutdown: false,
            },
            "stats" => Response {
                body: self.stats_body(&id),
                shutdown: false,
            },
            "shutdown" => Response {
                body: format!("{{{id}\"ok\":true,\"op\":\"shutdown\"}}"),
                shutdown: true,
            },
            "compile" => match self.compile(&req) {
                Ok(fields) => Response {
                    body: format!("{{{id}\"ok\":true,\"op\":\"compile\",{fields}}}"),
                    shutdown: false,
                },
                Err(message) => Response {
                    body: error_body(&id, &message),
                    shutdown: false,
                },
            },
            other => Response {
                body: error_body(&id, &format!("unknown op `{other}`")),
                shutdown: false,
            },
        }
    }

    fn stats_body(&self, id: &str) -> String {
        let CacheStats {
            hits,
            misses,
            evictions,
            entries,
            capacity,
        } = self.cache.stats();
        format!(
            "{{{id}\"ok\":true,\"op\":\"stats\",\"requests\":{},\"workers\":{},\
             \"cache\":{{\"hits\":{hits},\"misses\":{misses},\"evictions\":{evictions},\
             \"entries\":{entries},\"capacity\":{capacity}}}}}",
            self.requests.load(Ordering::Relaxed),
            self.workers,
        )
    }

    /// Handle a `compile` request, returning the response's payload
    /// fields (everything after `"op":"compile",`) or an error message.
    fn compile(&self, req: &Json) -> Result<String, String> {
        let machine_src = source_field(req, "machine", "machine_path")?;
        let program_src = source_field(req, "program", "program_path")?;
        let options = request_options(req)?;
        let validate = match req.get("validate") {
            None => false,
            Some(v) => v.as_bool().ok_or("`validate` must be a boolean")?,
        };
        let target = self.target_for(&machine_src)?;
        let function = parse_function(&program_src).map_err(|e| format!("program: {e}"))?;
        let generator = CodeGenerator::with_shared_target(target)
            .options(options)
            .with_cache(Arc::clone(&self.cache));
        let (program, report) = generator
            .compile_function(&function)
            .map_err(|e| format!("compile: {e}"))?;
        let asm = program.render(generator.target());

        // Translation validation runs on the final rendered bytes, so
        // cache-served plans are checked too: a poisoned or stale cache
        // entry that changes the program's meaning is caught here.
        if validate {
            let tv = validate_asm(&function, &asm, &generator.target().machine);
            if !tv.ok() {
                return Err(format!(
                    "validate: emitted assembly diverges from the source\n{}",
                    render_report(&tv.diagnostics, Format::Text)
                ));
            }
        }

        let mut notes = String::new();
        for d in &report.downgrades {
            let _ = writeln!(notes, "downgrade: {d}");
        }
        if !report.complete {
            notes.push_str("note: compile incomplete under the given budget\n");
        }
        let mut fields = format!(
            "\"blocks\":{},\"instructions\":{},\"cache_hits\":{},\"cache_misses\":{},\
             \"complete\":{}",
            report.blocks.len(),
            report.total_instructions,
            report.cache_hits,
            report.cache_misses,
            report.complete,
        );
        if validate {
            fields.push_str(",\"validated\":true");
        }
        if !notes.is_empty() {
            let _ = write!(fields, ",\"notes\":\"{}\"", jsonv::escape(&notes));
        }
        let _ = write!(fields, ",\"asm\":\"{}\"", jsonv::escape(&asm));
        Ok(fields)
    }

    /// Parse-or-reuse the machine for `machine_src`. Keyed on the raw
    /// source text: two requests with the same bytes share one
    /// [`Target`] (and its derived tables) across all workers.
    fn target_for(&self, machine_src: &str) -> Result<Arc<Target>, String> {
        let key = aviv_ir::stablehash::hash_str(machine_src);
        if let Some(t) = lock_unpoisoned(&self.targets).get(&key) {
            return Ok(Arc::clone(t));
        }
        let machine =
            parse_machine(machine_src).map_err(|e| format!("machine description: {e}"))?;
        let target = Arc::new(Target::new(machine));
        // A racing worker may have inserted meanwhile; keep the first.
        Ok(Arc::clone(
            lock_unpoisoned(&self.targets).entry(key).or_insert(target),
        ))
    }
}

/// Per-request codegen options: the same knobs as the `avivc` command
/// line, defaulting to the default preset with sequential inner jobs.
fn request_options(req: &Json) -> Result<CodegenOptions, String> {
    let preset = req.get("preset").and_then(Json::as_str).unwrap_or("on");
    let base = match preset {
        "on" => CodegenOptions::heuristics_on(),
        "thorough" => CodegenOptions::thorough(),
        "off" => CodegenOptions::heuristics_off(),
        other => return Err(format!("unknown preset `{other}`")),
    };
    let jobs = match req.get("jobs") {
        None => 1,
        Some(v) => v.as_u64().ok_or("`jobs` must be a non-negative integer")? as usize,
    };
    let fuel = match req.get("fuel") {
        None => None,
        Some(v) => Some(v.as_u64().ok_or("`fuel` must be a non-negative integer")?),
    };
    let timeout_ms = match req.get("timeout_ms") {
        None => None,
        Some(v) => Some(
            v.as_u64()
                .ok_or("`timeout_ms` must be a non-negative integer")?,
        ),
    };
    Ok(base
        .with_jobs(jobs)
        .with_fuel(fuel)
        .with_deadline_ms(timeout_ms))
}

/// Resolve a source payload that may be inline (`machine`/`program`)
/// or a path to read (`machine_path`/`program_path`).
fn source_field(req: &Json, inline_key: &str, path_key: &str) -> Result<String, String> {
    match (req.get(inline_key), req.get(path_key)) {
        (Some(_), Some(_)) => Err(format!("give `{inline_key}` or `{path_key}`, not both")),
        (Some(v), None) => v
            .as_str()
            .map(str::to_string)
            .ok_or(format!("`{inline_key}` must be a string")),
        (None, Some(v)) => {
            let path = v.as_str().ok_or(format!("`{path_key}` must be a string"))?;
            std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))
        }
        (None, None) => Err(format!("missing `{inline_key}` (or `{path_key}`)")),
    }
}

/// Render the echoed `"id":...,` fragment (empty when the request has
/// no id). Integer and string ids are supported.
fn id_prefix(req: &Json) -> String {
    match req.get("id") {
        Some(Json::Num(_)) => match req.get("id").and_then(Json::as_u64) {
            Some(n) => format!("\"id\":{n},"),
            None => String::new(),
        },
        Some(Json::Str(s)) => format!("\"id\":\"{}\",", jsonv::escape(s)),
        _ => String::new(),
    }
}

fn error_body(id: &str, message: &str) -> String {
    format!(
        "{{{id}\"ok\":false,\"error\":\"{}\"}}",
        jsonv::escape(message)
    )
}

fn lock_unpoisoned<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    match m.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MACHINE: &str = "machine M {
        unit U1 { ops { add, sub, compl, cmpgt } regfile R1[4]; }
        unit U2 { ops { add, mul } regfile R2[4]; }
        memory DM;
        bus DB capacity 1 connects { R1, R2, DM };
    }";

    const PROGRAM: &str = "func f(a, b) { x = a * b + 1; return x; }";

    fn run(server: &Server, requests: &str) -> Vec<Json> {
        let mut out = Vec::new();
        server
            .serve(io::Cursor::new(requests.to_string()), &mut out)
            .unwrap();
        String::from_utf8(out)
            .unwrap()
            .lines()
            .map(|l| jsonv::parse(l).unwrap())
            .collect()
    }

    fn compile_req(id: u64) -> String {
        format!(
            "{{\"id\":{id},\"op\":\"compile\",\"machine\":\"{}\",\"program\":\"{}\"}}",
            jsonv::escape(MACHINE),
            jsonv::escape(PROGRAM)
        )
    }

    #[test]
    fn config_parses_and_rejects() {
        let c = ServeConfig::parse(&[]).unwrap();
        assert_eq!((c.workers, c.cache_size), (1, aviv::DEFAULT_CACHE_CAPACITY));
        let c = ServeConfig::parse(&[
            "--workers".into(),
            "4".into(),
            "--cache-size".into(),
            "64".into(),
            "--socket".into(),
            "/tmp/s".into(),
        ])
        .unwrap();
        assert_eq!((c.workers, c.cache_size), (4, 64));
        assert_eq!(c.socket.as_deref(), Some("/tmp/s"));
        assert!(ServeConfig::parse(&["--workers".into()]).is_err());
        assert!(ServeConfig::parse(&["--workers".into(), "many".into()]).is_err());
        assert!(ServeConfig::parse(&["--wat".into()]).is_err());
        let help = ServeConfig::parse(&["--help".into()]).unwrap_err();
        assert!(help.0.contains("usage"));
    }

    #[test]
    fn ping_stats_and_shutdown_round_trip() {
        let server = Server::new(&ServeConfig::default());
        let responses = run(
            &server,
            "{\"op\":\"ping\"}\n{\"op\":\"stats\"}\n{\"op\":\"shutdown\"}\n{\"op\":\"ping\"}\n",
        );
        // The request after shutdown is never answered.
        assert_eq!(responses.len(), 3);
        assert_eq!(responses[0].get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(
            responses[0].get("protocol").and_then(Json::as_u64),
            Some(u64::from(PROTOCOL_VERSION))
        );
        let cache = responses[1].get("cache").unwrap();
        assert_eq!(cache.get("hits").and_then(Json::as_u64), Some(0));
        assert_eq!(
            responses[2].get("op").and_then(Json::as_str),
            Some("shutdown")
        );
    }

    #[test]
    fn malformed_requests_get_error_responses() {
        let server = Server::new(&ServeConfig::default());
        let responses = run(
            &server,
            "not json\n{\"op\":\"wat\"}\n{\"id\":7,\"op\":\"compile\",\"machine\":\"m\"}\n\
             {\"op\":\"compile\",\"machine\":\"bad\",\"program\":\"func f(a) { return a; }\"}\n",
        );
        assert_eq!(responses.len(), 4);
        for r in &responses {
            assert_eq!(r.get("ok").and_then(Json::as_bool), Some(false), "{r:?}");
            assert!(r.get("error").is_some());
        }
        // The id is echoed even on errors.
        assert_eq!(responses[2].get("id").and_then(Json::as_u64), Some(7));
        let msg = responses[3].get("error").and_then(Json::as_str).unwrap();
        assert!(msg.contains("machine description"), "{msg}");
    }

    #[test]
    fn repeat_compiles_hit_the_cache_and_match() {
        let server = Server::new(&ServeConfig::default());
        let responses = run(
            &server,
            &format!("{}\n{}\n", compile_req(1), compile_req(2)),
        );
        let cold = &responses[0];
        let warm = &responses[1];
        assert_eq!(
            cold.get("ok").and_then(Json::as_bool),
            Some(true),
            "{cold:?}"
        );
        assert_eq!(cold.get("cache_hits").and_then(Json::as_u64), Some(0));
        assert_eq!(warm.get("cache_misses").and_then(Json::as_u64), Some(0));
        assert_eq!(
            warm.get("cache_hits").and_then(Json::as_u64),
            warm.get("blocks").and_then(Json::as_u64)
        );
        assert_eq!(cold.get("asm"), warm.get("asm"));
        // And the served assembly equals the one-shot driver's bytes.
        let opts = crate::Options::parse(&["--machine".into(), "m.isdl".into(), "prog.av".into()])
            .unwrap();
        let oneshot = crate::drive(&opts, MACHINE, PROGRAM).unwrap();
        assert_eq!(
            cold.get("asm").and_then(Json::as_str).unwrap().as_bytes(),
            &oneshot.output[..]
        );
    }

    #[test]
    fn worker_pool_keeps_request_order_and_bytes() {
        let sequential = Server::new(&ServeConfig::default());
        let requests: String = (0..8).map(|i| format!("{}\n", compile_req(i))).collect();
        let expect = run(&sequential, &requests);
        for workers in [2, 0] {
            let pooled = Server::new(&ServeConfig {
                workers,
                ..ServeConfig::default()
            });
            let got = run(&pooled, &requests);
            assert_eq!(got.len(), expect.len());
            for (g, e) in got.iter().zip(&expect) {
                assert_eq!(g.get("id"), e.get("id"), "workers={workers}");
                assert_eq!(g.get("asm"), e.get("asm"), "workers={workers}");
            }
        }
    }

    #[test]
    fn per_request_qos_is_honored() {
        let server = Server::new(&ServeConfig::default());
        let tight = format!(
            "{{\"op\":\"compile\",\"machine\":\"{}\",\"program\":\"{}\",\"fuel\":1}}",
            jsonv::escape(MACHINE),
            jsonv::escape(PROGRAM)
        );
        let responses = run(&server, &format!("{tight}\n{}\n", compile_req(1)));
        let degraded = &responses[0];
        assert_eq!(degraded.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(
            degraded.get("complete").and_then(Json::as_bool),
            Some(false)
        );
        let notes = degraded.get("notes").and_then(Json::as_str).unwrap();
        assert!(notes.contains("downgrade:"), "{notes}");
        // The degraded compile did not poison the cache: the follow-up
        // unbudgeted request is a miss, not a bogus hit.
        let fresh = &responses[1];
        assert_eq!(fresh.get("complete").and_then(Json::as_bool), Some(true));
        assert_eq!(
            fresh.get("cache_hits").and_then(Json::as_u64),
            Some(0),
            "{fresh:?}"
        );
    }

    #[test]
    fn validate_flag_checks_cold_and_cached_compiles() {
        let server = Server::new(&ServeConfig::default());
        let req = |id: u64| {
            format!(
                "{{\"id\":{id},\"op\":\"compile\",\"machine\":\"{}\",\"program\":\"{}\",\
                 \"validate\":true}}",
                jsonv::escape(MACHINE),
                jsonv::escape(PROGRAM)
            )
        };
        let responses = run(&server, &format!("{}\n{}\n", req(1), req(2)));
        let cold = &responses[0];
        let warm = &responses[1];
        assert_eq!(
            cold.get("ok").and_then(Json::as_bool),
            Some(true),
            "{cold:?}"
        );
        assert_eq!(cold.get("validated").and_then(Json::as_bool), Some(true));
        // The warm request is served from the cache and still validated.
        assert_eq!(
            warm.get("cache_hits").and_then(Json::as_u64),
            warm.get("blocks").and_then(Json::as_u64)
        );
        assert_eq!(warm.get("validated").and_then(Json::as_bool), Some(true));
        // Requests without the flag carry no `validated` field.
        let responses = run(&server, &format!("{}\n", compile_req(3)));
        assert!(responses[0].get("validated").is_none());
        // Non-boolean `validate` is rejected.
        let bad = format!(
            "{{\"op\":\"compile\",\"machine\":\"{}\",\"program\":\"{}\",\"validate\":7}}",
            jsonv::escape(MACHINE),
            jsonv::escape(PROGRAM)
        );
        let responses = run(&server, &format!("{bad}\n"));
        let msg = responses[0].get("error").and_then(Json::as_str).unwrap();
        assert!(msg.contains("`validate` must be a boolean"), "{msg}");
    }

    #[test]
    fn string_ids_and_unknown_presets() {
        let server = Server::new(&ServeConfig::default());
        let responses = run(
            &server,
            "{\"id\":\"req-a\",\"op\":\"ping\"}\n\
             {\"op\":\"compile\",\"machine\":\"m\",\"program\":\"p\",\"preset\":\"fast\"}\n",
        );
        assert_eq!(responses[0].get("id").and_then(Json::as_str), Some("req-a"));
        let msg = responses[1].get("error").and_then(Json::as_str).unwrap();
        assert!(msg.contains("unknown preset"), "{msg}");
    }
}
