//! The server chaos suite (`docs/robustness.md`): concurrent socket
//! clients, connections killed mid-request, injected panics and budget
//! exhaustion under load, and corrupted persistence files. The
//! invariants, in every scenario:
//!
//! 1. the server never wedges — every session ends, shutdown always
//!    completes, the socket file is always removed;
//! 2. served bytes never differ from a cold single-threaded `avivc`
//!    compile, no matter which chaos preceded the request;
//! 3. a restart after corruption quarantines the bad snapshot and
//!    serves correct results from cold.

#![cfg(unix)]

use aviv::jsonv::{self, Json};
use aviv_cli::serve::{ServeConfig, Server};
use aviv_cli::{drive, Options};
use std::io::{BufRead as _, BufReader, Write as _};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

fn assets_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
        .join("assets")
}

fn pairs() -> Vec<(String, String, String)> {
    let dir = assets_dir();
    let mut out = Vec::new();
    for m in ["fig3", "archII", "dsp_mac"] {
        let machine = std::fs::read_to_string(dir.join(format!("{m}.isdl"))).unwrap();
        for p in ["sum_loop", "dot4"] {
            let program = std::fs::read_to_string(dir.join(format!("{p}.av"))).unwrap();
            out.push((format!("{p}@{m}"), machine.clone(), program.clone()));
        }
    }
    out
}

fn compile_request(id: &str, machine: &str, program: &str) -> String {
    format!(
        "{{\"id\":\"{id}\",\"op\":\"compile\",\"machine\":\"{}\",\"program\":\"{}\"}}",
        jsonv::escape(machine),
        jsonv::escape(program)
    )
}

/// Cold single-threaded `avivc` — the byte oracle for every response.
fn oneshot_asm(machine: &str, program: &str) -> Vec<u8> {
    let opts = Options::parse(&["--machine".into(), "m.isdl".into(), "p.av".into()]).unwrap();
    drive(&opts, machine, program).unwrap().output
}

/// Connect to `path`, retrying while the listener binds.
fn connect(path: &Path) -> UnixStream {
    for _ in 0..200 {
        if let Ok(s) = UnixStream::connect(path) {
            return s;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    panic!("listener at {} never became connectable", path.display());
}

/// Send `requests`, half-close the write side, and read responses until
/// EOF (the server's drain contract answers everything sent).
fn roundtrip(mut s: UnixStream, requests: &[String]) -> Vec<Json> {
    let mut reader = BufReader::new(s.try_clone().unwrap());
    for r in requests {
        writeln!(s, "{r}").unwrap();
    }
    s.shutdown(std::net::Shutdown::Write).unwrap();
    let mut out = Vec::new();
    let mut line = String::new();
    while reader.read_line(&mut line).unwrap() > 0 {
        out.push(jsonv::parse(line.trim_end()).unwrap());
        line.clear();
    }
    out
}

fn sock_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("aviv-chaos-{tag}-{}.sock", std::process::id()))
}

fn shutdown_server(path: &Path) {
    let responses = roundtrip(connect(path), &["{\"op\":\"shutdown\"}".to_string()]);
    assert_eq!(
        responses
            .last()
            .and_then(|r| r.get("op"))
            .and_then(Json::as_str),
        Some("shutdown")
    );
}

/// Tentpole acceptance: N concurrent socket clients, each compiling
/// every bundled pair, at server workers 1, 4, and 0 — every response
/// byte-identical to a cold single-threaded one-shot compile.
#[test]
fn concurrent_clients_match_cold_oneshot_at_every_worker_count() {
    let pairs = pairs();
    let oracles: Vec<Vec<u8>> = pairs.iter().map(|(_, m, p)| oneshot_asm(m, p)).collect();
    for workers in [1usize, 4, 0] {
        let path = sock_path(&format!("conc{workers}"));
        let _ = std::fs::remove_file(&path);
        let server = Arc::new(Server::new(&ServeConfig {
            workers,
            ..ServeConfig::default()
        }));
        let listener = {
            let server = Arc::clone(&server);
            let path = path.clone();
            std::thread::spawn(move || server.serve_unix(&path))
        };
        // Wait for bind before racing clients at it.
        drop(connect(&path));

        std::thread::scope(|s| {
            for client in 0..4 {
                let pairs = &pairs;
                let oracles = &oracles;
                let path = &path;
                s.spawn(move || {
                    let requests: Vec<String> = pairs
                        .iter()
                        .map(|(label, m, p)| compile_request(&format!("c{client}-{label}"), m, p))
                        .collect();
                    let responses = roundtrip(connect(path), &requests);
                    assert_eq!(
                        responses.len(),
                        pairs.len(),
                        "client {client} workers={workers}: lost responses"
                    );
                    for (i, r) in responses.iter().enumerate() {
                        let label = &pairs[i].0;
                        // In-order delivery: ids echo back in sequence.
                        assert_eq!(
                            r.get("id").and_then(Json::as_str),
                            Some(format!("c{client}-{label}").as_str())
                        );
                        assert_eq!(
                            r.get("ok").and_then(Json::as_bool),
                            Some(true),
                            "client {client} {label} workers={workers}: {r:?}"
                        );
                        assert_eq!(
                            r.get("asm").and_then(Json::as_str).unwrap().as_bytes(),
                            &oracles[i][..],
                            "client {client} {label} workers={workers}: bytes differ from cold"
                        );
                    }
                });
            }
        });

        shutdown_server(&path);
        listener.join().unwrap().unwrap();
        assert!(!path.exists(), "workers={workers}: socket file not removed");
    }
}

/// Kill connections mid-request: clients that write a compile and
/// vanish without reading must not wedge the server or poison the
/// cache for the well-behaved client that follows.
#[test]
fn dropped_connections_mid_request_leave_the_server_serving() {
    let (_, machine, program) = pairs().remove(0);
    let oracle = oneshot_asm(&machine, &program);
    let path = sock_path("drop");
    let _ = std::fs::remove_file(&path);
    let server = Arc::new(Server::new(&ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    }));
    let listener = {
        let server = Arc::clone(&server);
        let path = path.clone();
        std::thread::spawn(move || server.serve_unix(&path))
    };
    drop(connect(&path));

    // A wave of clients that write work and slam the connection shut.
    for i in 0..8 {
        let mut s = connect(&path);
        writeln!(
            s,
            "{}",
            compile_request(&format!("doomed-{i}"), &machine, &program)
        )
        .unwrap();
        // Drop without reading: the response write fails server-side,
        // which cancels the session's in-flight compiles.
        drop(s);
    }

    // The server still answers, and with the cold one-shot bytes.
    let responses = roundtrip(
        connect(&path),
        &[compile_request("survivor", &machine, &program)],
    );
    assert_eq!(responses.len(), 1);
    assert_eq!(responses[0].get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(
        responses[0]
            .get("asm")
            .and_then(Json::as_str)
            .unwrap()
            .as_bytes(),
        &oracle[..],
        "bytes after connection chaos differ from cold compile"
    );

    shutdown_server(&path);
    listener.join().unwrap().unwrap();
    assert!(!path.exists());
}

/// Cancellation over the socket: a pre-delivered cancel aborts its
/// compile without poisoning the cache, and a live cancel for a request
/// throttled by `timeout_ms` still answers deterministically.
#[test]
fn cancelled_requests_abort_without_cache_poisoning() {
    let (_, machine, program) = pairs().remove(0);
    let oracle = oneshot_asm(&machine, &program);
    let path = sock_path("cancel");
    let _ = std::fs::remove_file(&path);
    let server = Arc::new(Server::new(&ServeConfig::default()));
    let listener = {
        let server = Arc::clone(&server);
        let path = path.clone();
        std::thread::spawn(move || server.serve_unix(&path))
    };
    drop(connect(&path));

    // Cancel races ahead of its compile (deterministic: same pipelined
    // stream, cancel first). The compile must answer cancelled.
    let responses = roundtrip(
        connect(&path),
        &[
            "{\"id\":\"x\",\"op\":\"cancel\"}".to_string(),
            compile_request("x", &machine, &program),
        ],
    );
    assert_eq!(responses.len(), 2);
    assert_eq!(
        responses[0].get("delivered").and_then(Json::as_bool),
        Some(false)
    );
    assert_eq!(responses[1].get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(
        responses[1].get("cancelled").and_then(Json::as_bool),
        Some(true),
        "{:?}",
        responses[1]
    );
    // The aborted compile cached nothing.
    assert!(server.cache().is_empty(), "cancelled compile left entries");

    // The same request uncancelled compiles cold and correct.
    let responses = roundtrip(connect(&path), &[compile_request("y", &machine, &program)]);
    assert_eq!(
        responses[0].get("cache_hits").and_then(Json::as_u64),
        Some(0),
        "{:?}",
        responses[0]
    );
    assert_eq!(
        responses[0]
            .get("asm")
            .and_then(Json::as_str)
            .unwrap()
            .as_bytes(),
        &oracle[..]
    );
    // Stats saw exactly one cancellation served.
    let stats = roundtrip(connect(&path), &["{\"op\":\"stats\"}".to_string()]);
    assert_eq!(
        stats[0].get("cancellations").and_then(Json::as_u64),
        Some(1)
    );

    shutdown_server(&path);
    listener.join().unwrap().unwrap();
}

/// Injected panics and budget exhaustion under concurrent load: every
/// request answers (ok or structured error), no fault leaks into the
/// cache, and clean compiles stay byte-identical throughout.
#[test]
fn fault_injection_under_concurrent_load_never_wedges_or_corrupts() {
    let pairs = pairs();
    let (_, machine, program) = pairs[0].clone();
    let oracle = oneshot_asm(&machine, &program);
    let path = sock_path("faults");
    let _ = std::fs::remove_file(&path);
    let server = Arc::new(Server::new(&ServeConfig {
        workers: 4,
        ..ServeConfig::default()
    }));
    let listener = {
        let server = Arc::clone(&server);
        let path = path.clone();
        std::thread::spawn(move || server.serve_unix(&path))
    };
    drop(connect(&path));

    std::thread::scope(|s| {
        // Chaos clients: seeded fault injection and starvation fuel.
        for client in 0..3 {
            let machine = &machine;
            let program = &program;
            let path = &path;
            s.spawn(move || {
                let requests: Vec<String> = (0..6)
                    .map(|i| {
                        let seed = client * 100 + i;
                        if i % 2 == 0 {
                            format!(
                                "{{\"id\":\"f{seed}\",\"op\":\"compile\",\"machine\":\"{}\",\
                                 \"program\":\"{}\",\"fault_seed\":{seed}}}",
                                jsonv::escape(machine),
                                jsonv::escape(program)
                            )
                        } else {
                            format!(
                                "{{\"id\":\"f{seed}\",\"op\":\"compile\",\"machine\":\"{}\",\
                                 \"program\":\"{}\",\"fuel\":{}}}",
                                jsonv::escape(machine),
                                jsonv::escape(program),
                                1 + seed
                            )
                        }
                    })
                    .collect();
                let responses = roundtrip(connect(path), &requests);
                assert_eq!(
                    responses.len(),
                    requests.len(),
                    "client {client} lost answers"
                );
                for r in &responses {
                    assert!(r.get("ok").is_some(), "no outcome: {r:?}");
                }
            });
        }
        // A clean client interleaved with the chaos: its bytes must
        // match the cold oracle on every iteration.
        let machine = &machine;
        let program = &program;
        let path = &path;
        let oracle = &oracle;
        s.spawn(move || {
            for i in 0..4 {
                let responses = roundtrip(
                    connect(path),
                    &[compile_request(&format!("clean-{i}"), machine, program)],
                );
                assert_eq!(
                    responses[0].get("ok").and_then(Json::as_bool),
                    Some(true),
                    "{:?}",
                    responses[0]
                );
                assert_eq!(
                    responses[0]
                        .get("asm")
                        .and_then(Json::as_str)
                        .unwrap()
                        .as_bytes(),
                    &oracle[..],
                    "clean compile corrupted by concurrent faults (iteration {i})"
                );
            }
        });
    });

    shutdown_server(&path);
    listener.join().unwrap().unwrap();
    assert!(!path.exists());
}

/// Crash-safe persistence end-to-end: snapshots survive a clean
/// restart byte-for-byte; truncations, bit flips, and a torn write
/// (the kill -9 shape) are quarantined on restart and the server
/// serves correct results from cold.
#[test]
fn corrupted_snapshots_are_quarantined_and_restart_serves_cold() {
    let (_, machine, program) = pairs().remove(0);
    let oracle = oneshot_asm(&machine, &program);
    let dir = std::env::temp_dir();
    let snap = dir.join(format!("aviv-chaos-snap-{}.avivcache", std::process::id()));
    let quarantined = snap.with_file_name(format!(
        "{}.quarantined",
        snap.file_name().unwrap().to_str().unwrap()
    ));
    let _ = std::fs::remove_file(&snap);
    let _ = std::fs::remove_file(&quarantined);
    let config = ServeConfig {
        persist: Some(snap.display().to_string()),
        validate_on_load: true,
        ..ServeConfig::default()
    };

    // Warm a server, persist, keep the good snapshot bytes.
    let warmup = Server::new(&config);
    let mut out = Vec::new();
    warmup
        .serve(
            std::io::Cursor::new(format!("{}\n", compile_request("w", &machine, &program))),
            &mut out,
        )
        .unwrap();
    assert!(warmup.persist_now().unwrap() > 0);
    let good = std::fs::read(&snap).unwrap();
    assert!(good.len() > 64);

    // Clean restart: all hits, validated, byte-identical.
    let restarted = Server::new(&config);
    let mut out = Vec::new();
    restarted
        .serve(
            std::io::Cursor::new(format!("{}\n", compile_request("r", &machine, &program))),
            &mut out,
        )
        .unwrap();
    let r = jsonv::parse(String::from_utf8(out).unwrap().trim_end()).unwrap();
    assert_eq!(r.get("cache_misses").and_then(Json::as_u64), Some(0));
    assert!(r.get("restored_hits").and_then(Json::as_u64).unwrap() > 0);
    assert_eq!(r.get("validated").and_then(Json::as_bool), Some(true));
    assert_eq!(
        r.get("asm").and_then(Json::as_str).unwrap().as_bytes(),
        &oracle[..]
    );

    // Corruption battery: truncations (torn write / kill -9 during
    // persist), bit flips in header and payload, and garbage.
    let corruptions: Vec<(String, Vec<u8>)> = vec![
        ("empty".into(), Vec::new()),
        ("header-only".into(), good[..20.min(good.len())].to_vec()),
        ("half".into(), good[..good.len() / 2].to_vec()),
        ("missing-tail".into(), good[..good.len() - 1].to_vec()),
        ("magic-flip".into(), {
            let mut b = good.clone();
            b[0] ^= 0xff;
            b
        }),
        ("payload-flip".into(), {
            let mut b = good.clone();
            let at = b.len() * 3 / 4;
            b[at] ^= 0x01;
            b
        }),
        ("trailing-garbage".into(), {
            let mut b = good.clone();
            b.extend_from_slice(b"torn");
            b
        }),
    ];
    for (label, bytes) in corruptions {
        std::fs::write(&snap, &bytes).unwrap();
        let _ = std::fs::remove_file(&quarantined);
        let victim = Server::new(&config);
        assert!(
            victim.cache().is_empty(),
            "{label}: corrupt snapshot populated the cache"
        );
        assert_eq!(
            victim.cache().stats().quarantines,
            1,
            "{label}: corruption not quarantined"
        );
        assert!(
            quarantined.exists(),
            "{label}: bad snapshot not moved aside"
        );
        assert!(!snap.exists(), "{label}: bad snapshot left in place");
        // And the restarted server serves correct bytes from cold.
        let mut out = Vec::new();
        victim
            .serve(
                std::io::Cursor::new(format!("{}\n", compile_request("c", &machine, &program))),
                &mut out,
            )
            .unwrap();
        let r = jsonv::parse(String::from_utf8(out).unwrap().trim_end()).unwrap();
        assert_eq!(r.get("ok").and_then(Json::as_bool), Some(true), "{label}");
        assert_eq!(
            r.get("cache_hits").and_then(Json::as_u64),
            Some(0),
            "{label}"
        );
        assert_eq!(
            r.get("asm").and_then(Json::as_str).unwrap().as_bytes(),
            &oracle[..],
            "{label}: post-quarantine bytes differ from cold"
        );
    }

    // A leftover temp file from a killed save never shadows the real
    // snapshot: restore the good bytes, plant a stale temp, restart.
    std::fs::write(&snap, &good).unwrap();
    let stale_tmp = snap.with_file_name(format!(
        ".{}.tmp.99999",
        snap.file_name().unwrap().to_str().unwrap()
    ));
    std::fs::write(&stale_tmp, b"partial write from a killed process").unwrap();
    let survivor = Server::new(&config);
    assert!(!survivor.cache().is_empty(), "good snapshot not restored");
    let _ = std::fs::remove_file(&stale_tmp);
    let _ = std::fs::remove_file(&snap);
    let _ = std::fs::remove_file(&quarantined);
}
