//! Golden-file pin of the `avivc analyze --format json` schema.
//!
//! The analyze JSON document is a tool-facing contract (CI gates and
//! editor integrations key on its fields), so its exact bytes for a
//! fixed machine × program pair are pinned: any serializer change
//! fails here and must bump the document's `schema_version` (and this
//! golden) deliberately.

use aviv::verify::Format;
use aviv_cli::{run_analyze, AnalyzeOptions};

const MACHINE: &str = include_str!("../../../assets/archII.isdl");
const PROGRAM: &str = include_str!("../../../assets/dot4.av");

fn golden_path() -> &'static str {
    concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/analyze_dot4_archII.json"
    )
}

fn render() -> String {
    let options = AnalyzeOptions {
        program_path: "dot4.av".into(),
        machine_path: "archII.isdl".into(),
        format: Format::Json,
        deny_warnings: false,
    };
    let (report, fail) = run_analyze(&options, PROGRAM, MACHINE).expect("analyze runs");
    assert!(!fail, "bundled pair must analyze clean:\n{report}");
    report
}

/// Regenerate the golden after a deliberate schema change:
/// `cargo test -p aviv-cli --test analyze_golden -- --ignored regen_golden`
#[test]
#[ignore = "writes tests/golden/analyze_dot4_archII.json; run with --ignored to regenerate"]
fn regen_golden() {
    std::fs::write(golden_path(), render()).unwrap();
}

#[test]
fn analyze_json_matches_golden_file() {
    let golden = include_str!("golden/analyze_dot4_archII.json");
    assert_eq!(
        render(),
        golden,
        "analyze JSON schema drifted from the golden file; if the change \
         is intentional, bump schema_version and regenerate the golden"
    );
}

#[test]
fn golden_declares_the_pinned_schema_version() {
    assert!(include_str!("golden/analyze_dot4_archII.json").contains("\"schema_version\":1"));
}
