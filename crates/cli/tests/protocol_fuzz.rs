//! Protocol-level fuzz of the `avivd` request pump: seeded garbage,
//! truncated requests, and half-valid compile requests stream in over
//! NDJSON, and the server must answer every nonempty line with exactly
//! one well-formed JSON response — `"ok":false` for everything
//! malformed — without panicking, wedging, or breaking response order.
//!
//! This is the boundary the chaos suite's byte-level faults ultimately
//! reach: a client that crashes mid-write leaves exactly these shapes
//! on the wire.

use aviv::jsonv::{self, Json};
use aviv_cli::serve::{ServeConfig, Server};
use std::io::Cursor;

struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }
}

/// Request templates a broken client plausibly truncates or corrupts.
const TEMPLATES: &[&str] = &[
    r#"{"op":"ping"}"#,
    r#"{"id":3,"op":"stats"}"#,
    r#"{"id":4,"op":"cancel"}"#,
    r#"{"op":"persist"}"#,
    r#"{"id":5,"op":"compile","machine":"not an isdl machine","program":"not a program"}"#,
    r#"{"id":6,"op":"compile","machine_path":"/nonexistent/m.isdl","program_path":"/nonexistent/p.av"}"#,
    r#"{"id":7,"op":"compile"}"#,
    r#"{"op":"compile","machine":7,"program":true}"#,
    r#"{"op":"compile","machine":"m","program":"p","qos":"warp"}"#,
    r#"{"op":"compile","machine":"m","program":"p","jobs":"many"}"#,
    r#"{"op":"compile","machine":"m","program":"p","fault_seed":-1}"#,
    r#"{"op":[1,2]}"#,
    r#"{"op":"wat"}"#,
    "[]",
    "null",
    "@#$%^&*",
];

fn mutate(rng: &mut Rng, template: &str) -> String {
    let mut bytes = template.as_bytes().to_vec();
    match rng.below(4) {
        // Truncate mid-document.
        0 => bytes.truncate(rng.below(bytes.len().max(1))),
        // Flip a byte to printable ASCII.
        1 if !bytes.is_empty() => {
            let at = rng.below(bytes.len());
            bytes[at] = 0x20 + (rng.next() % 0x5f) as u8;
        }
        // Duplicate a chunk (broken buffering).
        2 => {
            let at = rng.below(bytes.len().max(1));
            let chunk: Vec<u8> = bytes[at..].to_vec();
            bytes.extend_from_slice(&chunk);
        }
        // Pass through unchanged.
        _ => {}
    }
    String::from_utf8_lossy(&bytes).into_owned()
}

#[test]
fn fuzzed_request_streams_always_answer_and_never_panic() {
    for workers in [1usize, 3] {
        for seed in 0..24u64 {
            let mut rng = Rng::new(seed * 7919 + workers as u64 + 1);
            let mut lines = Vec::new();
            for _ in 0..40 {
                let t = TEMPLATES[rng.below(TEMPLATES.len())];
                lines.push(mutate(&mut rng, t));
            }
            let input: String = lines.iter().map(|l| format!("{l}\n")).collect();
            let nonempty = lines.iter().filter(|l| !l.trim().is_empty()).count();

            let server = Server::new(&ServeConfig {
                workers,
                ..ServeConfig::default()
            });
            let mut out = Vec::new();
            let summary = server
                .serve(Cursor::new(input), &mut out)
                .expect("fuzzed input is not an I/O error");
            // No template is a valid shutdown request, so every
            // nonempty line must be answered (EOF drains the stream).
            assert_eq!(
                summary.requests as usize, nonempty,
                "workers={workers} seed={seed}: lost or duplicated responses"
            );
            let text = String::from_utf8(out).expect("responses are UTF-8");
            let responses: Vec<Json> = text
                .lines()
                .map(|l| {
                    jsonv::parse(l).unwrap_or_else(|e| {
                        panic!("workers={workers} seed={seed}: malformed response {l:?}: {e}")
                    })
                })
                .collect();
            assert_eq!(responses.len(), nonempty);
            for r in &responses {
                // Every response declares an outcome; garbage in never
                // yields ok:true with compile payload out of thin air.
                let ok = r
                    .get("ok")
                    .and_then(Json::as_bool)
                    .unwrap_or_else(|| panic!("response without ok: {r:?}"));
                if ok {
                    assert!(
                        r.get("op").is_some(),
                        "ok response without an op echo: {r:?}"
                    );
                } else {
                    assert!(r.get("error").is_some(), "failure without error: {r:?}");
                }
            }
        }
    }
}

#[test]
fn blank_and_whitespace_lines_are_ignored_not_answered() {
    let server = Server::new(&ServeConfig::default());
    let mut out = Vec::new();
    let summary = server
        .serve(
            Cursor::new("\n   \n\t\n{\"op\":\"ping\"}\n\n".to_string()),
            &mut out,
        )
        .unwrap();
    assert_eq!(summary.requests, 1);
    assert_eq!(String::from_utf8(out).unwrap().lines().count(), 1);
}

#[test]
fn shutdown_mid_garbage_still_stops_cleanly() {
    let server = Server::new(&ServeConfig::default());
    let mut out = Vec::new();
    let summary = server
        .serve(
            Cursor::new("garbage\n{\"op\":\"shutdown\"}\nnever read\n".to_string()),
            &mut out,
        )
        .unwrap();
    assert!(summary.shutdown);
    assert_eq!(summary.requests, 2);
}
