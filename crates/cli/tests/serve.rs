//! Serve-smoke: replay every bundled program×machine pair through the
//! `avivd` serving layer twice and hold the cache to its contract —
//! the second pass is answered 100% from cache, and the served bytes
//! are identical to a cold pass and to a one-shot `avivc` compile, at
//! every worker/job count.

use aviv::jsonv::{self, Json};
use aviv_cli::serve::{ServeConfig, Server};
use aviv_cli::{drive, Options};
use std::path::PathBuf;

fn assets_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
        .join("assets")
}

/// Every bundled machine × program pair, as (label, machine source,
/// program source).
fn pairs() -> Vec<(String, String, String)> {
    let dir = assets_dir();
    let machines = ["fig3", "archII", "dsp_mac"];
    let programs = ["sum_loop", "dot4"];
    let mut out = Vec::new();
    for m in machines {
        let machine = std::fs::read_to_string(dir.join(format!("{m}.isdl"))).unwrap();
        for p in programs {
            let program = std::fs::read_to_string(dir.join(format!("{p}.av"))).unwrap();
            out.push((format!("{p}@{m}"), machine.clone(), program.clone()));
        }
    }
    out
}

fn compile_request(id: usize, machine: &str, program: &str, jobs: usize) -> String {
    format!(
        "{{\"id\":{id},\"op\":\"compile\",\"machine\":\"{}\",\"program\":\"{}\",\"jobs\":{jobs}}}",
        jsonv::escape(machine),
        jsonv::escape(program)
    )
}

/// Run one batch of requests against `server`, returning the parsed
/// response per request.
fn session(server: &Server, requests: &[String]) -> Vec<Json> {
    let input = requests.join("\n") + "\n";
    let mut out = Vec::new();
    server.serve(std::io::Cursor::new(input), &mut out).unwrap();
    String::from_utf8(out)
        .unwrap()
        .lines()
        .map(|l| jsonv::parse(l).unwrap())
        .collect()
}

fn oneshot_asm(machine: &str, program: &str, jobs: usize) -> Vec<u8> {
    let opts = Options::parse(&[
        "--machine".into(),
        "m.isdl".into(),
        "p.av".into(),
        "--jobs".into(),
        jobs.to_string(),
    ])
    .unwrap();
    drive(&opts, machine, program).unwrap().output
}

/// The tentpole acceptance gate: for every bundled pair, the second
/// pass is all cache hits and every response byte-matches both the
/// cold pass and the one-shot driver, for inner jobs 1, 4, and 0.
#[test]
fn second_pass_is_all_hits_and_byte_identical() {
    let pairs = pairs();
    for jobs in [1usize, 4, 0] {
        let server = Server::new(&ServeConfig::default());
        let reqs = |base: usize| -> Vec<String> {
            pairs
                .iter()
                .enumerate()
                .map(|(i, (_, m, p))| compile_request(base + i, m, p, jobs))
                .collect()
        };
        let cold = session(&server, &reqs(0));
        let warm = session(&server, &reqs(pairs.len()));
        assert_eq!(cold.len(), pairs.len());
        assert_eq!(warm.len(), pairs.len());
        for (i, (label, machine, program)) in pairs.iter().enumerate() {
            let c = &cold[i];
            let w = &warm[i];
            assert_eq!(
                c.get("ok").and_then(Json::as_bool),
                Some(true),
                "{label} jobs={jobs}: {c:?}"
            );
            assert_eq!(
                c.get("complete").and_then(Json::as_bool),
                Some(true),
                "{label} jobs={jobs}"
            );
            // Warm pass: zero misses, every block a hit.
            assert_eq!(
                w.get("cache_misses").and_then(Json::as_u64),
                Some(0),
                "{label} jobs={jobs}: {w:?}"
            );
            assert_eq!(
                w.get("cache_hits").and_then(Json::as_u64),
                w.get("blocks").and_then(Json::as_u64),
                "{label} jobs={jobs}"
            );
            // Byte-identity: warm == cold == one-shot avivc.
            let asm = c.get("asm").and_then(Json::as_str).unwrap();
            assert_eq!(w.get("asm").and_then(Json::as_str), Some(asm), "{label}");
            assert_eq!(
                asm.as_bytes(),
                &oneshot_asm(machine, program, jobs)[..],
                "{label} jobs={jobs}: served bytes differ from one-shot avivc"
            );
        }
        // The stats op agrees that the warm pass was answered from
        // cache: every resident entry was hit at least once.
        let stats = session(&server, &["{\"op\":\"stats\"}".to_string()]);
        let cache = stats[0].get("cache").unwrap();
        let hits = cache.get("hits").and_then(Json::as_u64).unwrap();
        let entries = cache.get("entries").and_then(Json::as_u64).unwrap();
        assert!(hits >= entries, "jobs={jobs}: {stats:?}");
        assert!(entries > 0, "jobs={jobs}");
    }
}

/// The worker pool must not change ordering or bytes, and pooled
/// warm passes stay 100% hits (the passes are separate sessions, so
/// pass 2 never races pass 1).
#[test]
fn pooled_server_matches_sequential_server() {
    let pairs = pairs();
    let reqs = |base: usize| -> Vec<String> {
        pairs
            .iter()
            .enumerate()
            .map(|(i, (_, m, p))| compile_request(base + i, m, p, 1))
            .collect()
    };
    let sequential = Server::new(&ServeConfig::default());
    let cold_expect = session(&sequential, &reqs(0));
    let warm_expect = session(&sequential, &reqs(pairs.len()));

    for workers in [3usize, 0] {
        let pooled = Server::new(&ServeConfig {
            workers,
            ..ServeConfig::default()
        });
        let cold = session(&pooled, &reqs(0));
        let warm = session(&pooled, &reqs(pairs.len()));
        for (got, expect) in cold
            .iter()
            .zip(&cold_expect)
            .chain(warm.iter().zip(&warm_expect))
        {
            assert_eq!(got.get("id"), expect.get("id"), "workers={workers}");
            assert_eq!(got.get("asm"), expect.get("asm"), "workers={workers}");
            assert_eq!(
                got.get("cache_misses"),
                expect.get("cache_misses"),
                "workers={workers}"
            );
        }
    }
}

/// Path-based requests (what the CI smoke job sends) resolve against
/// the filesystem and share cache entries with inline requests for the
/// same content.
#[test]
fn path_requests_share_the_cache_with_inline_requests() {
    let dir = assets_dir();
    let machine_path = dir.join("fig3.isdl");
    let program_path = dir.join("dot4.av");
    let machine = std::fs::read_to_string(&machine_path).unwrap();
    let program = std::fs::read_to_string(&program_path).unwrap();

    let server = Server::new(&ServeConfig::default());
    let by_path = format!(
        "{{\"op\":\"compile\",\"machine_path\":\"{}\",\"program_path\":\"{}\"}}",
        jsonv::escape(machine_path.to_str().unwrap()),
        jsonv::escape(program_path.to_str().unwrap())
    );
    let inline = compile_request(1, &machine, &program, 1);
    let responses = session(&server, &[by_path, inline]);
    assert_eq!(
        responses[0].get("ok").and_then(Json::as_bool),
        Some(true),
        "{:?}",
        responses[0]
    );
    // The inline follow-up hits the entries planted by the path request.
    assert_eq!(
        responses[1].get("cache_misses").and_then(Json::as_u64),
        Some(0),
        "{:?}",
        responses[1]
    );
    assert_eq!(responses[0].get("asm"), responses[1].get("asm"));
}

/// The cache outlives a session: a reconnecting client (modeled as a
/// second `serve` call, which is exactly what `serve_unix` does per
/// connection) starts warm.
#[test]
fn cache_survives_across_sessions() {
    let (label, machine, program) = pairs().remove(0);
    let server = Server::new(&ServeConfig::default());
    let first = session(&server, &[compile_request(0, &machine, &program, 1)]);
    assert!(
        first[0].get("cache_misses").and_then(Json::as_u64).unwrap() > 0,
        "{label}"
    );
    let second = session(&server, &[compile_request(1, &machine, &program, 1)]);
    assert_eq!(
        second[0].get("cache_misses").and_then(Json::as_u64),
        Some(0),
        "{label}"
    );
}

/// End-to-end over an actual Unix socket: two connections, the second
/// one warm, then shutdown stops the listener.
#[cfg(unix)]
#[test]
fn unix_socket_serves_and_shuts_down() {
    use std::io::{BufRead as _, BufReader, Write as _};
    use std::os::unix::net::UnixStream;

    let (_, machine, program) = pairs().remove(0);
    let path = std::env::temp_dir().join(format!("avivd-test-{}.sock", std::process::id()));
    let path_for_server = path.clone();
    let server = std::sync::Arc::new(Server::new(&ServeConfig::default()));
    let server_for_thread = std::sync::Arc::clone(&server);
    let listener =
        std::thread::spawn(move || server_for_thread.serve_unix(&path_for_server).unwrap());

    // The listener needs a moment to bind before the first connect.
    let mut first = None;
    for _ in 0..100 {
        match UnixStream::connect(&path) {
            Ok(s) => {
                first = Some(s);
                break;
            }
            Err(_) => std::thread::sleep(std::time::Duration::from_millis(10)),
        }
    }
    fn request_response(mut s: UnixStream, requests: &[String]) -> Vec<Json> {
        let mut reader = BufReader::new(s.try_clone().unwrap());
        for r in requests {
            writeln!(s, "{r}").unwrap();
        }
        s.shutdown(std::net::Shutdown::Write).unwrap();
        let mut out = Vec::new();
        let mut line = String::new();
        while reader.read_line(&mut line).unwrap() > 0 {
            out.push(jsonv::parse(line.trim_end()).unwrap());
            line.clear();
        }
        out
    }

    let cold = request_response(
        first.expect("listener never bound"),
        &[compile_request(0, &machine, &program, 1)],
    );
    assert_eq!(cold[0].get("ok").and_then(Json::as_bool), Some(true));

    let warm = request_response(
        UnixStream::connect(&path).unwrap(),
        &[
            compile_request(1, &machine, &program, 1),
            "{\"op\":\"shutdown\"}".to_string(),
        ],
    );
    assert_eq!(
        warm[0].get("cache_misses").and_then(Json::as_u64),
        Some(0),
        "{:?}",
        warm[0]
    );
    assert_eq!(cold[0].get("asm"), warm[0].get("asm"));
    assert_eq!(warm[1].get("op").and_then(Json::as_str), Some("shutdown"));

    listener.join().unwrap();
    assert!(!path.exists(), "socket file cleaned up");
}
