//! End-to-end tests of the `avivc` binary itself: real files, real
//! process, real exit codes.

use std::process::Command;

fn avivc() -> Command {
    Command::new(env!("CARGO_BIN_EXE_avivc"))
}

fn write_fixtures(dir: &std::path::Path) -> (String, String) {
    let machine = dir.join("m.isdl");
    let program = dir.join("p.av");
    std::fs::write(
        &machine,
        "machine M {
            unit U1 { ops { add, sub, compl, cmpge } regfile R1[4]; }
            unit U2 { ops { add, mul } regfile R2[4]; }
            memory DM;
            bus DB capacity 1 connects { R1, R2, DM };
        }",
    )
    .unwrap();
    std::fs::write(
        &program,
        "func f(a, b) {
            x = a * b;
            if (x >= 10) goto big;
            x = x + 100;
        big:
            return x;
        }",
    )
    .unwrap();
    (
        machine.to_string_lossy().into_owned(),
        program.to_string_lossy().into_owned(),
    )
}

#[test]
fn compiles_and_prints_assembly() {
    let dir = std::env::temp_dir().join("avivc_test_asm");
    std::fs::create_dir_all(&dir).unwrap();
    let (machine, program) = write_fixtures(&dir);
    let out = avivc()
        .args(["--machine", &machine, &program])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let asm = String::from_utf8_lossy(&out.stdout);
    assert!(asm.contains("mul"), "{asm}");
    assert!(asm.contains("bnz"), "{asm}");
}

#[test]
fn simulates_with_bindings() {
    let dir = std::env::temp_dir().join("avivc_test_sim");
    std::fs::create_dir_all(&dir).unwrap();
    let (machine, program) = write_fixtures(&dir);
    let out = avivc()
        .args(["--machine", &machine, &program, "--simulate", "a=2,b=3"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let report = String::from_utf8_lossy(&out.stderr);
    // 2*3 = 6 < 10, so x = 106.
    assert!(report.contains("return Some(106)"), "{report}");
}

#[test]
fn writes_binary_to_file() {
    let dir = std::env::temp_dir().join("avivc_test_bin");
    std::fs::create_dir_all(&dir).unwrap();
    let (machine, program) = write_fixtures(&dir);
    let bin_path = dir.join("out.bin");
    let out = avivc()
        .args([
            "--machine",
            &machine,
            &program,
            "--emit",
            "bin",
            "-o",
            bin_path.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let bytes = std::fs::read(&bin_path).unwrap();
    assert_eq!(&bytes[..4], b"AVIV");
}

#[test]
fn bad_input_fails_cleanly() {
    let dir = std::env::temp_dir().join("avivc_test_bad");
    std::fs::create_dir_all(&dir).unwrap();
    let (machine, _) = write_fixtures(&dir);
    let bad = dir.join("bad.av");
    std::fs::write(&bad, "func f( { }").unwrap();
    let out = avivc()
        .args(["--machine", &machine, bad.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("program:"));

    // Missing files fail with a message, not a panic.
    let out = avivc()
        .args(["--machine", "/nonexistent.isdl", "/nonexistent.av"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read"));
}

#[test]
fn help_prints_usage() {
    let out = avivc().arg("--help").output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage: avivc"));
}
