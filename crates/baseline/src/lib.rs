//! # aviv-baseline — sequential phase-ordered code generation
//!
//! The comparison point the paper argues against: "most current code
//! generation systems address them sequentially. ... decisions made in
//! one phase have a profound effect on the other phases" (§I-B). This
//! generator runs the classic pipeline:
//!
//! 1. **Instruction selection** — each operation is bound to a functional
//!    unit greedily (least-loaded capable unit), with no knowledge of the
//!    transfers or parallelism that binding implies;
//! 2. **Scheduling** — critical-path list scheduling packs the bound
//!    operations and the now-required transfers into VLIW instructions;
//! 3. **Register allocation** — the same graph coloring as AVIV, with
//!    on-demand spilling when a bank overflows.
//!
//! It reuses AVIV's cover-graph, legality, allocation, and emission
//! machinery so the *only* difference measured is concurrent vs
//! sequential decision-making.

#![warn(missing_docs)]

use aviv::assign::Assignment;
use aviv::cover::{verify_schedule, CoverError, Schedule};
use aviv::covergraph::{CnId, CoverGraph, Operand};
use aviv::peephole::group_legal;
use aviv::regalloc::allocate;
use aviv::{CodegenError, VliwInstruction};
use aviv_ir::{BitSet, BlockDag, MemLayout, SymbolTable};
use aviv_isdl::{Machine, Target};
use aviv_splitdag::{AltKind, Exec, SplitNodeDag};

/// Result of compiling one block with the baseline generator.
#[derive(Debug, Clone)]
pub struct BaselineResult {
    /// The emitted instructions.
    pub instructions: Vec<VliwInstruction>,
    /// Number of VLIW instructions (code size).
    pub size: usize,
    /// Spills inserted.
    pub spills: usize,
}

/// The sequential phase-ordered generator.
///
/// ```
/// use aviv_baseline::BaselineGenerator;
/// use aviv_ir::{parse_function, MemLayout};
/// use aviv_isdl::archs;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let f = parse_function("func f(a, b, c) { x = (a + b) * c; }")?;
/// let generator = BaselineGenerator::new(archs::example_arch(4));
/// let mut syms = f.syms.clone();
/// let mut layout = MemLayout::for_function(&f);
/// let result = generator.compile_block(&f.blocks[0].dag, &mut syms, &mut layout)?;
/// assert!(result.size > 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct BaselineGenerator {
    target: Target,
}

impl BaselineGenerator {
    /// Create a baseline generator for `machine`.
    pub fn new(machine: Machine) -> Self {
        BaselineGenerator {
            target: Target::new(machine),
        }
    }

    /// Create from a prebuilt target.
    pub fn with_target(target: Target) -> Self {
        BaselineGenerator { target }
    }

    /// The target in use.
    pub fn target(&self) -> &Target {
        &self.target
    }

    /// Compile one basic block sequentially.
    ///
    /// # Errors
    ///
    /// Same failure modes as the AVIV pipeline ([`CodegenError`]).
    pub fn compile_block(
        &self,
        dag: &BlockDag,
        syms: &mut SymbolTable,
        layout: &mut MemLayout,
    ) -> Result<BaselineResult, CodegenError> {
        let sndag = SplitNodeDag::build(dag, &self.target)?;

        // Phase 1: greedy least-loaded unit binding, one node at a time,
        // with no transfer or parallelism awareness. Complex alternatives
        // are never considered — classic selectors match tree patterns
        // per-node.
        let mut unit_load = vec![0usize; self.target.machine.units().len()];
        let mut bus_load = vec![0usize; self.target.machine.buses().len()];
        let mut choice: Vec<Option<usize>> = vec![None; dag.len()];
        for (orig, _) in dag.iter() {
            let alts = sndag.alts(orig);
            if alts.is_empty() {
                continue;
            }
            let pick = alts
                .iter()
                .enumerate()
                .filter(|(_, a)| !matches!(a.kind, AltKind::Complex { .. }))
                .min_by_key(|(i, a)| match a.exec {
                    Exec::Unit(u) => (unit_load[u.index()], *i),
                    Exec::MemPort { bus, .. } => (bus_load[bus.index()], *i),
                })
                .map(|(i, _)| i)
                .expect("every op has a non-complex alternative");
            match alts[pick].exec {
                Exec::Unit(u) => unit_load[u.index()] += 1,
                Exec::MemPort { bus, .. } => bus_load[bus.index()] += 1,
            }
            choice[orig.index()] = Some(pick);
        }
        let assignment = Assignment {
            choice,
            complex_covered: vec![false; dag.len()],
            est_cost: 0,
        };

        // Phase 2: transfers materialize, then critical-path list
        // scheduling with the same pressure bound and spill mechanism.
        let mut graph = CoverGraph::build(dag, &sndag, &self.target, &assignment);
        let schedule = match list_schedule(&mut graph, &self.target, syms) {
            Ok(s) => s,
            Err(_) => {
                // Same guaranteed-progress fallback as the AVIV driver.
                graph = CoverGraph::build(dag, &sndag, &self.target, &assignment);
                aviv::cover::cover_sequential(&mut graph, &self.target, syms)
                    .map_err(CodegenError::Cover)?
            }
        };
        debug_assert!(verify_schedule(&graph, &self.target, &schedule).is_ok());

        // Phase 3: detailed allocation and emission (shared with AVIV).
        let alloc = allocate(&graph, &self.target, &schedule).map_err(CodegenError::RegAlloc)?;
        for (sym, _) in syms.iter() {
            if sym.index() >= layout.known_symbols() {
                layout.reserve_slot(sym);
            }
        }
        let instructions =
            aviv::emit::emit_block(&graph, &self.target, &schedule, &alloc, syms, layout)
                .map_err(CodegenError::Internal)?;
        Ok(BaselineResult {
            size: instructions.len(),
            spills: schedule.spills.len(),
            instructions,
        })
    }
}

/// Critical-path list scheduling over the cover graph: at each step, fill
/// one instruction greedily from the ready list in priority order
/// (longest remaining path first), subject to resource legality and the
/// register-pressure bound; spill when stuck.
fn list_schedule(
    graph: &mut CoverGraph,
    target: &Target,
    syms: &mut SymbolTable,
) -> Result<Schedule, CoverError> {
    let mut covered = BitSet::new(graph.len());
    let mut steps: Vec<Vec<CnId>> = Vec::new();
    let mut spills = Vec::new();
    let spill_limit = 4 * graph.len().max(8);

    loop {
        let alive = graph.alive();
        if covered.count() >= alive.len() {
            break;
        }
        // Ready nodes by descending level-from-top (critical path first).
        let mut ready: Vec<CnId> = alive
            .iter()
            .copied()
            .filter(|&n| {
                !covered.contains(n.index())
                    && graph.preds(n).iter().all(|p| covered.contains(p.index()))
            })
            .collect();
        ready.sort_by_key(|&n| (std::cmp::Reverse(graph.level_top(n)), n));

        // Pressure bookkeeping.
        let mut pinned = BitSet::new(graph.len());
        for &(_, op) in graph.live_out() {
            if let Operand::Cn(c) = op {
                pinned.insert(c.index());
            }
        }
        let remaining = |n: CnId, covered: &BitSet| {
            graph
                .uses(n)
                .iter()
                .filter(|u| !covered.contains(u.index()))
                .count()
        };
        let mut pressure = vec![0usize; target.machine.banks().len()];
        for &n in &alive {
            if covered.contains(n.index()) {
                if let Some(b) = graph.node(n).dest_bank(target) {
                    if remaining(n, &covered) > 0 || pinned.contains(n.index()) {
                        pressure[b.index()] += 1;
                    }
                }
            }
        }

        let mut group: Vec<CnId> = Vec::new();
        for &cand in &ready {
            let mut probe = group.clone();
            probe.push(cand);
            if !group_legal(graph, target, &probe) {
                continue;
            }
            // Pressure check for the probe group.
            let mut p = pressure.clone();
            for &n in &alive {
                if !covered.contains(n.index()) || pinned.contains(n.index()) {
                    continue;
                }
                let rem = remaining(n, &covered);
                if rem > 0 {
                    let in_group = graph.uses(n).iter().filter(|u| probe.contains(u)).count();
                    if in_group >= rem {
                        if let Some(b) = graph.node(n).dest_bank(target) {
                            p[b.index()] -= 1;
                        }
                    }
                }
            }
            let mut ok = true;
            for &g in &probe {
                if let Some(b) = graph.node(g).dest_bank(target) {
                    p[b.index()] += 1;
                    if p[b.index()] > target.machine.bank(b).size as usize {
                        ok = false;
                    }
                }
            }
            if ok {
                group = probe;
            }
        }

        if group.is_empty() {
            // Stuck on pressure: spill the least-used live value from the
            // fullest bank (same mechanism as AVIV's engine).
            if spills.len() >= spill_limit {
                return Err(CoverError::SpillLimit);
            }
            // The bank blocking the most ready nodes (falling back to the
            // fullest bank when nothing is directly blocked).
            let mut blocked = vec![0usize; target.machine.banks().len()];
            for &r in &ready {
                if let Some(b) = graph.node(r).dest_bank(target) {
                    if pressure[b.index()] >= target.machine.bank(b).size as usize {
                        blocked[b.index()] += 1;
                    }
                }
            }
            let bank = (0..target.machine.banks().len())
                .max_by_key(|&b| (blocked[b], pressure[b]))
                .map(|b| aviv_isdl::BankId(b as u32))
                .expect("machine has banks");
            // Belady eviction: the value needed farthest in the future
            // (see the covering engine for rationale).
            let victim = alive
                .iter()
                .copied()
                .filter(|&id| {
                    covered.contains(id.index())
                        && !pinned.contains(id.index())
                        && remaining(id, &covered) > 0
                        && graph.node(id).dest_bank(target) == Some(bank)
                })
                .max_by_key(|&id| {
                    let depths: Vec<u32> = graph
                        .uses(id)
                        .iter()
                        .filter(|u| !covered.contains(u.index()))
                        .map(|&u| graph.level_bottom(u))
                        .collect();
                    let min_d = depths.iter().min().copied().unwrap_or(u32::MAX);
                    let max_d = depths.iter().max().copied().unwrap_or(u32::MAX);
                    (min_d, max_d, std::cmp::Reverse(id))
                });
            let Some(victim) = victim else {
                return Err(CoverError::RegisterPressure { bank });
            };
            let (slot, outcome) = graph
                .relieve_pressure(target, syms, victim, &covered)
                .map_err(CoverError::Internal)?;
            covered.grow(graph.len());
            spills.push(aviv::cover::SpillRecord {
                slot,
                victim,
                spill: outcome.spill,
                loads: Vec::new(),
                nodes: outcome.new_nodes,
            });
            continue;
        }

        for &n in &group {
            covered.insert(n.index());
        }
        steps.push(group);
    }
    Ok(Schedule { steps, spills })
}

#[cfg(test)]
mod tests {
    use super::*;
    use aviv::{CodeGenerator, CodegenOptions};
    use aviv_ir::parse_function;
    use aviv_isdl::archs;

    fn both(src: &str, machine: aviv_isdl::Machine) -> (usize, usize) {
        let f = parse_function(src).unwrap();
        let base = BaselineGenerator::new(machine.clone());
        let mut syms = f.syms.clone();
        let mut layout = MemLayout::for_function(&f);
        let b = base
            .compile_block(&f.blocks[0].dag, &mut syms, &mut layout)
            .unwrap();

        let gen = CodeGenerator::new(machine).options(CodegenOptions::heuristics_on());
        let mut syms2 = f.syms.clone();
        let mut layout2 = MemLayout::for_function(&f);
        let a = gen
            .compile_block(&f.blocks[0].dag, &mut syms2, &mut layout2)
            .unwrap();
        (a.report.instructions, b.size)
    }

    #[test]
    fn baseline_compiles_and_aviv_is_no_worse() {
        let srcs = [
            "func f(a, b, c) { t = a + b; u = t * c; v = u - t; out = v; }",
            "func f(a, b, d, e) { out = ~((d * e) - (a + b)); }",
            "func f(a, b, c, d) { x = (a + b) * (c + d); y = x - a; }",
        ];
        for src in srcs {
            let (aviv_size, base_size) = both(src, archs::example_arch(4));
            assert!(aviv_size > 0 && base_size > 0);
            assert!(
                aviv_size <= base_size,
                "{src}: aviv {aviv_size} > baseline {base_size}"
            );
        }
    }

    #[test]
    fn baseline_handles_spills() {
        let src = "func f(a, b, c, d, e, g) {
            t1 = a + b; t2 = c + d; t3 = e + g;
            t4 = t1 * t2; t5 = t4 - t3; out = t5 + t1;
        }";
        let f = parse_function(src).unwrap();
        let base = BaselineGenerator::new(archs::example_arch(2));
        let mut syms = f.syms.clone();
        let mut layout = MemLayout::for_function(&f);
        let r = base
            .compile_block(&f.blocks[0].dag, &mut syms, &mut layout)
            .unwrap();
        assert!(r.size > 0);
    }

    #[test]
    fn baseline_on_reduced_arch() {
        let (a, b) = both(
            "func f(a, b, c) { x = (a - b) * c; y = x + a; }",
            archs::arch_two(4),
        );
        assert!(a <= b);
    }
}
