//! End-to-end differential tests: for each (program, machine, inputs)
//! triple, generated VLIW code simulated on the machine must compute
//! exactly what the reference interpreter computes.

use aviv::CodegenOptions;
use aviv_ir::parse_function;
use aviv_isdl::archs;
use aviv_vm::check_function;

fn check(src: &str, machine: aviv_isdl::Machine, args: &[i64]) {
    let f = parse_function(src).unwrap();
    check_function(&f, machine, CodegenOptions::heuristics_on(), args, &[])
        .unwrap_or_else(|e| panic!("{src}\n-> {e}"));
}

#[test]
fn straight_line_on_example_arch() {
    check(
        "func f(a, b, c) { t = a + b; u = t * c; v = u - t; out = v; }",
        archs::example_arch(4),
        &[3, 4, 5],
    );
}

#[test]
fn fig2_block_with_compl_sink() {
    check(
        "func f(a, b, d, e) { out = ~((d * e) - (a + b)); }",
        archs::example_arch(4),
        &[10, 20, 3, 7],
    );
}

#[test]
fn negative_and_large_values() {
    check(
        "func f(a, b) { x = a * b; y = x - 1000000; z = ~y; }",
        archs::example_arch(4),
        &[-12345, 67890],
    );
}

#[test]
fn spilling_machine_still_correct() {
    let src = "func f(a, b, c, d, e, g) {
        t1 = a + b;
        t2 = c + d;
        t3 = e + g;
        t4 = t1 * t2;
        t5 = t4 - t3;
        out = t5 + t1;
    }";
    check(src, archs::example_arch(2), &[1, 2, 3, 4, 5, 6]);
}

#[test]
fn arch_two_and_dsp_and_chained() {
    let src = "func f(a, b, c) { x = (a - b) * c; y = x + a; }";
    for m in [archs::arch_two(4), archs::dsp_arch(4), archs::wide_arch(4)] {
        check(src, m, &[9, 4, 3]);
    }
    check(
        "func f(a, b) { x = ~(a - b); }",
        archs::chained_arch(4),
        &[100, 42],
    );
}

#[test]
fn mac_fusion_preserves_semantics() {
    check(
        "func f(a, b, c, d, e) { x = a * b + c; y = d * e + x; return y; }",
        archs::dsp_arch(4),
        &[2, 3, 4, 5, 6],
    );
}

#[test]
fn control_flow_loop() {
    let src = "func sum(n) {
        s = 0;
        i = 0;
    head:
        if (i >= n) goto done;
        s = s + i;
        i = i + 1;
        goto head;
    done:
        return s;
    }";
    let f = parse_function(src).unwrap();
    for n in [0i64, 1, 5, 17] {
        check_function(
            &f,
            archs::example_arch(4),
            CodegenOptions::heuristics_on(),
            &[n],
            &[],
        )
        .unwrap_or_else(|e| panic!("n={n}: {e}"));
    }
}

#[test]
fn diamond_control_flow() {
    let src = "func max3(a, b, c) {
        m = a;
        if (b <= m) goto skip1;
        m = b;
    skip1:
        if (c <= m) goto skip2;
        m = c;
    skip2:
        return m;
    }";
    let f = parse_function(src).unwrap();
    for args in [[1, 2, 3], [3, 2, 1], [2, 3, 1], [5, 5, 5]] {
        check_function(
            &f,
            archs::example_arch(4),
            CodegenOptions::heuristics_on(),
            &args,
            &[],
        )
        .unwrap_or_else(|e| panic!("{args:?}: {e}"));
    }
}

#[test]
fn dynamic_memory_ops() {
    let src = "func f(p, v) {
        mem[p] = v;
        x = mem[p] + 1;
        mem[p + 1] = x * 2;
        return x;
    }";
    let f = parse_function(src).unwrap();
    check_function(
        &f,
        archs::example_arch(4),
        CodegenOptions::heuristics_on(),
        &[2048, 7],
        &[],
    )
    .unwrap();
}

#[test]
fn preloaded_dynamic_memory() {
    let src = "func f(p) { a = mem[p]; b = mem[p + 1]; return a * b; }";
    let f = parse_function(src).unwrap();
    check_function(
        &f,
        archs::example_arch(4),
        CodegenOptions::heuristics_on(),
        &[4096],
        &[(4096, 6), (4097, 7)],
    )
    .unwrap();
}

#[test]
fn heuristics_off_also_correct() {
    let src = "func f(a, b, d, e) { out = (d * e) - (a + b); }";
    let f = parse_function(src).unwrap();
    check_function(
        &f,
        archs::example_arch(4),
        CodegenOptions::heuristics_off(),
        &[1, 2, 3, 4],
        &[],
    )
    .unwrap();
}

#[test]
fn unrolled_loop_matches() {
    let src = "func sum(n) {
        s = 0;
        i = 0;
    head:
        s = s + i * i;
        i = i + 1;
        if (i < n) goto head;
        return s;
    }";
    let mut f = parse_function(src).unwrap();
    aviv_ir::opt::unroll_self_loop(&mut f, aviv_ir::BlockId(1), 2).unwrap();
    check_function(
        &f,
        archs::example_arch(4),
        CodegenOptions::heuristics_on(),
        &[8],
        &[],
    )
    .unwrap();
}

#[test]
fn assemble_disassemble_round_trip() {
    let src = "func f(a, b) { x = a * b + 1; if (x > 10) goto big; x = 0 - x; big: return x; }";
    let f = parse_function(src).unwrap();
    let gen = aviv::CodeGenerator::new(archs::example_arch(4));
    let (program, _) = gen.compile_function(&f).unwrap();
    let bytes = aviv_vm::assemble(&program);
    let back = aviv_vm::disassemble(&bytes).unwrap();
    assert_eq!(program, back);

    // The decoded program simulates identically.
    let mut sim1 = aviv_vm::Simulator::new(gen.target(), &program);
    let mut sim2 = aviv_vm::Simulator::new(gen.target(), &back);
    sim1.set_var("a", 5).set_var("b", 9);
    sim2.set_var("a", 5).set_var("b", 9);
    assert_eq!(sim1.run().unwrap(), sim2.run().unwrap());
}

#[test]
fn decoder_rejects_garbage() {
    assert!(aviv_vm::disassemble(b"not a program").is_err());
    assert!(aviv_vm::disassemble(b"AVIV").is_err());
    let f = parse_function("func f(a) { return a; }").unwrap();
    let gen = aviv::CodeGenerator::new(archs::example_arch(4));
    let (program, _) = gen.compile_function(&f).unwrap();
    let mut bytes = aviv_vm::assemble(&program);
    bytes.push(0); // trailing byte
    assert!(aviv_vm::disassemble(&bytes).is_err());
}
