//! Static program statistics: slot utilization, transfer density, and
//! encoded size — the kind of numbers an ASIP designer reads off a
//! candidate datapath (code size is the paper's cost function; ROM bytes
//! are what it ultimately stands for).

use crate::encode::assemble;
use aviv::{ControlOp, VliwProgram};
use aviv_isdl::Target;

/// Utilization breakdown of one program.
#[derive(Debug, Clone, PartialEq)]
pub struct ProgramStats {
    /// Total VLIW instructions.
    pub instructions: usize,
    /// Encoded size in bytes ([`assemble`] output — the debug-friendly
    /// byte format).
    pub code_bytes: usize,
    /// ROM size in bits under the machine-derived packed encoding
    /// ([`crate::packed::encode_packed`]) — the paper's "on-chip ROM"
    /// figure.
    pub rom_bits: usize,
    /// Occupied operation slots per unit, indexed by unit.
    pub unit_slots_used: Vec<usize>,
    /// Transfers carried per bus, indexed by bus.
    pub bus_transfers: Vec<usize>,
    /// Instructions carrying a control operation.
    pub control_ops: usize,
    /// Completely empty instructions (alignment/branch-only artifacts).
    pub nops: usize,
    /// Fraction of unit slots across the whole program that are occupied
    /// (0.0–1.0); the paper's machines waste most slots on transfers, so
    /// this is typically low.
    pub slot_utilization: f64,
}

impl ProgramStats {
    /// Render a short human-readable report.
    pub fn render(&self, target: &Target) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{} instructions, {} bytes (byte format), {} ROM bits (packed), \
             {:.1}% unit-slot utilization\n",
            self.instructions,
            self.code_bytes,
            self.rom_bits,
            self.slot_utilization * 100.0
        ));
        for (ui, &used) in self.unit_slots_used.iter().enumerate() {
            out.push_str(&format!(
                "  unit {:4}: {used}/{} slots\n",
                target.machine.units()[ui].name,
                self.instructions
            ));
        }
        for (bi, &n) in self.bus_transfers.iter().enumerate() {
            out.push_str(&format!(
                "  bus  {:4}: {n} transfers\n",
                target.machine.buses()[bi].name
            ));
        }
        out.push_str(&format!(
            "  control ops: {}, empty instructions: {}\n",
            self.control_ops, self.nops
        ));
        out
    }
}

/// Compute statistics for `program` on `target`.
pub fn program_stats(target: &Target, program: &VliwProgram) -> ProgramStats {
    let n_units = target.machine.units().len();
    let n_buses = target.machine.buses().len();
    let mut unit_slots_used = vec![0usize; n_units];
    let mut bus_transfers = vec![0usize; n_buses];
    let mut control_ops = 0usize;
    let mut nops = 0usize;
    for inst in &program.instructions {
        if inst.is_nop() {
            nops += 1;
        }
        for (ui, slot) in inst.slots.iter().enumerate() {
            if slot.is_some() {
                unit_slots_used[ui] += 1;
            }
        }
        for x in &inst.xfers {
            bus_transfers[x.bus.index()] += 1;
        }
        if matches!(
            inst.control,
            Some(ControlOp::Jump(_) | ControlOp::BranchNz { .. } | ControlOp::Return(_))
        ) {
            control_ops += 1;
        }
    }
    let total_slots = program.instructions.len() * n_units;
    let used: usize = unit_slots_used.iter().sum();
    let rom_bits = crate::packed::encode_packed(target, program).map_or(0, |(_, bits)| bits);
    ProgramStats {
        instructions: program.instructions.len(),
        code_bytes: assemble(program).len(),
        rom_bits,
        unit_slots_used,
        bus_transfers,
        control_ops,
        nops,
        slot_utilization: if total_slots == 0 {
            0.0
        } else {
            used as f64 / total_slots as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aviv::CodeGenerator;
    use aviv_ir::parse_function;
    use aviv_isdl::archs;

    fn stats_for(src: &str) -> (ProgramStats, Target) {
        let f = parse_function(src).unwrap();
        let gen = CodeGenerator::new(archs::example_arch(4));
        let (program, _) = gen.compile_function(&f).unwrap();
        let target = gen.target().clone();
        (program_stats(&target, &program), target)
    }

    #[test]
    fn counts_are_consistent() {
        let (s, target) = stats_for("func f(a, b, c) { x = (a + b) * c; y = x - a; return y; }");
        assert!(s.instructions > 0);
        assert!(s.code_bytes > 0);
        assert_eq!(s.unit_slots_used.len(), target.machine.units().len());
        // Unit ops + transfers both present in this block.
        assert!(s.unit_slots_used.iter().sum::<usize>() >= 3, "{s:?}");
        assert!(s.bus_transfers.iter().sum::<usize>() >= 4, "{s:?}");
        // Exactly one return.
        assert_eq!(s.control_ops, 1);
        assert!(s.slot_utilization > 0.0 && s.slot_utilization <= 1.0);
        let text = s.render(&target);
        assert!(text.contains("instructions") && text.contains("U1"));
    }

    #[test]
    fn single_bus_never_exceeds_capacity_per_instruction() {
        let f =
            parse_function("func f(a, b, c, d) { x = (a + b) * (c - d); y = x + a; return y; }")
                .unwrap();
        let gen = CodeGenerator::new(archs::example_arch(4));
        let (program, _) = gen.compile_function(&f).unwrap();
        for inst in &program.instructions {
            assert!(inst.xfers.len() <= 1, "capacity-1 bus oversubscribed");
        }
    }
}
