//! Cycle-level VLIW instruction-set simulator.
//!
//! The paper's framework (Fig. 1) feeds generated binaries to an
//! instruction-level simulator for hardware–software co-simulation. This
//! simulator executes [`VliwProgram`]s directly with the machine's real
//! resources: one register file per bank, a flat data memory, and VLIW
//! read-before-write semantics — all operand reads of an instruction
//! observe pre-instruction state, which is exactly the assumption the
//! register allocator's half-open live ranges rely on.

use aviv::{AsmOperand, ControlOp, SlotOpcode, TransferKind, VliwProgram};
use aviv_isdl::Target;
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// Simulator failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// Executed `max_cycles` without returning.
    CycleLimit(usize),
    /// A register index exceeded its bank (corrupt program).
    BadRegister {
        /// The cycle where it happened.
        cycle: usize,
    },
    /// A branch target pointed outside the program.
    BadTarget {
        /// The offending target.
        target: usize,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::CycleLimit(n) => write!(f, "exceeded cycle limit {n}"),
            SimError::BadRegister { cycle } => write!(f, "bad register access at cycle {cycle}"),
            SimError::BadTarget { target } => write!(f, "branch target {target} out of range"),
        }
    }
}

impl Error for SimError {}

/// Result of a completed simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimResult {
    /// Final memory contents.
    pub memory: BTreeMap<i64, i64>,
    /// Value carried by the executed `ret`, if any.
    pub return_value: Option<i64>,
    /// Instructions executed.
    pub cycles: usize,
}

/// The simulator. Seed inputs with [`Simulator::set_var`] /
/// [`Simulator::poke`], then [`Simulator::run`].
#[derive(Debug, Clone)]
pub struct Simulator<'p> {
    target: &'p Target,
    program: &'p VliwProgram,
    regs: Vec<Vec<i64>>,
    memory: BTreeMap<i64, i64>,
    max_cycles: usize,
    last_return: Option<i64>,
}

impl<'p> Simulator<'p> {
    /// Create a simulator for `program` on `target`.
    pub fn new(target: &'p Target, program: &'p VliwProgram) -> Self {
        let regs = target
            .machine
            .banks()
            .iter()
            .map(|b| vec![0i64; b.size as usize])
            .collect();
        Simulator {
            target,
            program,
            regs,
            memory: BTreeMap::new(),
            max_cycles: 1_000_000,
            last_return: None,
        }
    }

    /// Bound the number of executed instructions (default 1e6).
    pub fn max_cycles(&mut self, n: usize) -> &mut Self {
        self.max_cycles = n;
        self
    }

    /// Preload a named variable (by the program's symbol table).
    ///
    /// # Panics
    ///
    /// Panics when the program has no variable of that name.
    pub fn set_var(&mut self, name: &str, value: i64) -> &mut Self {
        let addr = self
            .program
            .var_addrs
            .iter()
            .find(|(n, _)| n == name)
            .unwrap_or_else(|| panic!("unknown variable {name}"))
            .1;
        self.memory.insert(addr, value);
        self
    }

    /// Preload an arbitrary memory word.
    pub fn poke(&mut self, addr: i64, value: i64) -> &mut Self {
        self.memory.insert(addr, value);
        self
    }

    /// Read a named variable's current value.
    pub fn read_var(&self, name: &str) -> Option<i64> {
        let addr = self.program.var_addrs.iter().find(|(n, _)| n == name)?.1;
        self.memory.get(&addr).copied()
    }

    fn read_reg(&self, r: aviv::Reg) -> Result<i64, SimError> {
        self.regs
            .get(r.bank.index())
            .and_then(|bank| bank.get(r.index as usize))
            .copied()
            .ok_or(SimError::BadRegister { cycle: 0 })
    }

    fn read_operand(&self, a: &AsmOperand) -> Result<i64, SimError> {
        match a {
            AsmOperand::Imm(v) => Ok(*v),
            AsmOperand::Reg(r) => self.read_reg(*r),
        }
    }

    /// Execute until a `ret` or falling off the end.
    ///
    /// # Errors
    ///
    /// See [`SimError`].
    pub fn run(&mut self) -> Result<SimResult, SimError> {
        let mut pc = 0usize;
        let mut cycles = 0usize;
        while pc < self.program.instructions.len() {
            cycles += 1;
            if cycles > self.max_cycles {
                return Err(SimError::CycleLimit(self.max_cycles));
            }
            let (next, done) = self.step(pc)?;
            if done {
                return Ok(SimResult {
                    memory: self.memory.clone(),
                    return_value: self.last_return,
                    cycles,
                });
            }
            pc = next;
        }
        Ok(SimResult {
            memory: self.memory.clone(),
            return_value: None,
            cycles,
        })
    }

    /// Execute exactly one instruction at `pc`; returns `(next_pc, done)`
    /// where `done` means a `ret` executed (its value is available via
    /// [`Simulator::last_return_value`]). Falling off the end counts as
    /// done with no value.
    ///
    /// # Errors
    ///
    /// See [`SimError`].
    pub fn step(&mut self, pc: usize) -> Result<(usize, bool), SimError> {
        if pc >= self.program.instructions.len() {
            self.last_return = None;
            return Ok((pc, true));
        }
        {
            let inst = &self.program.instructions[pc];

            // Read phase: latch every source before any write commits.
            enum Write {
                Reg(aviv::Reg, i64),
                Mem(i64, i64),
            }
            let mut writes: Vec<Write> = Vec::new();
            for slot in inst.slots.iter().flatten() {
                let args: Result<Vec<i64>, SimError> =
                    slot.args.iter().map(|a| self.read_operand(a)).collect();
                let args = args?;
                let value = match slot.opcode {
                    SlotOpcode::Basic(op) => op.eval(&args),
                    SlotOpcode::Complex(ci) => {
                        self.target.machine.complexes()[ci].pattern.eval(&args)
                    }
                };
                writes.push(Write::Reg(slot.dst, value));
            }
            for x in &inst.xfers {
                match &x.kind {
                    TransferKind::Move { from, to } => {
                        writes.push(Write::Reg(*to, self.read_reg(*from)?));
                    }
                    TransferKind::LoadVar { addr, to, .. } => {
                        let v = self.memory.get(addr).copied().unwrap_or(0);
                        writes.push(Write::Reg(*to, v));
                    }
                    TransferKind::StoreVar { value, addr, .. } => {
                        writes.push(Write::Mem(*addr, self.read_operand(value)?));
                    }
                    TransferKind::LoadDyn { addr, to } => {
                        let a = self.read_reg(*addr)?;
                        let v = self.memory.get(&a).copied().unwrap_or(0);
                        writes.push(Write::Reg(*to, v));
                    }
                    TransferKind::StoreDyn { addr, value } => {
                        let a = self.read_reg(*addr)?;
                        writes.push(Write::Mem(a, self.read_reg(*value)?));
                    }
                }
            }
            // Control decision also reads pre-write state.
            let mut next_pc = pc + 1;
            let mut returned: Option<Option<i64>> = None;
            match &inst.control {
                None => {}
                Some(ControlOp::Jump(t)) => next_pc = *t,
                Some(ControlOp::BranchNz { cond, target }) if self.read_operand(cond)? != 0 => {
                    next_pc = *target;
                }
                Some(ControlOp::BranchNz { .. }) => {}
                Some(ControlOp::Return(v)) => {
                    let val = match v {
                        None => None,
                        Some(op) => Some(self.read_operand(op)?),
                    };
                    returned = Some(val);
                }
            }

            // Write phase.
            for w in writes {
                match w {
                    Write::Reg(r, v) => {
                        let bank = self
                            .regs
                            .get_mut(r.bank.index())
                            .ok_or(SimError::BadRegister { cycle: pc })?;
                        let cell = bank
                            .get_mut(r.index as usize)
                            .ok_or(SimError::BadRegister { cycle: pc })?;
                        *cell = v;
                    }
                    Write::Mem(a, v) => {
                        self.memory.insert(a, v);
                    }
                }
            }

            if let Some(val) = returned {
                self.last_return = val;
                return Ok((next_pc, true));
            }
            if next_pc > self.program.instructions.len() {
                return Err(SimError::BadTarget { target: next_pc });
            }
            if next_pc == self.program.instructions.len() {
                self.last_return = None;
                return Ok((next_pc, true));
            }
            Ok((next_pc, false))
        }
    }

    /// The value of the most recently executed `ret` (for steppers).
    pub fn last_return_value(&self) -> Option<i64> {
        self.last_return
    }

    /// Snapshot of every register bank.
    pub fn registers_snapshot(&self) -> Vec<Vec<i64>> {
        self.regs.clone()
    }

    /// Snapshot of memory.
    pub fn memory_snapshot(&self) -> BTreeMap<i64, i64> {
        self.memory.clone()
    }
}
