//! # aviv-vm — assembler and VLIW simulator
//!
//! The downstream half of the paper's framework (Fig. 1): an assembler
//! that turns generated code into binaries, and an instruction-level
//! simulator that executes them against the machine's real resources.
//! Together with the `aviv-ir` interpreter this closes the differential-
//! testing loop: compiled code must compute exactly what the source
//! program computes.
//!
//! ```
//! use aviv::CodeGenerator;
//! use aviv_ir::parse_function;
//! use aviv_isdl::archs;
//! use aviv_vm::Simulator;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let f = parse_function("func f(a, b) { x = a * b + 1; return x; }")?;
//! let gen = CodeGenerator::new(archs::example_arch(4));
//! let (program, _) = gen.compile_function(&f)?;
//! let mut sim = Simulator::new(gen.target(), &program);
//! sim.set_var("a", 6).set_var("b", 7);
//! assert_eq!(sim.run()?.return_value, Some(43));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod diff;
pub mod encode;
pub mod packed;
pub mod sim;
pub mod stats;
pub mod trace;

pub use diff::{check_function, DiffError};
pub use encode::{assemble, disassemble, DecodeError};
pub use packed::{decode_packed, encode_packed, PackedError};
pub use sim::{SimError, SimResult, Simulator};
pub use stats::{program_stats, ProgramStats};
pub use trace::{run_traced, ExecutionTrace, TraceEntry};
