//! Assembler: [`VliwProgram`] ⇄ binary.
//!
//! The paper's framework generates an assembler from the ISDL description
//! that "transforms the code produced by the compiler to a binary file
//! that is used as input to an instruction-level simulator" (§II). This
//! module provides that step: a compact byte encoding with a loader that
//! reconstructs the exact program (round-trip tested). Immediates are
//! stored at full width; a production encoding would constrain field
//! widths per the machine description.

use aviv::{
    AsmOperand, ControlOp, Reg, SlotOp, SlotOpcode, TransferKind, TransferOp, VliwInstruction,
    VliwProgram,
};
use aviv_ir::Op;
use aviv_isdl::{BankId, BusId};
use std::error::Error;
use std::fmt;

const MAGIC: &[u8; 4] = b"AVIV";
const VERSION: u8 = 1;

/// Every operation with a stable binary opcode (index in this table).
const OPS: [Op; 26] = [
    Op::Const,
    Op::Input,
    Op::Add,
    Op::Sub,
    Op::Mul,
    Op::Div,
    Op::And,
    Op::Or,
    Op::Xor,
    Op::Shl,
    Op::Shr,
    Op::Neg,
    Op::Compl,
    Op::Abs,
    Op::Min,
    Op::Max,
    Op::Mac,
    Op::Load,
    Op::Store,
    Op::StoreVar,
    Op::CmpEq,
    Op::CmpNe,
    Op::CmpLt,
    Op::CmpLe,
    Op::CmpGt,
    Op::CmpGe,
];

/// Decoding failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError {
    /// What went wrong.
    pub msg: String,
    /// Byte offset of the failure.
    pub offset: usize,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "decode error at byte {}: {}", self.offset, self.msg)
    }
}

impl Error for DecodeError {}

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn str(&mut self, s: &str) {
        let b = s.as_bytes();
        self.u16(b.len() as u16);
        self.buf.extend_from_slice(b);
    }
    fn reg(&mut self, r: Reg) {
        self.u8(r.bank.0 as u8);
        self.u8(r.index as u8);
    }
    fn operand(&mut self, a: &AsmOperand) {
        match a {
            AsmOperand::Reg(r) => {
                self.u8(0);
                self.reg(*r);
            }
            AsmOperand::Imm(v) => {
                self.u8(1);
                self.i64(*v);
            }
        }
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn err(&self, msg: impl Into<String>) -> DecodeError {
        DecodeError {
            msg: msg.into(),
            offset: self.pos,
        }
    }
    fn bytes(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.pos + n > self.buf.len() {
            return Err(self.err("unexpected end of input"));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.bytes(1)?[0])
    }
    fn u16(&mut self) -> Result<u16, DecodeError> {
        Ok(u16::from_le_bytes(self.bytes(2)?.try_into().unwrap()))
    }
    fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(self.bytes(4)?.try_into().unwrap()))
    }
    fn i64(&mut self) -> Result<i64, DecodeError> {
        Ok(i64::from_le_bytes(self.bytes(8)?.try_into().unwrap()))
    }
    fn str(&mut self) -> Result<String, DecodeError> {
        let n = self.u16()? as usize;
        let b = self.bytes(n)?;
        String::from_utf8(b.to_vec()).map_err(|_| self.err("invalid UTF-8"))
    }
    fn reg(&mut self) -> Result<Reg, DecodeError> {
        let bank = BankId(self.u8()? as u32);
        let index = self.u8()? as u32;
        Ok(Reg { bank, index })
    }
    fn operand(&mut self) -> Result<AsmOperand, DecodeError> {
        match self.u8()? {
            0 => Ok(AsmOperand::Reg(self.reg()?)),
            1 => Ok(AsmOperand::Imm(self.i64()?)),
            t => Err(self.err(format!("bad operand tag {t}"))),
        }
    }
}

/// Assemble a program to binary.
pub fn assemble(program: &VliwProgram) -> Vec<u8> {
    let mut w = Writer { buf: Vec::new() };
    w.buf.extend_from_slice(MAGIC);
    w.u8(VERSION);
    w.str(&program.machine_name);
    w.u16(program.var_addrs.len() as u16);
    for (name, addr) in &program.var_addrs {
        w.str(name);
        w.i64(*addr);
    }
    w.u16(program.block_starts.len() as u16);
    for &b in &program.block_starts {
        w.u32(b as u32);
    }
    w.u32(program.instructions.len() as u32);
    for inst in &program.instructions {
        w.u8(inst.slots.len() as u8);
        for slot in &inst.slots {
            match slot {
                None => w.u8(0),
                Some(s) => {
                    match s.opcode {
                        SlotOpcode::Basic(op) => {
                            w.u8(1);
                            let code = OPS
                                .iter()
                                .position(|&o| o == op)
                                .expect("every op has a code");
                            w.u8(code as u8);
                        }
                        SlotOpcode::Complex(ci) => {
                            w.u8(2);
                            w.u8(ci as u8);
                        }
                    }
                    w.reg(s.dst);
                    w.u8(s.args.len() as u8);
                    for a in &s.args {
                        w.operand(a);
                    }
                }
            }
        }
        w.u8(inst.xfers.len() as u8);
        for x in &inst.xfers {
            w.u8(x.bus.0 as u8);
            match &x.kind {
                TransferKind::Move { from, to } => {
                    w.u8(0);
                    w.reg(*from);
                    w.reg(*to);
                }
                TransferKind::LoadVar { addr, name, to } => {
                    w.u8(1);
                    w.i64(*addr);
                    w.str(name);
                    w.reg(*to);
                }
                TransferKind::StoreVar { value, addr, name } => {
                    w.u8(2);
                    w.operand(value);
                    w.i64(*addr);
                    w.str(name);
                }
                TransferKind::LoadDyn { addr, to } => {
                    w.u8(3);
                    w.reg(*addr);
                    w.reg(*to);
                }
                TransferKind::StoreDyn { addr, value } => {
                    w.u8(4);
                    w.reg(*addr);
                    w.reg(*value);
                }
            }
        }
        match &inst.control {
            None => w.u8(0),
            Some(ControlOp::Jump(t)) => {
                w.u8(1);
                w.u32(*t as u32);
            }
            Some(ControlOp::BranchNz { cond, target }) => {
                w.u8(2);
                w.operand(cond);
                w.u32(*target as u32);
            }
            Some(ControlOp::Return(v)) => {
                w.u8(3);
                match v {
                    None => w.u8(0),
                    Some(op) => {
                        w.u8(1);
                        w.operand(op);
                    }
                }
            }
        }
    }
    w.buf
}

/// Load a binary back into a program.
///
/// # Errors
///
/// Returns [`DecodeError`] on any malformed input.
pub fn disassemble(bytes: &[u8]) -> Result<VliwProgram, DecodeError> {
    let mut r = Reader { buf: bytes, pos: 0 };
    if r.bytes(4)? != MAGIC {
        return Err(r.err("bad magic"));
    }
    if r.u8()? != VERSION {
        return Err(r.err("unsupported version"));
    }
    let machine_name = r.str()?;
    let n_vars = r.u16()? as usize;
    let mut var_addrs = Vec::with_capacity(n_vars);
    for _ in 0..n_vars {
        let name = r.str()?;
        let addr = r.i64()?;
        var_addrs.push((name, addr));
    }
    let n_blocks = r.u16()? as usize;
    let mut block_starts = Vec::with_capacity(n_blocks);
    for _ in 0..n_blocks {
        block_starts.push(r.u32()? as usize);
    }
    let n_inst = r.u32()? as usize;
    let mut instructions = Vec::with_capacity(n_inst);
    for _ in 0..n_inst {
        let n_slots = r.u8()? as usize;
        let mut slots = Vec::with_capacity(n_slots);
        for _ in 0..n_slots {
            let tag = r.u8()?;
            if tag == 0 {
                slots.push(None);
                continue;
            }
            let opcode = match tag {
                1 => {
                    let code = r.u8()? as usize;
                    let op = *OPS
                        .get(code)
                        .ok_or_else(|| r.err(format!("bad opcode {code}")))?;
                    SlotOpcode::Basic(op)
                }
                2 => SlotOpcode::Complex(r.u8()? as usize),
                t => return Err(r.err(format!("bad slot tag {t}"))),
            };
            let dst = r.reg()?;
            let n_args = r.u8()? as usize;
            let mut args = Vec::with_capacity(n_args);
            for _ in 0..n_args {
                args.push(r.operand()?);
            }
            slots.push(Some(SlotOp { opcode, dst, args }));
        }
        let n_xfers = r.u8()? as usize;
        let mut xfers = Vec::with_capacity(n_xfers);
        for _ in 0..n_xfers {
            let bus = BusId(r.u8()? as u32);
            let kind = match r.u8()? {
                0 => TransferKind::Move {
                    from: r.reg()?,
                    to: r.reg()?,
                },
                1 => TransferKind::LoadVar {
                    addr: r.i64()?,
                    name: r.str()?,
                    to: r.reg()?,
                },
                2 => TransferKind::StoreVar {
                    value: r.operand()?,
                    addr: r.i64()?,
                    name: r.str()?,
                },
                3 => TransferKind::LoadDyn {
                    addr: r.reg()?,
                    to: r.reg()?,
                },
                4 => TransferKind::StoreDyn {
                    addr: r.reg()?,
                    value: r.reg()?,
                },
                t => return Err(r.err(format!("bad transfer tag {t}"))),
            };
            xfers.push(TransferOp { bus, kind });
        }
        let control = match r.u8()? {
            0 => None,
            1 => Some(ControlOp::Jump(r.u32()? as usize)),
            2 => Some(ControlOp::BranchNz {
                cond: r.operand()?,
                target: r.u32()? as usize,
            }),
            3 => {
                let has = r.u8()?;
                let v = if has == 1 { Some(r.operand()?) } else { None };
                Some(ControlOp::Return(v))
            }
            t => return Err(r.err(format!("bad control tag {t}"))),
        };
        instructions.push(VliwInstruction {
            slots,
            xfers,
            control,
        });
    }
    if r.pos != bytes.len() {
        return Err(r.err("trailing bytes"));
    }
    Ok(VliwProgram {
        machine_name,
        instructions,
        block_starts,
        var_addrs,
    })
}
