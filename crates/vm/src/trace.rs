//! Execution tracing: a cycle-by-cycle record of what the simulator did,
//! for debugging generated code and for test assertions about dynamic
//! behavior (taken branches, memory traffic, per-unit activity).

use crate::sim::{SimError, Simulator};
use aviv::{Reg, VliwProgram};
use aviv_isdl::Target;
use std::collections::BTreeMap;

/// One executed instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEntry {
    /// Program counter of the instruction.
    pub pc: usize,
    /// Register writes committed this cycle.
    pub reg_writes: Vec<(Reg, i64)>,
    /// Memory writes committed this cycle.
    pub mem_writes: Vec<(i64, i64)>,
    /// Whether a control transfer left sequential flow.
    pub branched: bool,
}

/// A full execution trace.
#[derive(Debug, Clone, Default)]
pub struct ExecutionTrace {
    /// One entry per executed instruction, in order.
    pub entries: Vec<TraceEntry>,
}

impl ExecutionTrace {
    /// Number of executed instructions.
    pub fn cycles(&self) -> usize {
        self.entries.len()
    }

    /// Number of taken control transfers.
    pub fn branches_taken(&self) -> usize {
        self.entries.iter().filter(|e| e.branched).count()
    }

    /// Total memory writes.
    pub fn mem_writes(&self) -> usize {
        self.entries.iter().map(|e| e.mem_writes.len()).sum()
    }

    /// Render the first `limit` entries as text.
    pub fn render(&self, limit: usize) -> String {
        let mut out = String::new();
        for e in self.entries.iter().take(limit) {
            let regs: Vec<String> = e
                .reg_writes
                .iter()
                .map(|(r, v)| format!("{r}={v}"))
                .collect();
            let mems: Vec<String> = e
                .mem_writes
                .iter()
                .map(|(a, v)| format!("[{a}]={v}"))
                .collect();
            out.push_str(&format!(
                "pc {:4}: {} {}{}\n",
                e.pc,
                regs.join(" "),
                mems.join(" "),
                if e.branched { "  <branch>" } else { "" }
            ));
        }
        if self.entries.len() > limit {
            out.push_str(&format!("... {} more cycles\n", self.entries.len() - limit));
        }
        out
    }
}

/// Run `program` with tracing: executes instruction by instruction,
/// diffing architectural state to record writes.
///
/// # Errors
///
/// Propagates simulator faults ([`SimError`]).
pub fn run_traced(
    target: &Target,
    program: &VliwProgram,
    inputs: &[(&str, i64)],
    mem: &[(i64, i64)],
) -> Result<(ExecutionTrace, crate::sim::SimResult), SimError> {
    // Strategy: single-step by running the simulator with increasing
    // cycle budgets would be quadratic; instead replicate the publicly
    // observable effects by diffing memory and registers after each step
    // using the step-limited runner below.
    let mut stepper = Stepper::new(target, program);
    for &(name, v) in inputs {
        stepper.sim.set_var(name, v);
    }
    for &(a, v) in mem {
        stepper.sim.poke(a, v);
    }
    stepper.run()
}

/// Internal single-stepping wrapper. The simulator itself is optimized
/// for straight runs; the stepper re-executes with snapshots.
struct Stepper<'p> {
    sim: Simulator<'p>,
    target: &'p Target,
}

impl<'p> Stepper<'p> {
    fn new(target: &'p Target, program: &'p VliwProgram) -> Self {
        Stepper {
            sim: Simulator::new(target, program),
            target,
        }
    }

    fn run(&mut self) -> Result<(ExecutionTrace, crate::sim::SimResult), SimError> {
        let mut trace = ExecutionTrace::default();
        let mut pc = 0usize;
        let mut prev_regs: Vec<Vec<i64>> = self
            .target
            .machine
            .banks()
            .iter()
            .map(|b| vec![0i64; b.size as usize])
            .collect();
        let mut prev_mem: BTreeMap<i64, i64> = self.sim.memory_snapshot();
        loop {
            let (next_pc, done) = self.sim.step(pc)?;
            // Diff registers.
            let regs = self.sim.registers_snapshot();
            let mut reg_writes = Vec::new();
            for (bi, bank) in regs.iter().enumerate() {
                for (ri, &v) in bank.iter().enumerate() {
                    if prev_regs[bi][ri] != v {
                        reg_writes.push((
                            Reg {
                                bank: aviv_isdl::BankId(bi as u32),
                                index: ri as u32,
                            },
                            v,
                        ));
                    }
                }
            }
            let mem = self.sim.memory_snapshot();
            let mut mem_writes = Vec::new();
            for (&a, &v) in &mem {
                if prev_mem.get(&a) != Some(&v) {
                    mem_writes.push((a, v));
                }
            }
            trace.entries.push(TraceEntry {
                pc,
                reg_writes,
                mem_writes,
                branched: !done && next_pc != pc + 1,
            });
            prev_regs = regs;
            prev_mem = mem;
            if done {
                let result = crate::sim::SimResult {
                    memory: self.sim.memory_snapshot(),
                    return_value: self.sim.last_return_value(),
                    cycles: trace.entries.len(),
                };
                return Ok((trace, result));
            }
            if trace.entries.len() > 1_000_000 {
                return Err(SimError::CycleLimit(1_000_000));
            }
            pc = next_pc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aviv::CodeGenerator;
    use aviv_ir::parse_function;
    use aviv_isdl::archs;

    #[test]
    fn trace_matches_plain_run() {
        let f = parse_function(
            "func f(a, n) {
                s = 0;
                i = 0;
            head:
                if (i >= n) goto done;
                s = s + a;
                i = i + 1;
                goto head;
            done:
                return s;
            }",
        )
        .unwrap();
        let gen = CodeGenerator::new(archs::example_arch(4));
        let (program, _) = gen.compile_function(&f).unwrap();

        let (trace, tresult) =
            run_traced(gen.target(), &program, &[("a", 7), ("n", 3)], &[]).unwrap();
        let mut sim = Simulator::new(gen.target(), &program);
        sim.set_var("a", 7).set_var("n", 3);
        let plain = sim.run().unwrap();

        assert_eq!(tresult.return_value, plain.return_value);
        assert_eq!(tresult.return_value, Some(21));
        assert_eq!(trace.cycles(), plain.cycles);
        // The loop branches back twice plus the exit branch and jumps.
        assert!(trace.branches_taken() >= 3, "{}", trace.branches_taken());
        assert!(trace.mem_writes() >= 2, "s and i written back");
        let text = trace.render(5);
        assert!(text.contains("pc"));
    }

    #[test]
    fn straight_line_trace_has_no_branches() {
        let f = parse_function("func f(a, b) { x = a * b; }").unwrap();
        let gen = CodeGenerator::new(archs::example_arch(4));
        let (program, _) = gen.compile_function(&f).unwrap();
        let (trace, _) = run_traced(gen.target(), &program, &[("a", 2), ("b", 3)], &[]).unwrap();
        assert_eq!(trace.branches_taken(), 0);
    }
}
