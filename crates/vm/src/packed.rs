//! Bit-packed instruction encoding.
//!
//! The paper optimizes code size because "the size of the on-chip ROM is
//! a critical issue". Instruction *count* is its proxy; this module
//! provides the real thing: a bit-level encoding whose field widths are
//! derived from the machine description (as an ISDL-generated assembler
//! would derive them), giving an honest ROM-bits figure for a program on
//! a machine. Round-trips losslessly through [`decode_packed`].
//!
//! Layout per instruction (all widths machine-derived):
//!
//! * per unit: an opcode field (`0` = nop, then the unit's ops, then the
//!   machine's complex instructions), a destination register, and one
//!   operand per opcode arity (1 tag bit + register or immediate);
//! * a transfer count, then per transfer: kind (3 bits), bus, and the
//!   kind's registers/addresses;
//! * a control tag (2 bits) plus target/operand.
//!
//! Immediates and addresses use an escape: 12-bit signed fast path, or a
//! full 64-bit value.

use aviv::{
    AsmOperand, ControlOp, Reg, SlotOp, SlotOpcode, TransferKind, TransferOp, VliwInstruction,
    VliwProgram,
};
use aviv_isdl::{BankId, BusId, Target, UnitId};
use std::fmt;

/// Packed-encoding failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackedError {
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for PackedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "packed encoding error: {}", self.msg)
    }
}

impl std::error::Error for PackedError {}

struct BitWriter {
    bytes: Vec<u8>,
    bit: u32,
}

impl BitWriter {
    fn new() -> Self {
        BitWriter {
            bytes: Vec::new(),
            bit: 0,
        }
    }

    fn push(&mut self, value: u64, width: u32) {
        debug_assert!(width <= 64);
        debug_assert!(
            width == 64 || value < (1u64 << width),
            "{value} !< 2^{width}"
        );
        for i in 0..width {
            let b = (value >> i) & 1;
            if self.bit == 0 {
                self.bytes.push(0);
            }
            let last = self.bytes.len() - 1;
            self.bytes[last] |= (b as u8) << self.bit;
            self.bit = (self.bit + 1) % 8;
        }
    }

    fn finish(self) -> Vec<u8> {
        self.bytes
    }

    fn bit_len(&self) -> usize {
        if self.bytes.is_empty() {
            0
        } else {
            (self.bytes.len() - 1) * 8 + if self.bit == 0 { 8 } else { self.bit as usize }
        }
    }
}

struct BitReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> BitReader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        BitReader { bytes, pos: 0 }
    }

    fn pull(&mut self, width: u32) -> Result<u64, PackedError> {
        let mut v = 0u64;
        for i in 0..width {
            let byte = self.pos / 8;
            let bit = self.pos % 8;
            let b = self.bytes.get(byte).ok_or_else(|| PackedError {
                msg: "unexpected end of bitstream".into(),
            })?;
            v |= (((b >> bit) & 1) as u64) << i;
            self.pos += 1;
        }
        Ok(v)
    }
}

/// Minimum bits to represent values `0..n` (at least 1).
fn width_for(n: usize) -> u32 {
    let mut w = 1;
    while (1usize << w) < n {
        w += 1;
    }
    w
}

/// Field widths derived from the machine description.
struct Layout {
    /// Opcode width per unit (0 = nop, 1.. = unit ops, then complexes).
    opcode_w: Vec<u32>,
    /// Register-index width per bank.
    reg_w: Vec<u32>,
    /// Bank-id width.
    bank_w: u32,
    /// Bus-id width.
    bus_w: u32,
    /// Transfer-count width.
    xfer_count_w: u32,
}

impl Layout {
    fn new(target: &Target) -> Layout {
        let m = &target.machine;
        let opcode_w = m
            .units()
            .iter()
            .map(|u| width_for(1 + u.ops.len() + m.complexes().len()))
            .collect();
        let reg_w = m
            .banks()
            .iter()
            .map(|b| width_for(b.size as usize))
            .collect();
        let bank_w = width_for(m.banks().len());
        let bus_w = width_for(m.buses().len());
        let max_xfers: u32 = m.buses().iter().map(|b| b.capacity).sum();
        Layout {
            opcode_w,
            reg_w,
            bank_w,
            bus_w,
            xfer_count_w: width_for(max_xfers as usize + 1),
        }
    }
}

const IMM_FAST_BITS: u32 = 12;

fn push_imm(w: &mut BitWriter, v: i64) {
    let fits = (-(1i64 << (IMM_FAST_BITS - 1))..(1 << (IMM_FAST_BITS - 1))).contains(&v);
    if fits {
        w.push(0, 1);
        w.push((v as u64) & ((1 << IMM_FAST_BITS) - 1), IMM_FAST_BITS);
    } else {
        w.push(1, 1);
        w.push(v as u64, 64);
    }
}

fn pull_imm(r: &mut BitReader) -> Result<i64, PackedError> {
    if r.pull(1)? == 0 {
        let raw = r.pull(IMM_FAST_BITS)?;
        // Sign-extend.
        let shift = 64 - IMM_FAST_BITS;
        Ok(((raw << shift) as i64) >> shift)
    } else {
        Ok(r.pull(64)? as i64)
    }
}

fn push_reg(w: &mut BitWriter, layout: &Layout, r: Reg) {
    w.push(r.bank.0 as u64, layout.bank_w);
    w.push(r.index as u64, layout.reg_w[r.bank.index()]);
}

fn pull_reg(r: &mut BitReader, layout: &Layout) -> Result<Reg, PackedError> {
    let bank = BankId(r.pull(layout.bank_w)? as u32);
    let idx_w = *layout.reg_w.get(bank.index()).ok_or_else(|| PackedError {
        msg: format!("bad bank {bank}"),
    })?;
    let index = r.pull(idx_w)? as u32;
    Ok(Reg { bank, index })
}

fn push_operand(w: &mut BitWriter, layout: &Layout, a: &AsmOperand) {
    match a {
        AsmOperand::Reg(reg) => {
            w.push(0, 1);
            push_reg(w, layout, *reg);
        }
        AsmOperand::Imm(v) => {
            w.push(1, 1);
            push_imm(w, *v);
        }
    }
}

fn pull_operand(r: &mut BitReader, layout: &Layout) -> Result<AsmOperand, PackedError> {
    if r.pull(1)? == 0 {
        Ok(AsmOperand::Reg(pull_reg(r, layout)?))
    } else {
        Ok(AsmOperand::Imm(pull_imm(r)?))
    }
}

/// Encode the instruction stream of `program` as a packed bitstream;
/// returns the bytes and the exact bit length.
///
/// # Errors
///
/// Fails when an instruction does not fit the machine (e.g. a slot op the
/// unit cannot perform) — impossible for generator output, checked for
/// robustness.
pub fn encode_packed(
    target: &Target,
    program: &VliwProgram,
) -> Result<(Vec<u8>, usize), PackedError> {
    let layout = Layout::new(target);
    let m = &target.machine;
    let mut w = BitWriter::new();
    for inst in &program.instructions {
        // Unit slots.
        for (ui, slot) in inst.slots.iter().enumerate() {
            let unit = &m.units()[ui];
            match slot {
                None => w.push(0, layout.opcode_w[ui]),
                Some(s) => {
                    let (code, arity) = match s.opcode {
                        SlotOpcode::Basic(op) => {
                            let pos =
                                unit.ops.iter().position(|c| c.op == op).ok_or_else(|| {
                                    PackedError {
                                        msg: format!("unit {} cannot {op}", unit.name),
                                    }
                                })?;
                            (1 + pos as u64, op.arity())
                        }
                        SlotOpcode::Complex(ci) => (
                            1 + unit.ops.len() as u64 + ci as u64,
                            m.complexes()[ci].pattern.arg_count(),
                        ),
                    };
                    w.push(code, layout.opcode_w[ui]);
                    push_reg(&mut w, &layout, s.dst);
                    if s.args.len() != arity {
                        return Err(PackedError {
                            msg: format!("arity mismatch in slot {}", unit.name),
                        });
                    }
                    for a in &s.args {
                        push_operand(&mut w, &layout, a);
                    }
                }
            }
        }
        // Transfers.
        w.push(inst.xfers.len() as u64, layout.xfer_count_w);
        for x in &inst.xfers {
            w.push(x.bus.0 as u64, layout.bus_w);
            match &x.kind {
                TransferKind::Move { from, to } => {
                    w.push(0, 3);
                    push_reg(&mut w, &layout, *from);
                    push_reg(&mut w, &layout, *to);
                }
                TransferKind::LoadVar { addr, to, .. } => {
                    w.push(1, 3);
                    push_imm(&mut w, *addr);
                    push_reg(&mut w, &layout, *to);
                }
                TransferKind::StoreVar { value, addr, .. } => {
                    w.push(2, 3);
                    push_operand(&mut w, &layout, value);
                    push_imm(&mut w, *addr);
                }
                TransferKind::LoadDyn { addr, to } => {
                    w.push(3, 3);
                    push_reg(&mut w, &layout, *addr);
                    push_reg(&mut w, &layout, *to);
                }
                TransferKind::StoreDyn { addr, value } => {
                    w.push(4, 3);
                    push_reg(&mut w, &layout, *addr);
                    push_reg(&mut w, &layout, *value);
                }
            }
        }
        // Control.
        match &inst.control {
            None => w.push(0, 2),
            Some(ControlOp::Jump(t)) => {
                w.push(1, 2);
                push_imm(&mut w, *t as i64);
            }
            Some(ControlOp::BranchNz { cond, target }) => {
                w.push(2, 2);
                push_operand(&mut w, &layout, cond);
                push_imm(&mut w, *target as i64);
            }
            Some(ControlOp::Return(v)) => {
                w.push(3, 2);
                match v {
                    None => w.push(0, 1),
                    Some(op) => {
                        w.push(1, 1);
                        push_operand(&mut w, &layout, op);
                    }
                }
            }
        }
    }
    let bits = w.bit_len();
    Ok((w.finish(), bits))
}

/// Decode a packed bitstream of `count` instructions back into
/// instruction form (metadata — block starts, variable addresses — lives
/// outside the ROM image and is not part of the packed format).
///
/// # Errors
///
/// Returns [`PackedError`] on any malformed bitstream.
pub fn decode_packed(
    target: &Target,
    bytes: &[u8],
    count: usize,
) -> Result<Vec<VliwInstruction>, PackedError> {
    let layout = Layout::new(target);
    let m = &target.machine;
    let mut r = BitReader::new(bytes);
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let mut inst = VliwInstruction::nop(m.units().len());
        for ui in 0..m.units().len() {
            let code = r.pull(layout.opcode_w[ui])? as usize;
            if code == 0 {
                continue;
            }
            let unit = &m.units()[ui];
            let (opcode, arity) = if code <= unit.ops.len() {
                let op = unit.ops[code - 1].op;
                (SlotOpcode::Basic(op), op.arity())
            } else {
                let ci = code - 1 - unit.ops.len();
                let cx = m.complexes().get(ci).ok_or_else(|| PackedError {
                    msg: format!("bad complex index {ci}"),
                })?;
                (SlotOpcode::Complex(ci), cx.pattern.arg_count())
            };
            let dst = pull_reg(&mut r, &layout)?;
            let mut args = Vec::with_capacity(arity);
            for _ in 0..arity {
                args.push(pull_operand(&mut r, &layout)?);
            }
            inst.slots[ui] = Some(SlotOp { opcode, dst, args });
        }
        let n_xfers = r.pull(layout.xfer_count_w)? as usize;
        for _ in 0..n_xfers {
            let bus = BusId(r.pull(layout.bus_w)? as u32);
            let kind = match r.pull(3)? {
                0 => TransferKind::Move {
                    from: pull_reg(&mut r, &layout)?,
                    to: pull_reg(&mut r, &layout)?,
                },
                1 => TransferKind::LoadVar {
                    addr: pull_imm(&mut r)?,
                    name: String::new(),
                    to: pull_reg(&mut r, &layout)?,
                },
                2 => TransferKind::StoreVar {
                    value: pull_operand(&mut r, &layout)?,
                    addr: pull_imm(&mut r)?,
                    name: String::new(),
                },
                3 => TransferKind::LoadDyn {
                    addr: pull_reg(&mut r, &layout)?,
                    to: pull_reg(&mut r, &layout)?,
                },
                4 => TransferKind::StoreDyn {
                    addr: pull_reg(&mut r, &layout)?,
                    value: pull_reg(&mut r, &layout)?,
                },
                t => {
                    return Err(PackedError {
                        msg: format!("bad transfer tag {t}"),
                    })
                }
            };
            inst.xfers.push(TransferOp { bus, kind });
        }
        inst.control = match r.pull(2)? {
            0 => None,
            1 => Some(ControlOp::Jump(pull_imm(&mut r)? as usize)),
            2 => Some(ControlOp::BranchNz {
                cond: pull_operand(&mut r, &layout)?,
                target: pull_imm(&mut r)? as usize,
            }),
            _ => {
                let v = if r.pull(1)? == 1 {
                    Some(pull_operand(&mut r, &layout)?)
                } else {
                    None
                };
                Some(ControlOp::Return(v))
            }
        };
        out.push(inst);
    }
    Ok(out)
}

/// Keep imports referenced in docs honest.
#[allow(unused)]
fn _types(_: UnitId) {}

#[cfg(test)]
mod tests {
    use super::*;
    use aviv::CodeGenerator;
    use aviv_ir::parse_function;
    use aviv_isdl::archs;

    /// Instructions equal up to the variable-name annotations, which the
    /// packed format deliberately drops (names are debug metadata, not
    /// ROM content).
    fn strip_names(mut insts: Vec<VliwInstruction>) -> Vec<VliwInstruction> {
        for inst in &mut insts {
            for x in &mut inst.xfers {
                match &mut x.kind {
                    TransferKind::LoadVar { name, .. } | TransferKind::StoreVar { name, .. } => {
                        name.clear();
                    }
                    _ => {}
                }
            }
        }
        insts
    }

    fn round_trip(src: &str, machine: aviv_isdl::Machine) -> usize {
        let f = parse_function(src).unwrap();
        let gen = CodeGenerator::new(machine);
        let (program, _) = gen.compile_function(&f).unwrap();
        let (bytes, bits) = encode_packed(gen.target(), &program).unwrap();
        let decoded = decode_packed(gen.target(), &bytes, program.instructions.len()).unwrap();
        assert_eq!(
            strip_names(program.instructions.clone()),
            strip_names(decoded)
        );
        assert!(bits <= bytes.len() * 8);
        bits
    }

    #[test]
    fn packed_round_trips_programs() {
        let bits = round_trip(
            "func f(a, b, c) { x = (a + b) * c; if (x > 10) goto big; x = 0 - x; big: return x; }",
            archs::example_arch(4),
        );
        assert!(bits > 0);
    }

    #[test]
    fn packed_round_trips_mac_and_memory() {
        round_trip(
            "func f(a, b, c, p) { x = a * b + c; mem[p] = x; y = mem[p + 1]; return y; }",
            archs::dsp_arch(4),
        );
    }

    #[test]
    fn packed_is_denser_than_byte_encoding() {
        let f = parse_function("func f(a, b, c, d) { x = (a + b) * (c - d); y = x + a; out = y; }")
            .unwrap();
        let gen = CodeGenerator::new(archs::example_arch(4));
        let (program, _) = gen.compile_function(&f).unwrap();
        let byte_size = crate::encode::assemble(&program).len();
        let (packed, bits) = encode_packed(gen.target(), &program).unwrap();
        assert!(
            packed.len() * 3 < byte_size,
            "packed {} bytes vs byte-format {byte_size}",
            packed.len()
        );
        // A Fig. 3-style machine: each instruction fits in a few dozen
        // bits.
        let per_inst = bits / program.instructions.len();
        assert!(per_inst < 96, "{per_inst} bits per instruction");
    }

    #[test]
    fn large_immediates_use_the_escape() {
        let f = parse_function("func f(a) { x = a + 1000000; return x; }").unwrap();
        let gen = CodeGenerator::new(archs::example_arch(4));
        let (program, _) = gen.compile_function(&f).unwrap();
        let (bytes, _) = encode_packed(gen.target(), &program).unwrap();
        let decoded = decode_packed(gen.target(), &bytes, program.instructions.len()).unwrap();
        assert_eq!(
            strip_names(program.instructions.clone()),
            strip_names(decoded)
        );
    }

    #[test]
    fn truncated_stream_is_rejected() {
        let f = parse_function("func f(a, b) { x = a * b; return x; }").unwrap();
        let gen = CodeGenerator::new(archs::example_arch(4));
        let (program, _) = gen.compile_function(&f).unwrap();
        let (bytes, _) = encode_packed(gen.target(), &program).unwrap();
        let truncated = &bytes[..bytes.len() / 2];
        assert!(decode_packed(gen.target(), truncated, program.instructions.len()).is_err());
    }
}
