//! Differential testing: compiled code vs the IR interpreter.
//!
//! [`check_function`] compiles a function, simulates the generated VLIW
//! code, runs the reference interpreter on the same inputs, and compares
//! return value, every named variable, and the dynamic memory region.
//! This is the end-to-end correctness oracle used across the test suites.

use crate::sim::{SimError, Simulator};
use aviv::{CodeGenerator, CodegenError, CodegenOptions};
use aviv_ir::{Function, InterpError, Interpreter, MemLayout};
use aviv_isdl::Machine;
use std::error::Error;
use std::fmt;

/// A differential-testing failure.
#[derive(Debug)]
pub enum DiffError {
    /// Compilation failed.
    Compile(CodegenError),
    /// The simulator faulted.
    Sim(SimError),
    /// The interpreter faulted.
    Interp(InterpError),
    /// Compiled code and interpreter disagree.
    Mismatch {
        /// Human-readable description of the disagreement.
        what: String,
    },
}

impl fmt::Display for DiffError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DiffError::Compile(e) => write!(f, "compile: {e}"),
            DiffError::Sim(e) => write!(f, "simulate: {e}"),
            DiffError::Interp(e) => write!(f, "interpret: {e}"),
            DiffError::Mismatch { what } => write!(f, "mismatch: {what}"),
        }
    }
}

impl Error for DiffError {}

/// Compile `f` for `machine` with `options`, then verify the generated
/// code computes exactly what the interpreter computes for `args`
/// (positional parameter values) and `mem` (preloaded dynamic memory).
///
/// ```
/// use aviv::CodegenOptions;
/// use aviv_ir::parse_function;
/// use aviv_isdl::archs;
/// use aviv_vm::check_function;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let f = parse_function("func f(a, b) { return a * b - a; }")?;
/// check_function(&f, archs::example_arch(4),
///                CodegenOptions::heuristics_on(), &[6, 7], &[])?;
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// Returns the first failure; [`DiffError::Mismatch`] carries the
/// offending variable or address.
pub fn check_function(
    f: &Function,
    machine: Machine,
    options: CodegenOptions,
    args: &[i64],
    mem: &[(i64, i64)],
) -> Result<(), DiffError> {
    assert!(
        f.syms.len() < 1024,
        "diff harness assumes named variables stay below the dynamic region"
    );
    let generator = CodeGenerator::new(machine).options(options);
    let (program, _report) = generator.compile_function(f).map_err(DiffError::Compile)?;

    // Interpreter run.
    let layout = MemLayout::for_function(f);
    let mut interp = Interpreter::with_layout(f, layout.clone());
    interp.args(args);
    for &(a, v) in mem {
        interp.poke(a, v);
    }
    let iresult = interp.run().map_err(DiffError::Interp)?;

    // Simulator run.
    let mut sim = Simulator::new(generator.target(), &program);
    for (i, &p) in f.params.iter().enumerate() {
        if let Some(&v) = args.get(i) {
            sim.poke(layout.addr(p), v);
        }
    }
    for &(a, v) in mem {
        sim.poke(a, v);
    }
    let sresult = sim.run().map_err(DiffError::Sim)?;

    if iresult.return_value != sresult.return_value {
        return Err(DiffError::Mismatch {
            what: format!(
                "return value: interp {:?}, sim {:?}",
                iresult.return_value, sresult.return_value
            ),
        });
    }
    // Named variables (skip compiler-internal ones, which only the
    // generated code touches).
    for (sym, name) in f.syms.iter() {
        if name.starts_with("__") {
            continue;
        }
        let addr = layout.addr(sym);
        let iv = iresult.memory.get(&addr).copied();
        let sv = sresult.memory.get(&addr).copied();
        if iv.unwrap_or(0) != sv.unwrap_or(0) {
            return Err(DiffError::Mismatch {
                what: format!("variable {name}: interp {iv:?}, sim {sv:?}"),
            });
        }
    }
    // Dynamic region.
    let base = layout.dynamic_base();
    let union: std::collections::BTreeSet<i64> = iresult
        .memory
        .keys()
        .chain(sresult.memory.keys())
        .copied()
        .filter(|&a| a >= base)
        .collect();
    for a in union {
        let iv = iresult.memory.get(&a).copied().unwrap_or(0);
        let sv = sresult.memory.get(&a).copied().unwrap_or(0);
        if iv != sv {
            return Err(DiffError::Mismatch {
                what: format!("mem[{a}]: interp {iv}, sim {sv}"),
            });
        }
    }
    Ok(())
}
