//! Graphviz export of Split-Node DAGs — the practical way to *see* the
//! structure the paper draws in its Fig. 4.

use crate::sndag::{SnId, SnKind, SplitNodeDag};
use aviv_ir::BlockDag;
use aviv_isdl::{Location, Target};
use std::fmt::Write as _;

/// Render the Split-Node DAG in Graphviz `dot` syntax. Split nodes are
/// diamonds, implementation alternatives boxes, transfers ellipses,
/// leaves/immediates plain text.
pub fn sndag_to_dot(sndag: &SplitNodeDag, dag: &BlockDag, target: &Target) -> String {
    let mut out = String::from("digraph sndag {\n  rankdir=BT;\n  node [fontsize=10];\n");
    for (i, node) in sndag.nodes().iter().enumerate() {
        let id = SnId(i as u32);
        let (label, shape) = match &node.kind {
            SnKind::Split { orig } => (format!("split {orig}\\n{}", dag.node(*orig).op), "diamond"),
            SnKind::Alt { orig, unit, op } => (
                format!("{} on {}\\n[{orig}]", op, target.machine.unit(*unit).name),
                "box",
            ),
            SnKind::ComplexAlt {
                orig,
                complex,
                unit,
            } => (
                format!(
                    "{} on {}\\n[{orig}]",
                    target.machine.complexes()[*complex].name,
                    target.machine.unit(*unit).name
                ),
                "box",
            ),
            SnKind::MemAlt { orig, bus, bank } => (
                format!(
                    "load via {}\\ninto {} [{orig}]",
                    target.machine.bus(*bus).name,
                    target.machine.bank(*bank).name
                ),
                "box",
            ),
            SnKind::Transfer { bus, from, to } => (
                format!(
                    "xfer {} -> {}\\nvia {}",
                    loc(target, *from),
                    loc(target, *to),
                    target.machine.bus(*bus).name
                ),
                "ellipse",
            ),
            SnKind::Leaf { orig } => (format!("leaf {orig}"), "plaintext"),
            SnKind::Imm { orig } => (format!("imm {}", dag.node(*orig).imm.unwrap()), "plaintext"),
            SnKind::StoreNode { orig, .. } => (format!("store [{orig}]"), "house"),
        };
        let _ = writeln!(out, "  {id} [label=\"{label}\", shape={shape}];");
        for port in &node.ports {
            for &child in port {
                let _ = writeln!(out, "  {child} -> {id};");
            }
        }
    }
    out.push_str("}\n");
    out
}

fn loc(target: &Target, l: Location) -> String {
    match l {
        Location::Bank(b) => target.machine.bank(b).name.clone(),
        Location::Mem => "DM".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sndag::SplitNodeDag;
    use aviv_ir::parse_function;
    use aviv_isdl::archs;
    use aviv_isdl::Target;

    #[test]
    fn dot_output_is_wellformed() {
        let f = parse_function("func f(a, b, d, e) { out = (d * e) - (a + b); }").unwrap();
        let target = Target::new(archs::example_arch(4));
        let sndag = SplitNodeDag::build(&f.blocks[0].dag, &target).unwrap();
        let dot = sndag_to_dot(&sndag, &f.blocks[0].dag, &target);
        assert!(dot.starts_with("digraph sndag {"));
        assert!(dot.trim_end().ends_with('}'));
        // Every node appears, and edges reference declared nodes.
        for i in 0..sndag.len() {
            assert!(dot.contains(&format!("s{i} [label=")), "s{i} missing");
        }
        assert!(dot.contains("diamond"), "split nodes drawn");
        assert!(dot.contains("xfer"), "transfer nodes drawn");
        // Balanced braces.
        assert_eq!(dot.matches('{').count(), dot.matches('}').count());
    }
}
