//! The Split-Node DAG (paper §III).
//!
//! "The Split-Node DAG representation contains all the necessary
//! information to generate code that will perform the operations of the
//! original basic block DAG on the target processor." For every operation
//! node of the original DAG it holds a *split node* whose children are the
//! alternative implementations (one per capable functional unit, plus any
//! matched complex instructions), and on every producer→consumer path that
//! crosses storage locations it holds explicit *data transfer nodes* —
//! including multi-hop chains when no direct path exists.
//!
//! Value residence model (matching the paper's cost examples in §IV-A,
//! where an ADD pays "2 for the two transfers required to load its
//! operands"):
//!
//! * named-variable leaves live in data memory — consuming them costs a
//!   memory→bank transfer;
//! * constants are instruction immediates — free everywhere, no register;
//! * an operation's operands must reside in the executing unit's own
//!   register file, and its result lands there;
//! * store roots move a value from its bank to memory;
//! * dynamic loads/stores are bus operations: a dynamic load picks a
//!   destination bank (a real alternative); its address — and a dynamic
//!   store's address and value — must reside in that bank.

use crate::patterns::{match_complexes, ComplexMatch};
use aviv_ir::{BlockDag, NodeId, Op};
use aviv_isdl::{BankId, BusId, Location, Target, UnitId};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Index of a node in a [`SplitNodeDag`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SnId(pub u32);

impl SnId {
    /// Raw vector index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for SnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// What a Split-Node-DAG node is.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnKind {
    /// The split node of an original operation node.
    Split {
        /// The original node.
        orig: NodeId,
    },
    /// An implementation alternative: `orig` executed on `unit`.
    Alt {
        /// The original node.
        orig: NodeId,
        /// The executing unit.
        unit: UnitId,
        /// The operation performed.
        op: Op,
    },
    /// A complex-instruction alternative rooted at `orig`.
    ComplexAlt {
        /// The original root node.
        orig: NodeId,
        /// Index into the machine's complex-instruction list.
        complex: usize,
        /// The executing unit.
        unit: UnitId,
    },
    /// A dynamic-load alternative: bus `bus` reads memory into `bank`.
    MemAlt {
        /// The original `Load` node.
        orig: NodeId,
        /// The bus performing the access.
        bus: BusId,
        /// The destination register bank.
        bank: BankId,
    },
    /// A data transfer over `bus` from `from` to `to`.
    Transfer {
        /// Bus carrying the transfer.
        bus: BusId,
        /// Source location.
        from: Location,
        /// Destination location.
        to: Location,
    },
    /// A named-variable input leaf (resident in memory).
    Leaf {
        /// The original node.
        orig: NodeId,
    },
    /// A constant leaf (an instruction immediate).
    Imm {
        /// The original node.
        orig: NodeId,
    },
    /// A store root (named or dynamic) moving a value to memory over
    /// `bus`.
    StoreNode {
        /// The original store node.
        orig: NodeId,
        /// The bus performing the store.
        bus: BusId,
        /// The bank the stored value (and dynamic address) must be in.
        bank: BankId,
    },
}

/// One node of the Split-Node DAG with its downward edges.
#[derive(Debug, Clone)]
pub struct SnNode {
    /// The node kind.
    pub kind: SnKind,
    /// Downward edges, grouped by input port:
    /// * `Split` — `ports[0]` lists the alternatives;
    /// * `Alt`/`ComplexAlt` — `ports[k]` lists the possible suppliers of
    ///   operand `k` (producer alternatives, transfer-chain tails, leaves,
    ///   immediates);
    /// * `MemAlt` — `ports[0]` suppliers of the address;
    /// * `Transfer` — `ports[0]` the single supplier it forwards;
    /// * `StoreNode` — suppliers of the stored value (and for dynamic
    ///   stores, `ports[0]` the address, `ports[1]` the value);
    /// * `Leaf`/`Imm` — no ports.
    pub ports: Vec<Vec<SnId>>,
}

/// How an alternative executes: the resource it occupies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Exec {
    /// A functional-unit slot.
    Unit(UnitId),
    /// A bus slot reading/writing memory into/from `bank`.
    MemPort {
        /// The bus used.
        bus: BusId,
        /// The register bank accessed.
        bank: BankId,
    },
}

/// What an alternative computes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AltKind {
    /// A single machine operation.
    Simple(Op),
    /// A complex instruction covering several original nodes.
    Complex {
        /// Index into the machine's complex list.
        index: usize,
        /// Original nodes covered (root first).
        covers: Vec<NodeId>,
        /// Original nodes feeding the pattern operands.
        operands: Vec<NodeId>,
    },
    /// A dynamic memory load (operand = address).
    DynLoad,
    /// A dynamic memory store (operands = address, value); produces no
    /// value.
    DynStore,
}

/// Compact description of one implementation alternative, used by the
/// covering engine.
#[derive(Debug, Clone)]
pub struct AltInfo {
    /// The Split-Node-DAG node of this alternative.
    pub sn: SnId,
    /// The execution resource.
    pub exec: Exec,
    /// What it computes.
    pub kind: AltKind,
}

impl AltInfo {
    /// The register bank where operands must reside and the result lands.
    pub fn home_bank(&self, target: &Target) -> BankId {
        match self.exec {
            Exec::Unit(u) => target.machine.bank_of(u),
            Exec::MemPort { bank, .. } => bank,
        }
    }
}

/// Error from Split-Node-DAG construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SplitDagError {
    /// An operation has no capable unit and is not covered by any complex
    /// instruction: the block cannot be implemented on this machine.
    UnsupportedOp {
        /// The impossible operation.
        op: Op,
        /// The node carrying it.
        node: NodeId,
    },
    /// A dynamic memory operation found no bus connecting a bank to
    /// memory (cannot occur on a validated machine, kept for robustness).
    NoMemoryPath {
        /// The node needing the access.
        node: NodeId,
    },
}

impl fmt::Display for SplitDagError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SplitDagError::UnsupportedOp { op, node } => {
                write!(
                    f,
                    "operation {op} at {node} has no implementation on this machine"
                )
            }
            SplitDagError::NoMemoryPath { node } => {
                write!(f, "no bus reaches memory for node {node}")
            }
        }
    }
}

impl Error for SplitDagError {}

/// Statistics reported in the paper's tables and figures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitDagStats {
    /// Nodes in the original basic-block DAG.
    pub orig_nodes: usize,
    /// Total Split-Node DAG nodes (the tables' "Split-Node DAG #Nodes").
    pub sn_nodes: usize,
    /// Split nodes.
    pub split_nodes: usize,
    /// Implementation alternatives (unit + memport).
    pub alt_nodes: usize,
    /// Complex-instruction alternatives.
    pub complex_alts: usize,
    /// Data-transfer nodes.
    pub transfer_nodes: usize,
    /// Leaf + immediate nodes.
    pub leaf_nodes: usize,
    /// Store nodes.
    pub store_nodes: usize,
    /// Size of the functional-unit assignment space (product of per-node
    /// alternative counts, as in §IV-A's `2 × 2 × 3`), saturating.
    pub assignment_space: u128,
}

/// The Split-Node DAG for one basic block on one target.
#[derive(Debug, Clone)]
pub struct SplitNodeDag {
    nodes: Vec<SnNode>,
    /// Split node of each original node (ops only).
    split_of: Vec<Option<SnId>>,
    /// Alternatives of all original nodes (ops and dynamic loads),
    /// arena-flattened: `alt_ranges[orig]` slices this one allocation.
    /// Assignment exploration walks these lists for every enumerated
    /// assignment, so they are contiguous instead of one heap vector per
    /// node.
    alts: Vec<AltInfo>,
    /// Half-open `(start, end)` range into `alts` per original node.
    alt_ranges: Vec<(u32, u32)>,
    /// Complex matches found on the block.
    matches: Vec<ComplexMatch>,
    /// For each original node, the matches covering it as an interior.
    covered_by: Vec<Vec<usize>>,
    /// Store-node alternatives of all original store nodes, flattened
    /// like `alts`.
    store_alts: Vec<SnId>,
    /// Half-open `(start, end)` range into `store_alts` per node.
    store_alt_ranges: Vec<(u32, u32)>,
}

/// Flatten per-node lists into one arena plus per-node ranges.
fn flatten_arena<T>(per_node: Vec<Vec<T>>) -> (Vec<T>, Vec<(u32, u32)>) {
    let total = per_node.iter().map(Vec::len).sum();
    let mut arena = Vec::with_capacity(total);
    let mut ranges = Vec::with_capacity(per_node.len());
    for items in per_node {
        let start = arena.len() as u32;
        arena.extend(items);
        ranges.push((start, arena.len() as u32));
    }
    (arena, ranges)
}

impl SplitNodeDag {
    /// Build the Split-Node DAG of `dag` for `target`.
    ///
    /// # Errors
    ///
    /// Returns [`SplitDagError::UnsupportedOp`] when some operation can be
    /// implemented neither directly nor through a complex instruction.
    pub fn build(dag: &BlockDag, target: &Target) -> Result<SplitNodeDag, SplitDagError> {
        Builder::new(dag, target).run()
    }

    /// All nodes.
    pub fn nodes(&self) -> &[SnNode] {
        &self.nodes
    }

    /// Access one node.
    pub fn node(&self, id: SnId) -> &SnNode {
        &self.nodes[id.index()]
    }

    /// Number of Split-Node-DAG nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when empty (an empty block).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Implementation alternatives of an original node (empty for leaves
    /// and stores).
    pub fn alts(&self, orig: NodeId) -> &[AltInfo] {
        let (start, end) = self.alt_ranges[orig.index()];
        &self.alts[start as usize..end as usize]
    }

    /// The split node of an original operation node.
    pub fn split_of(&self, orig: NodeId) -> Option<SnId> {
        self.split_of[orig.index()]
    }

    /// All complex matches found on the block.
    pub fn matches(&self) -> &[ComplexMatch] {
        &self.matches
    }

    /// Matches covering `orig` as a swallowed interior node.
    pub fn covering_matches(&self, orig: NodeId) -> &[usize] {
        &self.covered_by[orig.index()]
    }

    /// Statistics for the paper's table columns.
    pub fn stats(&self, dag: &BlockDag) -> SplitDagStats {
        let mut s = SplitDagStats {
            orig_nodes: dag.len(),
            sn_nodes: self.nodes.len(),
            split_nodes: 0,
            alt_nodes: 0,
            complex_alts: 0,
            transfer_nodes: 0,
            leaf_nodes: 0,
            store_nodes: 0,
            assignment_space: 1,
        };
        for n in &self.nodes {
            match n.kind {
                SnKind::Split { .. } => s.split_nodes += 1,
                SnKind::Alt { .. } | SnKind::MemAlt { .. } => s.alt_nodes += 1,
                SnKind::ComplexAlt { .. } => s.complex_alts += 1,
                SnKind::Transfer { .. } => s.transfer_nodes += 1,
                SnKind::Leaf { .. } | SnKind::Imm { .. } => s.leaf_nodes += 1,
                SnKind::StoreNode { .. } => s.store_nodes += 1,
            }
        }
        for &(start, end) in &self.alt_ranges {
            if end > start {
                s.assignment_space = s.assignment_space.saturating_mul(u128::from(end - start));
            }
        }
        s
    }

    /// Render the Split-Node DAG as indented text (the figures binary uses
    /// this to regenerate the paper's Fig. 4).
    pub fn render(&self, dag: &BlockDag, target: &Target) -> String {
        let mut out = String::new();
        for (i, n) in self.nodes.iter().enumerate() {
            let id = SnId(i as u32);
            let desc = match &n.kind {
                SnKind::Split { orig } => {
                    format!("split[{orig}:{}]", dag.node(*orig).op)
                }
                SnKind::Alt { orig, unit, op } => {
                    format!("alt[{orig}] {} on {}", op, target.machine.unit(*unit).name)
                }
                SnKind::ComplexAlt {
                    orig,
                    complex,
                    unit,
                } => format!(
                    "complex[{orig}] {} on {}",
                    target.machine.complexes()[*complex].name,
                    target.machine.unit(*unit).name
                ),
                SnKind::MemAlt { orig, bus, bank } => format!(
                    "dynload[{orig}] via {} into {}",
                    target.machine.bus(*bus).name,
                    target.machine.bank(*bank).name
                ),
                SnKind::Transfer { bus, from, to } => format!(
                    "xfer {} -> {} via {}",
                    loc_name(target, *from),
                    loc_name(target, *to),
                    target.machine.bus(*bus).name
                ),
                SnKind::Leaf { orig } => format!("leaf[{orig}] (in DM)"),
                SnKind::Imm { orig } => {
                    format!("imm[{orig}] = {}", dag.node(*orig).imm.unwrap())
                }
                SnKind::StoreNode { orig, bus, bank } => format!(
                    "store[{orig}] from {} via {}",
                    target.machine.bank(*bank).name,
                    target.machine.bus(*bus).name
                ),
            };
            let ports: Vec<String> = n
                .ports
                .iter()
                .map(|p| {
                    let items: Vec<String> =
                        p.iter().map(std::string::ToString::to_string).collect();
                    format!("[{}]", items.join(" "))
                })
                .collect();
            out.push_str(&format!("{id}: {desc} {}\n", ports.join(" ")));
        }
        out
    }

    /// Store alternatives (one per usable memory bus) of a store node.
    pub fn store_alts(&self, orig: NodeId) -> &[SnId] {
        let (start, end) = self.store_alt_ranges[orig.index()];
        &self.store_alts[start as usize..end as usize]
    }
}

fn loc_name(target: &Target, loc: Location) -> String {
    match loc {
        Location::Bank(b) => target.machine.bank(b).name.clone(),
        Location::Mem => "DM".to_string(),
    }
}

struct Builder<'a> {
    dag: &'a BlockDag,
    target: &'a Target,
    nodes: Vec<SnNode>,
    split_of: Vec<Option<SnId>>,
    alts: Vec<Vec<AltInfo>>,
    store_alts: Vec<Vec<SnId>>,
    /// Supplier list per original value node: (sn node, where the value
    /// is). `None` location means instruction immediate.
    suppliers: Vec<Vec<(SnId, Option<Location>)>>,
    /// Transfer-node sharing: (supplier, bus, to) → node.
    xfer_cache: HashMap<(SnId, BusId, Location), SnId>,
    matches: Vec<ComplexMatch>,
    covered_by: Vec<Vec<usize>>,
}

impl<'a> Builder<'a> {
    fn new(dag: &'a BlockDag, target: &'a Target) -> Self {
        let matches = match_complexes(dag, target);
        let mut covered_by = vec![Vec::new(); dag.len()];
        for (mi, m) in matches.iter().enumerate() {
            for &c in &m.covers {
                if c != m.root {
                    covered_by[c.index()].push(mi);
                }
            }
        }
        Builder {
            dag,
            target,
            nodes: Vec::new(),
            split_of: vec![None; dag.len()],
            alts: vec![Vec::new(); dag.len()],
            store_alts: vec![Vec::new(); dag.len()],
            suppliers: vec![Vec::new(); dag.len()],
            xfer_cache: HashMap::new(),
            matches,
            covered_by,
        }
    }

    fn push(&mut self, kind: SnKind, ports: Vec<Vec<SnId>>) -> SnId {
        let id = SnId(self.nodes.len() as u32);
        self.nodes.push(SnNode { kind, ports });
        id
    }

    /// Suppliers of `orig`'s value into `dest`: direct when already there
    /// (or an immediate), otherwise through shared transfer chains along
    /// every stored shortest path.
    fn port_into(&mut self, orig: NodeId, dest: Location) -> Vec<SnId> {
        let suppliers = self.suppliers[orig.index()].clone();
        let mut port = Vec::new();
        for (sup, loc) in suppliers {
            match loc {
                None => port.push(sup), // immediate: free anywhere
                Some(l) if l == dest => port.push(sup),
                Some(l) => {
                    let paths: Vec<_> = self.target.xfers.paths(l, dest).to_vec();
                    for path in paths {
                        let mut cur = sup;
                        for hop in &path.hops {
                            let key = (cur, hop.bus, hop.to);
                            cur = match self.xfer_cache.get(&key) {
                                Some(&t) => t,
                                None => {
                                    let t = self.push(
                                        SnKind::Transfer {
                                            bus: hop.bus,
                                            from: hop.from,
                                            to: hop.to,
                                        },
                                        vec![vec![cur]],
                                    );
                                    self.xfer_cache.insert(key, t);
                                    t
                                }
                            };
                        }
                        port.push(cur);
                    }
                }
            }
        }
        port
    }

    fn run(mut self) -> Result<SplitNodeDag, SplitDagError> {
        let machine = &self.target.machine;
        // Buses that touch memory, with the banks they serve.
        let mem_ports: Vec<(BusId, BankId)> = machine
            .buses()
            .iter()
            .enumerate()
            .flat_map(|(bi, bus)| {
                if !bus.endpoints.contains(&Location::Mem) {
                    return Vec::new();
                }
                bus.endpoints
                    .iter()
                    .filter_map(|&e| match e {
                        Location::Bank(b) => Some((BusId(bi as u32), b)),
                        Location::Mem => None,
                    })
                    .collect::<Vec<_>>()
            })
            .collect();

        for (id, node) in self.dag.iter() {
            match node.op {
                Op::Const => {
                    let sn = self.push(SnKind::Imm { orig: id }, vec![]);
                    self.suppliers[id.index()].push((sn, None));
                }
                Op::Input => {
                    let sn = self.push(SnKind::Leaf { orig: id }, vec![]);
                    self.suppliers[id.index()].push((sn, Some(Location::Mem)));
                }
                Op::Load => {
                    // Dynamic load: one alternative per (bus, bank) memory
                    // port; the address must be in the destination bank.
                    if mem_ports.is_empty() {
                        return Err(SplitDagError::NoMemoryPath { node: id });
                    }
                    let mut alt_sns = Vec::new();
                    for &(bus, bank) in &mem_ports {
                        let addr_port = self.port_into(node.args[0], Location::Bank(bank));
                        let sn = self.push(
                            SnKind::MemAlt {
                                orig: id,
                                bus,
                                bank,
                            },
                            vec![addr_port],
                        );
                        alt_sns.push(sn);
                        self.alts[id.index()].push(AltInfo {
                            sn,
                            exec: Exec::MemPort { bus, bank },
                            kind: AltKind::DynLoad,
                        });
                        self.suppliers[id.index()].push((sn, Some(Location::Bank(bank))));
                    }
                    let split = self.push(SnKind::Split { orig: id }, vec![alt_sns]);
                    self.split_of[id.index()] = Some(split);
                }
                Op::Store => {
                    // Dynamic store: address and value must both sit in
                    // the bank whose memory port performs the store.
                    if mem_ports.is_empty() {
                        return Err(SplitDagError::NoMemoryPath { node: id });
                    }
                    for &(bus, bank) in &mem_ports {
                        let addr_port = self.port_into(node.args[0], Location::Bank(bank));
                        let val_port = self.port_into(node.args[1], Location::Bank(bank));
                        let sn = self.push(
                            SnKind::StoreNode {
                                orig: id,
                                bus,
                                bank,
                            },
                            vec![addr_port, val_port],
                        );
                        self.store_alts[id.index()].push(sn);
                        // A dynamic store chooses its memory port: that is
                        // a real assignment decision, so it participates
                        // in the alternatives table.
                        self.alts[id.index()].push(AltInfo {
                            sn,
                            exec: Exec::MemPort { bus, bank },
                            kind: AltKind::DynStore,
                        });
                    }
                }
                Op::StoreVar => {
                    // The stored value travels bank→memory; the transfer
                    // machinery handles path choice, so a single store
                    // node per memory bus suffices (value port already
                    // fans over producer alternatives). We anchor it on
                    // the value's possible final hop into memory.
                    let val_port = self.port_into(node.args[0], Location::Mem);
                    // Use the first memory bus for bookkeeping; the actual
                    // bus is determined by the chosen transfer path.
                    let (bus, bank) = mem_ports.first().copied().unwrap_or((BusId(0), BankId(0)));
                    let sn = self.push(
                        SnKind::StoreNode {
                            orig: id,
                            bus,
                            bank,
                        },
                        vec![val_port],
                    );
                    self.store_alts[id.index()].push(sn);
                }
                op => {
                    // Regular operation: one alternative per capable unit
                    // plus complex alternatives rooted here.
                    let units = self.target.ops.units_for(op).to_vec();
                    let mut alt_sns = Vec::new();
                    for unit in units {
                        let bank = machine.bank_of(unit);
                        let ports: Vec<Vec<SnId>> = node
                            .args
                            .iter()
                            .map(|&a| self.port_into(a, Location::Bank(bank)))
                            .collect();
                        let sn = self.push(SnKind::Alt { orig: id, unit, op }, ports);
                        alt_sns.push(sn);
                        self.alts[id.index()].push(AltInfo {
                            sn,
                            exec: Exec::Unit(unit),
                            kind: AltKind::Simple(op),
                        });
                        self.suppliers[id.index()].push((sn, Some(Location::Bank(bank))));
                    }
                    // Complex alternatives rooted at this node.
                    let rooted: Vec<usize> = self
                        .matches
                        .iter()
                        .enumerate()
                        .filter(|(_, m)| m.root == id)
                        .map(|(i, _)| i)
                        .collect();
                    for mi in rooted {
                        let m = self.matches[mi].clone();
                        let cx = &machine.complexes()[m.complex];
                        let unit = cx.unit;
                        let bank = machine.bank_of(unit);
                        let ports: Vec<Vec<SnId>> = m
                            .operands
                            .iter()
                            .map(|&a| self.port_into(a, Location::Bank(bank)))
                            .collect();
                        let sn = self.push(
                            SnKind::ComplexAlt {
                                orig: id,
                                complex: m.complex,
                                unit,
                            },
                            ports,
                        );
                        alt_sns.push(sn);
                        self.alts[id.index()].push(AltInfo {
                            sn,
                            exec: Exec::Unit(unit),
                            kind: AltKind::Complex {
                                index: m.complex,
                                covers: m.covers.clone(),
                                operands: m.operands.clone(),
                            },
                        });
                        self.suppliers[id.index()].push((sn, Some(Location::Bank(bank))));
                    }
                    if self.alts[id.index()].is_empty() {
                        // No direct implementation. Acceptable only when
                        // some complex covers this node as an interior.
                        if self.covered_by[id.index()].is_empty() {
                            return Err(SplitDagError::UnsupportedOp { op, node: id });
                        }
                    } else {
                        let split = self.push(SnKind::Split { orig: id }, vec![alt_sns]);
                        self.split_of[id.index()] = Some(split);
                    }
                }
            }
        }
        let (alts, alt_ranges) = flatten_arena(self.alts);
        let (store_alts, store_alt_ranges) = flatten_arena(self.store_alts);
        Ok(SplitNodeDag {
            nodes: self.nodes,
            split_of: self.split_of,
            alts,
            alt_ranges,
            matches: self.matches,
            covered_by: self.covered_by,
            store_alts,
            store_alt_ranges,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aviv_ir::parse_function;
    use aviv_isdl::archs;

    fn build(src: &str, machine: aviv_isdl::Machine) -> (aviv_ir::Function, Target, SplitNodeDag) {
        let f = parse_function(src).unwrap();
        let target = Target::new(machine);
        let sn = SplitNodeDag::build(&f.blocks[0].dag, &target).unwrap();
        (f, target, sn)
    }

    /// The paper's §IV-A worked example: the Fig. 2 block has a SUB fed by
    /// a MUL and an ADD; alternatives on Fig. 3's architecture multiply to
    /// 2 × 2 × 3 possible assignments.
    #[test]
    fn fig4_alternative_counts() {
        let (f, _t, sn) = build(
            "func f(a, b, c, d, e) { out = (d * e) - (a + b); }",
            archs::example_arch(4),
        );
        let dag = &f.blocks[0].dag;
        let mut counts: Vec<usize> = Vec::new();
        for (id, n) in dag.iter() {
            if !n.op.is_leaf() && !n.op.is_store() {
                counts.push(sn.alts(id).len());
            }
        }
        counts.sort_unstable();
        assert_eq!(counts, vec![2, 2, 3], "SUB:2, MUL:2, ADD:3");
        let stats = sn.stats(dag);
        assert_eq!(stats.assignment_space, 12);
        assert!(stats.transfer_nodes > 0);
        assert_eq!(stats.split_nodes, 3);
    }

    #[test]
    fn sndag_is_larger_than_original() {
        let (f, _t, sn) = build(
            "func f(a, b, c) { t = a + b; u = t * c; v = u - t; out = v; }",
            archs::example_arch(4),
        );
        let dag = &f.blocks[0].dag;
        let stats = sn.stats(dag);
        assert!(stats.sn_nodes > stats.orig_nodes, "{stats:?}");
        assert_eq!(stats.orig_nodes, dag.len());
    }

    #[test]
    fn reduced_arch_gives_smaller_sndag() {
        let src = "func f(a, b, c) { t = a + b; u = t * c; v = u - t; out = v; }";
        let (f1, _t1, sn1) = build(src, archs::example_arch(4));
        let (_f2, _t2, sn2) = build(src, archs::arch_two(4));
        // Table II: the same blocks produce far fewer split-node-DAG nodes
        // on the reduced architecture.
        assert!(sn2.len() < sn1.len());
        let s1 = sn1.stats(&f1.blocks[0].dag);
        let _ = s1;
    }

    #[test]
    fn unsupported_op_is_reported() {
        let f = parse_function("func f(a, b) { x = a / b; }").unwrap();
        let target = Target::new(archs::example_arch(4));
        let err = SplitNodeDag::build(&f.blocks[0].dag, &target).unwrap_err();
        assert!(matches!(
            err,
            SplitDagError::UnsupportedOp { op: Op::Div, .. }
        ));
    }

    #[test]
    fn constants_are_immediates_with_no_transfers() {
        let (f, _t, sn) = build("func f(a) { x = a + 1; }", archs::example_arch(4));
        let dag = &f.blocks[0].dag;
        // The const leaf becomes an Imm node; the input leaf needs
        // transfers (one per consuming bank).
        let stats = sn.stats(dag);
        let imm_nodes = sn
            .nodes()
            .iter()
            .filter(|n| matches!(n.kind, SnKind::Imm { .. }))
            .count();
        assert_eq!(imm_nodes, 1);
        // `a` feeds adds on three different banks: three leaf transfers.
        assert!(stats.transfer_nodes >= 3);
    }

    #[test]
    fn transfer_nodes_are_shared_across_consumers() {
        // Both the SUB and the second ADD on the same unit consume `t`;
        // the memory→bank transfer of `a` into each bank exists once.
        let (f, target, sn) = build(
            "func f(a) { x = a + a; y = a - a; }",
            archs::example_arch(4),
        );
        let dag = &f.blocks[0].dag;
        let _ = dag;
        // Count transfers out of the leaf: at most one per (bank) even
        // though multiple alternatives consume it.
        let n_banks = target.machine.banks().len();
        let leaf_xfers = sn
            .nodes()
            .iter()
            .filter(|n| {
                matches!(
                    n.kind,
                    SnKind::Transfer {
                        from: Location::Mem,
                        ..
                    }
                )
            })
            .count();
        assert!(leaf_xfers <= n_banks, "{leaf_xfers} > {n_banks}");
    }

    #[test]
    fn complex_alt_appears_in_table() {
        let (f, _t, sn) = build("func f(a, b, c) { y = a * b + c; }", archs::dsp_arch(4));
        let dag = &f.blocks[0].dag;
        let add = dag
            .iter()
            .find(|(_, n)| n.op == Op::Add)
            .map(|(id, _)| id)
            .unwrap();
        let alts = sn.alts(add);
        // U1.add, U2.add, and the MAC complex on U2.
        assert_eq!(alts.len(), 3);
        assert!(alts
            .iter()
            .any(|a| matches!(a.kind, AltKind::Complex { .. })));
        let mul = dag
            .iter()
            .find(|(_, n)| n.op == Op::Mul)
            .map(|(id, _)| id)
            .unwrap();
        assert_eq!(sn.covering_matches(mul).len(), 1);
    }

    #[test]
    fn dynamic_memory_ops_get_memport_alts() {
        let (f, target, sn) = build(
            "func f(p) { x = mem[p]; mem[p + 1] = x * 2; }",
            archs::example_arch(4),
        );
        let dag = &f.blocks[0].dag;
        let load = dag
            .iter()
            .find(|(_, n)| n.op == Op::Load)
            .map(|(id, _)| id)
            .unwrap();
        // One destination-bank alternative per bank on the memory bus.
        assert_eq!(sn.alts(load).len(), target.machine.banks().len());
        assert!(sn
            .alts(load)
            .iter()
            .all(|a| matches!(a.kind, AltKind::DynLoad)));
        let store = dag
            .iter()
            .find(|(_, n)| n.op == Op::Store)
            .map(|(id, _)| id)
            .unwrap();
        assert_eq!(sn.store_alts(store).len(), target.machine.banks().len());
    }

    #[test]
    fn render_names_units_and_transfers() {
        let (f, target, sn) = build("func f(a, b) { x = a * b; }", archs::example_arch(4));
        let text = sn.render(&f.blocks[0].dag, &target);
        assert!(text.contains("U2") && text.contains("U3"));
        assert!(text.contains("xfer"));
        assert!(text.contains("split"));
    }
}
