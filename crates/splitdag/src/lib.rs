//! # aviv-splitdag — the Split-Node DAG
//!
//! The central data structure of the AVIV retargetable code generator
//! (Hanono & Devadas, DAC 1998): a graph that "explicitly represents all
//! possible implementations for a block of code on the target processor".
//! Each operation of a basic-block DAG becomes a *split node* fanning out
//! to one implementation alternative per capable functional unit (plus any
//! matched complex instructions), with explicit *data transfer nodes* on
//! every producer→consumer path that crosses storage locations.
//!
//! ```
//! use aviv_ir::parse_function;
//! use aviv_isdl::{archs, Target};
//! use aviv_splitdag::SplitNodeDag;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let f = parse_function("func f(a, b, d, e) { out = (d * e) - (a + b); }")?;
//! let target = Target::new(archs::example_arch(4));
//! let sndag = SplitNodeDag::build(&f.blocks[0].dag, &target)?;
//! let stats = sndag.stats(&f.blocks[0].dag);
//! assert_eq!(stats.assignment_space, 12); // the paper's 2 x 2 x 3
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod dot;
pub mod patterns;
pub mod sndag;

pub use dot::sndag_to_dot;
pub use patterns::{match_complexes, ComplexMatch};
pub use sndag::{
    AltInfo, AltKind, Exec, SnId, SnKind, SnNode, SplitDagError, SplitDagStats, SplitNodeDag,
};
