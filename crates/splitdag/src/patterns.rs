//! Complex-instruction pattern matching on basic-block DAGs.
//!
//! "The Split-Node DAG structure can easily incorporate complex
//! instructions ... by utilizing an initial pattern matching phase that
//! detects which nodes in the original expression DAG can be covered by a
//! complex instruction supported by the target processor" (paper §III-B).
//!
//! A match binds a [`ComplexInstr`] pattern rooted at some DAG node; the
//! interior nodes it swallows must be used *only* inside the match
//! (otherwise their value would still have to be computed separately and
//! fusing would save nothing).

use aviv_ir::{BlockDag, NodeId};
use aviv_isdl::{PatTree, Target};

/// One way a complex instruction can cover part of the DAG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ComplexMatch {
    /// Index into [`Machine::complexes`].
    pub complex: usize,
    /// The DAG node matched by the pattern root (the value the
    /// instruction produces).
    pub root: NodeId,
    /// Every DAG node the match covers (root plus swallowed interiors),
    /// in discovery order with the root first.
    pub covers: Vec<NodeId>,
    /// The DAG nodes bound to the pattern's operands, indexed by pattern
    /// argument number.
    pub operands: Vec<NodeId>,
}

/// Find every complex-instruction match in `dag` for `target`.
///
/// Matches are returned grouped by root in node order; the Split-Node DAG
/// adds each as an extra alternative under the root's split node.
///
/// Candidate patterns come from the target's precomputed root-op index
/// ([`aviv_isdl::OpDb::complexes_rooted_at`]): the table is built once per
/// target and shared read-only across blocks and worker threads, so each
/// node only tries the patterns whose root operation matches its own.
pub fn match_complexes(dag: &BlockDag, target: &Target) -> Vec<ComplexMatch> {
    let machine = &target.machine;
    let uses = dag.uses();
    let root_ids: std::collections::HashSet<NodeId> = dag.roots().into_iter().collect();
    let mut out = Vec::new();
    for (id, node) in dag.iter() {
        if node.op.is_leaf() || node.op.is_store() {
            continue;
        }
        for &ci in target.ops.complexes_rooted_at(node.op) {
            let cx = &machine.complexes()[ci];
            let mut operands: Vec<Option<NodeId>> = vec![None; cx.pattern.arg_count()];
            let mut covers = Vec::new();
            if try_match(
                dag,
                &uses,
                &root_ids,
                id,
                &cx.pattern,
                true,
                &mut operands,
                &mut covers,
            ) {
                let operands: Vec<NodeId> =
                    operands.into_iter().map(|o| o.expect("bound")).collect();
                out.push(ComplexMatch {
                    complex: ci,
                    root: id,
                    covers,
                    operands,
                });
            }
        }
    }
    out
}

/// Attempt to match `pat` at `node`, backtracking on failure. Interior
/// (non-root) op nodes must be single-use and not themselves DAG roots.
/// Commutative operations are tried in both operand orders (the DAG
/// canonicalizes commutative operand order, which need not agree with the
/// pattern's).
#[allow(clippy::too_many_arguments)]
fn try_match(
    dag: &BlockDag,
    uses: &[Vec<NodeId>],
    root_ids: &std::collections::HashSet<NodeId>,
    node: NodeId,
    pat: &PatTree,
    is_root: bool,
    operands: &mut Vec<Option<NodeId>>,
    covers: &mut Vec<NodeId>,
) -> bool {
    match pat {
        PatTree::Arg(i) => match operands[*i] {
            None => {
                operands[*i] = Some(node);
                true
            }
            Some(bound) => bound == node,
        },
        PatTree::Op(op, subs) => {
            let n = dag.node(node);
            if n.op != *op {
                return false;
            }
            if !is_root {
                // A swallowed interior node must have exactly one consumer
                // (the match parent) and must not be observable.
                if uses[node.index()].len() != 1 || root_ids.contains(&node) {
                    return false;
                }
            }
            let mut orders: Vec<Vec<NodeId>> = vec![n.args.clone()];
            if op.is_commutative() && n.args.len() >= 2 && n.args[0] != n.args[1] {
                let mut swapped = n.args.clone();
                swapped.swap(0, 1);
                orders.push(swapped);
            }
            'order: for args in orders {
                // Snapshot for backtracking.
                let saved_operands = operands.clone();
                let saved_covers = covers.len();
                covers.push(node);
                for (arg, sub) in args.iter().zip(subs) {
                    if !try_match(dag, uses, root_ids, *arg, sub, false, operands, covers) {
                        *operands = saved_operands;
                        covers.truncate(saved_covers);
                        continue 'order;
                    }
                }
                return true;
            }
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aviv_ir::parse_function;
    use aviv_isdl::archs::dsp_arch;
    use aviv_isdl::MachineBuilder;

    #[test]
    fn mac_matches_mul_feeding_add() {
        let f = parse_function("func f(a, b, c) { y = a * b + c; }").unwrap();
        let t = Target::new(dsp_arch(4));
        let matches = match_complexes(&f.blocks[0].dag, &t);
        assert_eq!(matches.len(), 1);
        let mm = &matches[0];
        assert_eq!(mm.covers.len(), 2, "add and mul");
        assert_eq!(mm.operands.len(), 3);
        // Operands are a, b, c in pattern order.
        let dag = &f.blocks[0].dag;
        let names: Vec<&str> = mm
            .operands
            .iter()
            .map(|&o| f.syms.name(dag.node(o).sym.unwrap()))
            .collect();
        assert_eq!(names, vec!["a", "b", "c"]);
    }

    #[test]
    fn commutative_add_matches_either_side() {
        // c + a*b: the DAG canonicalizes commutative operand order by node
        // id, which puts `c` first here; the matcher must retry the
        // swapped order to find the mul.
        let f = parse_function("func f(a, b, c) { y = c + a * b; }").unwrap();
        let t = Target::new(dsp_arch(4));
        let matches = match_complexes(&f.blocks[0].dag, &t);
        assert_eq!(matches.len(), 1, "commutative retry finds the mul");
    }

    #[test]
    fn multi_use_interior_blocks_match() {
        // The mul result is also stored, so it cannot be swallowed.
        let f = parse_function("func f(a, b, c) { t = a * b; y = t + c; z = t; }").unwrap();
        let t = Target::new(dsp_arch(4));
        let matches = match_complexes(&f.blocks[0].dag, &t);
        assert!(matches.is_empty());
    }

    #[test]
    fn repeated_arg_requires_same_node() {
        use aviv_ir::Op;
        use aviv_isdl::PatTree;
        let mut b = MachineBuilder::new("sq");
        let u1 = b.unit("U1", &[Op::Mul, Op::Add], 4);
        b.bus("DB", &[u1], true, 1);
        b.complex(
            "sq",
            u1,
            PatTree::Op(Op::Mul, vec![PatTree::Arg(0), PatTree::Arg(0)]),
        );
        let m = b.build().unwrap();

        let f = parse_function("func f(a, b) { x = a * a; y = a * b; }").unwrap();
        let matches = match_complexes(&f.blocks[0].dag, &Target::new(m));
        assert_eq!(matches.len(), 1, "only a*a matches sq");
        assert_eq!(matches[0].operands.len(), 1);
    }

    #[test]
    fn two_macs_in_one_block() {
        let f = parse_function("func f(a, b, c, d, e) { x = a * b + c; y = d * e + x; }").unwrap();
        let t = Target::new(dsp_arch(4));
        let matches = match_complexes(&f.blocks[0].dag, &t);
        // x's add has a mul child (a*b): match. y's add has mul (d*e): match.
        assert_eq!(matches.len(), 2);
    }

    #[test]
    fn no_complexes_no_matches() {
        let f = parse_function("func f(a, b, c) { y = a * b + c; }").unwrap();
        let t = Target::new(aviv_isdl::archs::example_arch(4));
        assert!(match_complexes(&f.blocks[0].dag, &t).is_empty());
    }
}
