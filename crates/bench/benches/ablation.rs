//! Ablation of the paper's individual heuristics (§VI: "AVIV
//! incorporates multiple heuristics that can be turned off if desired"):
//! assignment pruning, the clique level window, lookahead, and the
//! peephole pass, each toggled independently on a mid-size block.

use aviv::{CodeGenerator, CodegenOptions};
use aviv_bench::table_examples;
use aviv_ir::MemLayout;
use aviv_isdl::archs;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn variants() -> Vec<(&'static str, CodegenOptions)> {
    let on = CodegenOptions::heuristics_on();
    let mut no_window = on.clone();
    no_window.clique_level_window = None;
    let mut no_lookahead = on.clone();
    no_lookahead.lookahead = false;
    let mut no_peephole = on.clone();
    no_peephole.peephole = false;
    let mut strict_prune = on.clone();
    strict_prune.prune_slack = 0;
    strict_prune.assignments_to_explore = 4;
    let mut pressure_aware = on.clone();
    pressure_aware.pressure_aware_assignment = true;
    vec![
        ("all_on", on),
        ("pressure_aware", pressure_aware),
        ("no_level_window", no_window),
        ("no_lookahead", no_lookahead),
        ("no_peephole", no_peephole),
        ("strict_prune", strict_prune),
        ("thorough", CodegenOptions::thorough()),
    ]
}

fn bench_ablation(c: &mut Criterion) {
    // Ex4 is the largest block that stays fast under every variant.
    let ex = &table_examples()[3];
    let f = ex.function();
    let mut group = c.benchmark_group("ablation_ex4");
    for (name, opts) in variants() {
        let gen = CodeGenerator::new(archs::example_arch(4)).options(opts);
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut syms = f.syms.clone();
                let mut layout = MemLayout::for_function(&f);
                let r = gen
                    .compile_block(&f.blocks[0].dag, &mut syms, &mut layout)
                    .unwrap();
                black_box(r.report.instructions)
            });
        });
    }
    group.finish();
}

fn bench_exhaustive_small(c: &mut Criterion) {
    // Heuristics fully off is only benchable on the smallest block.
    let ex = &table_examples()[0];
    let f = ex.function();
    let mut group = c.benchmark_group("exhaustive_ex1");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    for (name, opts) in [
        ("heuristics_on", CodegenOptions::heuristics_on()),
        ("heuristics_off", CodegenOptions::heuristics_off()),
    ] {
        let gen = CodeGenerator::new(archs::example_arch(4)).options(opts);
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut syms = f.syms.clone();
                let mut layout = MemLayout::for_function(&f);
                let r = gen
                    .compile_block(&f.blocks[0].dag, &mut syms, &mut layout)
                    .unwrap();
                black_box(r.report.instructions)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ablation, bench_exhaustive_small);
criterion_main!(benches);
