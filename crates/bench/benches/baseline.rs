//! AVIV's concurrent engine vs the sequential phase-ordered baseline:
//! compile-time cost of concurrency (code-quality numbers come from the
//! `baseline_table` binary).

use aviv::{CodeGenerator, CodegenOptions};
use aviv_baseline::BaselineGenerator;
use aviv_bench::table_examples;
use aviv_ir::MemLayout;
use aviv_isdl::archs;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_baseline_vs_aviv(c: &mut Criterion) {
    let ex = &table_examples()[3]; // Ex4
    let f = ex.function();
    let mut group = c.benchmark_group("generator_ex4");

    let gen = CodeGenerator::new(archs::example_arch(4)).options(CodegenOptions::heuristics_on());
    group.bench_function("aviv_concurrent", |b| {
        b.iter(|| {
            let mut syms = f.syms.clone();
            let mut layout = MemLayout::for_function(&f);
            let r = gen
                .compile_block(&f.blocks[0].dag, &mut syms, &mut layout)
                .unwrap();
            black_box(r.report.instructions)
        });
    });

    let base = BaselineGenerator::new(archs::example_arch(4));
    group.bench_function("sequential_baseline", |b| {
        b.iter(|| {
            let mut syms = f.syms.clone();
            let mut layout = MemLayout::for_function(&f);
            let r = base
                .compile_block(&f.blocks[0].dag, &mut syms, &mut layout)
                .unwrap();
            black_box(r.size)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_baseline_vs_aviv);
criterion_main!(benches);
