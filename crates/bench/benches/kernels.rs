//! Compile-time cost of the DSP kernel suite across machines.

use aviv::{CodeGenerator, CodegenOptions};
use aviv_bench::all_kernels;
use aviv_ir::MemLayout;
use aviv_isdl::archs;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel_compile");
    for kernel in all_kernels() {
        let f = kernel.function();
        for machine in [archs::wide_arch(4), archs::dsp_arch(4)] {
            // Skip kernels the machine cannot implement.
            let gen = CodeGenerator::new(machine.clone()).options(CodegenOptions::heuristics_on());
            let mut syms = f.syms.clone();
            let mut layout = MemLayout::for_function(&f);
            if gen
                .compile_block(&f.blocks[0].dag, &mut syms, &mut layout)
                .is_err()
            {
                continue;
            }
            group.bench_with_input(BenchmarkId::new(kernel.name, &machine.name), &f, |b, f| {
                b.iter(|| {
                    let mut syms = f.syms.clone();
                    let mut layout = MemLayout::for_function(f);
                    let r = gen
                        .compile_block(&f.blocks[0].dag, &mut syms, &mut layout)
                        .unwrap();
                    black_box(r.report.instructions)
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
