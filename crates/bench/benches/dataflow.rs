//! Worklist-solver throughput on large random CFGs: the global analyses
//! behind `avivc check` and the exact-liveness pruning pass must stay
//! cheap relative to covering, which costs seconds per block at the
//! sizes where these run in microseconds.

use aviv_ir::dataflow::{all_syms, definite_assignment, liveness, reaching_defs};
use aviv_ir::randdag::{random_function, RandDagConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_dataflow(c: &mut Criterion) {
    let cfg = RandDagConfig {
        n_ops: 12,
        n_inputs: 4,
        n_outputs: 2,
        ..Default::default()
    };
    let mut group = c.benchmark_group("dataflow");
    for n_blocks in [8usize, 32, 128, 512] {
        let f = random_function(&cfg, n_blocks, 42);
        group.bench_with_input(BenchmarkId::new("liveness", n_blocks), &f, |b, f| {
            let exit_live = all_syms(f);
            b.iter(|| black_box(liveness(f, &exit_live)));
        });
        group.bench_with_input(
            BenchmarkId::new("definite_assignment", n_blocks),
            &f,
            |b, f| {
                b.iter(|| black_box(definite_assignment(f)));
            },
        );
        group.bench_with_input(BenchmarkId::new("reaching_defs", n_blocks), &f, |b, f| {
            b.iter(|| black_box(reaching_defs(f)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_dataflow);
criterion_main!(benches);
