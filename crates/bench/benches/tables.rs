//! Criterion benchmarks behind Tables I and II: compile time of each
//! benchmark block on both architectures with the default heuristics.

use aviv::{CodeGenerator, CodegenOptions};
use aviv_bench::{table2_examples, table_examples};
use aviv_ir::MemLayout;
use aviv_isdl::archs;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_table1(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_compile");
    for ex in table_examples() {
        let f = ex.function();
        let gen = CodeGenerator::new(archs::example_arch(ex.regs))
            .options(CodegenOptions::heuristics_on());
        group.bench_function(ex.name, |b| {
            b.iter(|| {
                let mut syms = f.syms.clone();
                let mut layout = MemLayout::for_function(&f);
                let r = gen
                    .compile_block(&f.blocks[0].dag, &mut syms, &mut layout)
                    .unwrap();
                black_box(r.report.instructions)
            });
        });
    }
    group.finish();
}

fn bench_table2(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2_compile");
    for ex in table2_examples() {
        let f = ex.function();
        let gen =
            CodeGenerator::new(archs::arch_two(ex.regs)).options(CodegenOptions::heuristics_on());
        group.bench_function(ex.name, |b| {
            b.iter(|| {
                let mut syms = f.syms.clone();
                let mut layout = MemLayout::for_function(&f);
                let r = gen
                    .compile_block(&f.blocks[0].dag, &mut syms, &mut layout)
                    .unwrap();
                black_box(r.report.instructions)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table1, bench_table2);
criterion_main!(benches);
