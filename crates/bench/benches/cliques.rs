//! Maximal-clique generation cost (§IV-C.2: "Generating all of the
//! maximal cliques is the most time consuming portion of our algorithm"),
//! with and without the level-window heuristic that the paper introduces
//! to tame it.

use aviv::assign::explore;
use aviv::cliques::{gen_max_cliques, legalize, ParallelismMatrix};
use aviv::covergraph::CoverGraph;
use aviv::CodegenOptions;
use aviv_bench::compare::example_arch_rand_config;
use aviv_ir::randdag::random_block;
use aviv_isdl::{archs, Target};
use aviv_splitdag::SplitNodeDag;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn graph_for(n_ops: usize, seed: u64) -> (CoverGraph, Target) {
    let cfg = example_arch_rand_config(n_ops);
    let f = random_block(&cfg, seed);
    let dag = &f.blocks[0].dag;
    let target = Target::new(archs::example_arch(4));
    let sndag = SplitNodeDag::build(dag, &target).unwrap();
    let res = explore(dag, &sndag, &target, &CodegenOptions::heuristics_on());
    let graph = CoverGraph::build(dag, &sndag, &target, &res.assignments[0]);
    (graph, target)
}

fn bench_clique_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("gen_max_cliques");
    for n_ops in [8usize, 12, 16, 20] {
        let (graph, target) = graph_for(n_ops, 11);
        let nodes = graph.alive();
        for (tag, window) in [("window2", Some(2u32)), ("no_window", None)] {
            let matrix = ParallelismMatrix::build(&graph, &target, &nodes, window);
            group.bench_with_input(BenchmarkId::new(tag, n_ops), &matrix, |b, matrix| {
                b.iter(|| black_box(gen_max_cliques(matrix).len()));
            });
        }
    }
    group.finish();
}

fn bench_legalize(c: &mut Criterion) {
    let (graph, target) = graph_for(16, 11);
    let nodes = graph.alive();
    let matrix = ParallelismMatrix::build(&graph, &target, &nodes, Some(2));
    let cliques = gen_max_cliques(&matrix);
    c.bench_function("legalize_16ops", |b| {
        b.iter(|| black_box(legalize(cliques.clone(), &matrix, &graph, &target).len()));
    });
}

criterion_group!(benches, bench_clique_generation, bench_legalize);
criterion_main!(benches);
