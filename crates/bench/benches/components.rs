//! Per-stage cost of the pipeline on a mid-size block: Split-Node-DAG
//! construction, assignment exploration, cover-graph build, covering,
//! register allocation, and simulation.

use aviv::assign::explore;
use aviv::covergraph::CoverGraph;
use aviv::{CodeGenerator, CodegenOptions};
use aviv_bench::table_examples;
use aviv_ir::MemLayout;
use aviv_isdl::{archs, Target};
use aviv_splitdag::SplitNodeDag;
use aviv_vm::Simulator;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_components(c: &mut Criterion) {
    let ex = &table_examples()[3]; // Ex4
    let f = ex.function();
    let dag = &f.blocks[0].dag;
    let target = Target::new(archs::example_arch(4));
    let options = CodegenOptions::heuristics_on();
    let mut group = c.benchmark_group("stages_ex4");

    group.bench_function("sndag_build", |b| {
        b.iter(|| black_box(SplitNodeDag::build(dag, &target).unwrap().len()));
    });

    let sndag = SplitNodeDag::build(dag, &target).unwrap();
    group.bench_function("assignment_explore", |b| {
        b.iter(|| black_box(explore(dag, &sndag, &target, &options).assignments.len()));
    });

    let res = explore(dag, &sndag, &target, &options);
    group.bench_function("covergraph_build", |b| {
        b.iter(|| black_box(CoverGraph::build(dag, &sndag, &target, &res.assignments[0]).len()));
    });

    group.bench_function("cover_schedule", |b| {
        b.iter(|| {
            let mut graph = CoverGraph::build(dag, &sndag, &target, &res.assignments[0]);
            let mut syms = f.syms.clone();
            let s = aviv::cover::cover(&mut graph, &target, &mut syms, &options).unwrap();
            black_box(s.len())
        });
    });

    let mut graph = CoverGraph::build(dag, &sndag, &target, &res.assignments[0]);
    let mut syms = f.syms.clone();
    let schedule = aviv::cover::cover(&mut graph, &target, &mut syms, &options).unwrap();
    group.bench_function("register_allocation", |b| {
        b.iter(|| {
            black_box(
                aviv::regalloc::allocate(&graph, &target, &schedule)
                    .unwrap()
                    .len(),
            )
        });
    });

    // Whole-function compile + simulate.
    let gen = CodeGenerator::new(archs::example_arch(4)).options(options.clone());
    let (program, _) = gen.compile_function(&f).unwrap();
    group.bench_function("simulate", |b| {
        b.iter(|| {
            let mut sim = Simulator::new(gen.target(), &program);
            for (i, &p) in f.params.iter().enumerate() {
                let layout = MemLayout::for_function(&f);
                sim.poke(layout.addr(p), i as i64 + 1);
            }
            black_box(sim.run().unwrap().cycles)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_components);
criterion_main!(benches);
