//! End-to-end compile time vs basic-block size (the growth pattern
//! behind the paper's CPU-time columns), plus sequential-vs-parallel
//! whole-function compilation across worker counts.

use aviv::{CodeGenerator, CodegenOptions};
use aviv_bench::compare::example_arch_rand_config;
use aviv_ir::randdag::{random_block, random_function};
use aviv_ir::MemLayout;
use aviv_isdl::archs;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("compile_scaling");
    for n_ops in [6usize, 10, 14, 18, 24, 32] {
        let cfg = example_arch_rand_config(n_ops);
        let f = random_block(&cfg, 42);
        let gen =
            CodeGenerator::new(archs::example_arch(4)).options(CodegenOptions::heuristics_on());
        group.bench_with_input(BenchmarkId::new("heuristics_on", n_ops), &f, |b, f| {
            b.iter(|| {
                let mut syms = f.syms.clone();
                let mut layout = MemLayout::for_function(f);
                let r = gen
                    .compile_block(&f.blocks[0].dag, &mut syms, &mut layout)
                    .unwrap();
                black_box(r.report.instructions)
            });
        });
    }
    group.finish();
    // Exhaustive mode only at the smallest sizes (n=10 already costs
    // seconds per compile; the scaling *binary* covers larger sizes).
    let mut group2 = c.benchmark_group("compile_scaling_off");
    group2.sample_size(10);
    for n_ops in [6usize, 8] {
        let cfg = example_arch_rand_config(n_ops);
        let f = random_block(&cfg, 42);
        let gen =
            CodeGenerator::new(archs::example_arch(4)).options(CodegenOptions::heuristics_off());
        group2.bench_with_input(BenchmarkId::new("heuristics_off", n_ops), &f, |b, f| {
            b.iter(|| {
                let mut syms = f.syms.clone();
                let mut layout = MemLayout::for_function(f);
                let r = gen
                    .compile_block(&f.blocks[0].dag, &mut syms, &mut layout)
                    .unwrap();
                black_box(r.report.instructions)
            });
        });
    }
    group2.finish();
}

/// Whole-function compile time over worker counts: the same multi-block
/// program compiled with `jobs` = 1, 2, 4, 0 (one per core). The merge
/// stage keeps the output byte-identical, so any difference is pure
/// planning wall time.
fn bench_parallel_blocks(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_blocks");
    group.sample_size(10);
    for n_blocks in [8usize, 16] {
        let cfg = example_arch_rand_config(14);
        let f = random_function(&cfg, n_blocks, 42);
        for jobs in [1usize, 2, 4, 0] {
            let gen = CodeGenerator::new(archs::example_arch(4))
                .options(CodegenOptions::heuristics_on().with_jobs(jobs));
            let label = if jobs == 0 {
                format!("{n_blocks}blocks/jobs_auto")
            } else {
                format!("{n_blocks}blocks/jobs{jobs}")
            };
            group.bench_with_input(BenchmarkId::from_parameter(label), &f, |b, f| {
                b.iter(|| {
                    let (program, _) = gen.compile_function(f).unwrap();
                    black_box(program.instructions.len())
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_scaling, bench_parallel_blocks);
criterion_main!(benches);
