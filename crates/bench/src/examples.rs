//! The benchmark basic blocks of the paper's §VI.
//!
//! "These examples are generic basic blocks that occur in DSP application
//! code. Examples 1-2 are simple basic blocks that are found as part of a
//! conditional statement or loop. Examples 3-5 are simple basic blocks of
//! loops that have been unrolled twice." The paper does not publish the
//! blocks themselves, so these are reconstructions with the same flavor
//! (sum-of-products kernels, twice-unrolled accumulation loops) and the
//! same original-DAG node counts as Table I: 8, 13, 11, 15, 16.
//! Examples 6 and 7 are Examples 4 and 5 rerun with two registers per
//! register file.

use aviv_ir::{parse_function, Function};

/// One benchmark block.
#[derive(Debug, Clone)]
pub struct Example {
    /// Name as in the paper's tables (Ex1..Ex7).
    pub name: &'static str,
    /// The source program (single straight-line block).
    pub source: &'static str,
    /// Registers per register file for the experiment.
    pub regs: u32,
    /// Original-DAG node count the paper reports.
    pub paper_nodes: usize,
    /// What the block models.
    pub description: &'static str,
}

impl Example {
    /// Parse the block into a function.
    pub fn function(&self) -> Function {
        let f = parse_function(self.source).expect("bundled examples parse");
        assert_eq!(f.blocks.len(), 1, "examples are single blocks");
        f
    }
}

/// Ex1: the paper's running example shape — a difference of a product and
/// a sum (conditional-statement body). 8 DAG nodes.
pub const EX1_SRC: &str = "func ex1(a, b, d, e) {
    out = (d * e) - (a + b);
}";

/// Ex2: a butterfly-style sum/difference of products with a correction
/// term (loop body). 13 DAG nodes.
pub const EX2_SRC: &str = "func ex2(a, b, c, g) {
    x = (a + b) * c;
    y = (a - b) * c;
    out = (x + y) - g;
}";

/// Ex3: a twice-unrolled accumulation `s += a*b` with coefficient update.
/// 11 DAG nodes.
pub const EX3_SRC: &str = "func ex3(s, a, b, k) {
    s1 = s + a * b;
    s2 = s1 + (a + k) * b;
}";

/// Ex4: a twice-unrolled two-tap filter step. 15 DAG nodes.
pub const EX4_SRC: &str = "func ex4(s, a, b, c) {
    s1 = s + a * b;
    t1 = s1 - c * b;
    s2 = (t1 + a * c) - (b + c);
}";

/// Ex5: a twice-unrolled biquad-style update. 16 DAG nodes.
pub const EX5_SRC: &str = "func ex5(s, a, b, c, d) {
    u = a * b + s;
    v = (u - c * d) * d;
    y = (v + a * c) - b;
}";

/// The Table I / Table II experiment set.
pub fn table_examples() -> Vec<Example> {
    vec![
        Example {
            name: "Ex1",
            source: EX1_SRC,
            regs: 4,
            paper_nodes: 8,
            description: "conditional body: product minus sum",
        },
        Example {
            name: "Ex2",
            source: EX2_SRC,
            regs: 4,
            paper_nodes: 13,
            description: "two-tap sum of products with correction",
        },
        Example {
            name: "Ex3",
            source: EX3_SRC,
            regs: 4,
            paper_nodes: 11,
            description: "accumulation loop unrolled twice",
        },
        Example {
            name: "Ex4",
            source: EX4_SRC,
            regs: 4,
            paper_nodes: 15,
            description: "two-tap filter step unrolled twice",
        },
        Example {
            name: "Ex5",
            source: EX5_SRC,
            regs: 4,
            paper_nodes: 16,
            description: "biquad-style update unrolled twice",
        },
        Example {
            name: "Ex6",
            source: EX4_SRC,
            regs: 2,
            paper_nodes: 15,
            description: "Ex4 with two registers per file",
        },
        Example {
            name: "Ex7",
            source: EX5_SRC,
            regs: 2,
            paper_nodes: 16,
            description: "Ex5 with two registers per file",
        },
    ]
}

/// The Table II subset (Ex1–Ex5 on the reduced architecture, 4 regs).
pub fn table2_examples() -> Vec<Example> {
    table_examples().into_iter().take(5).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_counts_match_the_paper() {
        for ex in table_examples() {
            let f = ex.function();
            let got = f.blocks[0].dag.len();
            assert_eq!(
                got, ex.paper_nodes,
                "{}: {} nodes, paper says {}",
                ex.name, got, ex.paper_nodes
            );
        }
    }

    #[test]
    fn examples_are_valid_and_executable() {
        for ex in table_examples() {
            let f = ex.function();
            f.validate().unwrap();
            let args: Vec<i64> = (1..=f.params.len() as i64).collect();
            aviv_ir::run_function(&f, &args).unwrap();
        }
    }
}
