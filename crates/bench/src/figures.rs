//! Regenerators for the paper's figures.
//!
//! * Fig. 2 — the example basic-block DAG;
//! * Fig. 3 — the example target architecture;
//! * Fig. 4 — the Split-Node DAG of Fig. 2 on Fig. 3's machine;
//! * Fig. 6 — incremental-cost pruning of the assignment search;
//! * Fig. 7 — the pairwise-parallelism matrix of a proposed assignment;
//! * Fig. 8 — the maximal cliques the generator produces for it;
//! * Fig. 9 — load/spill insertion under register pressure.

use aviv::assign::{explore_traced, ExploreTrace};
use aviv::cliques::{gen_max_cliques, ParallelismMatrix};
use aviv::covergraph::CoverGraph;
use aviv::{CodeGenerator, CodegenOptions};
use aviv_ir::{parse_function, Function, MemLayout};
use aviv_isdl::{archs, Target};
use aviv_splitdag::SplitNodeDag;
use std::fmt::Write as _;

/// The worked example of §IV-A: Fig. 2's block feeding a COMPL sink that
/// only U1 implements.
pub const WORKED_EXAMPLE_SRC: &str = "func worked(a, b, d, e) {
    out = ~((d * e) - (a + b));
}";

fn worked_example() -> (Function, Target, SplitNodeDag) {
    let f = parse_function(WORKED_EXAMPLE_SRC).expect("bundled source parses");
    let target = Target::new(archs::example_arch(4));
    let sndag = SplitNodeDag::build(&f.blocks[0].dag, &target).expect("supported");
    (f, target, sndag)
}

/// Fig. 2: the example basic-block DAG.
pub fn fig2() -> String {
    let (f, _, _) = worked_example();
    let mut out = String::from("Figure 2: example basic block DAG\n");
    out.push_str(&f.blocks[0].dag.render(&f.syms));
    out
}

/// Fig. 3: the example target architecture.
pub fn fig3() -> String {
    let mut out = String::from("Figure 3: example target architecture\n");
    out.push_str(&archs::example_arch(4).describe());
    out
}

/// Fig. 4: the Split-Node DAG with its statistics.
pub fn fig4() -> String {
    let (f, target, sndag) = worked_example();
    let stats = sndag.stats(&f.blocks[0].dag);
    let mut out = String::from("Figure 4: Split-Node DAG of the Fig. 2 block\n");
    let _ = writeln!(
        out,
        "orig nodes {}, split-node DAG nodes {}, assignment space {}",
        stats.orig_nodes, stats.sn_nodes, stats.assignment_space
    );
    out.push_str(&sndag.render(&f.blocks[0].dag, &target));
    out
}

/// Fig. 6: the incremental costs probed during assignment exploration,
/// with pruning decisions.
pub fn fig6() -> String {
    let (f, target, sndag) = worked_example();
    let mut trace = ExploreTrace::default();
    let mut options = CodegenOptions::heuristics_on();
    // The paper's figure uses prune-to-minimum.
    options.prune_slack = 0;
    let _ = explore_traced(
        &f.blocks[0].dag,
        &sndag,
        &target,
        &options,
        Some(&mut trace),
    );
    let mut out = String::from(
        "Figure 6: incremental costs during split-node assignment search\n\
         (X marks pruned branches, as in the paper)\n",
    );
    for e in &trace.entries {
        let dag = &f.blocks[0].dag;
        let opname = dag.node(e.node).op.mnemonic();
        let _ = writeln!(
            out,
            "  {:>6} {:<12} cost {}{}",
            opname,
            e.desc,
            e.incremental_cost,
            if e.pruned { "   X" } else { "" }
        );
    }
    out
}

/// Fig. 7 and the Fig. 8 output: the pairwise-parallelism matrix of the
/// best assignment's cover graph and its maximal cliques.
pub fn fig7_fig8() -> String {
    let (f, target, sndag) = worked_example();
    let dag = &f.blocks[0].dag;
    let res = aviv::assign::explore(dag, &sndag, &target, &CodegenOptions::heuristics_on());
    let graph = CoverGraph::build(dag, &sndag, &target, &res.assignments[0]);
    let nodes = graph.alive();
    let matrix = ParallelismMatrix::build(&graph, &target, &nodes, None);
    let mut out =
        String::from("Figure 7: pairwise parallelism matrix (1 = cannot execute in parallel)\n");
    out.push_str(&matrix.render());
    out.push_str("\nFigure 8 output: maximal cliques of the compatibility graph\n");
    for (i, c) in gen_max_cliques(&matrix).iter().enumerate() {
        let members: Vec<String> = c.iter().map(|k| matrix.ids[k].to_string()).collect();
        let _ = writeln!(out, "  C{}: {{{}}}", i + 1, members.join(", "));
    }
    out
}

/// Fig. 9: load/spill insertion. Compiles a register-starved block and
/// reports the spill record (slot, victim, inserted loads, removed
/// transfers).
pub fn fig9() -> String {
    let src = "func pressure(a, b, c, d, e, g) {
        t1 = a + b;
        t2 = c + d;
        t3 = e + g;
        t4 = t1 * t2;
        t5 = t4 - t3;
        out = t5 + t1;
    }";
    let f = parse_function(src).expect("bundled source parses");
    let mut options = CodegenOptions::heuristics_on();
    options.peephole = false; // show the raw insertion
    let gen = CodeGenerator::new(archs::example_arch(2)).options(options);
    let mut syms = f.syms.clone();
    let mut layout = MemLayout::for_function(&f);
    let r = gen
        .compile_block(&f.blocks[0].dag, &mut syms, &mut layout)
        .expect("compiles with spills");
    let mut out = String::from("Figure 9: inserting loads and spills into the Split-Node DAG\n");
    let _ = writeln!(
        out,
        "block needs {} instructions with 2 regs/file; {} spill(s):",
        r.report.instructions,
        r.schedule.spills.len()
    );
    for s in &r.schedule.spills {
        let spill_desc = s
            .spill
            .map_or("rematerialized".to_string(), |c| format!("spill node {c}"));
        let _ = writeln!(
            out,
            "  spill of {} to slot `{}`: {}, {} helper node(s)",
            s.victim,
            syms.name(s.slot),
            spill_desc,
            s.nodes.len()
        );
    }
    out
}

/// All figures concatenated (the `figures` binary prints this).
pub fn all_figures() -> String {
    [fig2(), fig3(), fig4(), fig6(), fig7_fig8(), fig9()].join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig6_matches_the_papers_worked_costs() {
        let text = fig6();
        // SUB on U1 costs 0; SUB on U2 costs 1 and is pruned.
        assert!(text.contains("sub"));
        let sub_lines: Vec<&str> = text.lines().filter(|l| l.contains("sub ")).collect();
        assert!(sub_lines.iter().any(|l| l.contains("cost 0")));
        assert!(sub_lines
            .iter()
            .any(|l| l.contains("cost 1") && l.contains("X")));
        // ADD on U1 costs 2 in some branch; ADD on U2 costs 4.
        let add_lines: Vec<&str> = text.lines().filter(|l| l.contains("add ")).collect();
        assert!(add_lines.iter().any(|l| l.contains("cost 2")));
        assert!(add_lines.iter().any(|l| l.contains("cost 4")));
    }

    #[test]
    fn fig7_matrix_square_and_cliques_cover() {
        let text = fig7_fig8();
        assert!(text.contains("C1:"));
        assert!(text.contains("matrix"));
    }

    #[test]
    fn fig9_reports_spills() {
        let text = fig9();
        assert!(text.contains("spill"), "{text}");
        assert!(text.contains("__spill"), "{text}");
    }

    #[test]
    fn all_figures_nonempty() {
        let text = all_figures();
        for frag in [
            "Figure 2", "Figure 3", "Figure 4", "Figure 6", "Figure 7", "Figure 9",
        ] {
            assert!(text.contains(frag), "missing {frag}");
        }
    }
}
