//! A suite of real DSP kernels — the application domain the paper's
//! introduction motivates ("generic basic blocks that occur in DSP
//! application code"). Each kernel is a straight-line block (or a loop
//! prepared with the front end's unroller) used by the kernel-table
//! binary, the differential tests, and the benches.

use aviv_ir::{parse_function, Function};

/// One DSP kernel workload.
#[derive(Debug, Clone)]
pub struct Kernel {
    /// Short name.
    pub name: &'static str,
    /// What it computes.
    pub description: &'static str,
    /// Source in the front-end language.
    pub source: &'static str,
    /// Representative argument values for differential testing.
    pub args: &'static [i64],
}

impl Kernel {
    /// Parse the kernel.
    pub fn function(&self) -> Function {
        parse_function(self.source).expect("bundled kernels parse")
    }
}

/// 4-tap dot product.
pub const DOT4: Kernel = Kernel {
    name: "dot4",
    description: "4-element dot product",
    source: "func dot4(x0, x1, x2, x3, y0, y1, y2, y3) {
        acc = x0 * y0 + x1 * y1;
        acc = acc + x2 * y2 + x3 * y3;
        return acc;
    }",
    args: &[1, 2, 3, 4, 5, 6, 7, 8],
};

/// Direct-form-I biquad IIR section.
pub const BIQUAD: Kernel = Kernel {
    name: "biquad",
    description: "biquad IIR filter section (direct form I)",
    source: "func biquad(x, x1, x2, y1, y2, b0, b1, b2, a1, a2) {
        acc = b0 * x + b1 * x1;
        acc = acc + b2 * x2;
        acc = acc - a1 * y1;
        acc = acc - a2 * y2;
        y = acc;
        x2n = x1;
        x1n = x;
        y2n = y1;
        return y;
    }",
    args: &[10, 8, 6, 4, 2, 3, -1, 2, 1, -2],
};

/// Complex multiply (a + bi)(c + di).
pub const CMUL: Kernel = Kernel {
    name: "cmul",
    description: "complex multiply: (a+bi)(c+di)",
    source: "func cmul(a, b, c, d) {
        re = a * c - b * d;
        im = a * d + b * c;
        return re + im;
    }",
    args: &[3, 4, 5, -2],
};

/// Radix-2 decimation-in-time butterfly (real arithmetic stand-in).
pub const BUTTERFLY: Kernel = Kernel {
    name: "butterfly",
    description: "radix-2 FFT butterfly (real twiddle)",
    source: "func butterfly(ar, ai, br, bi, wr, wi) {
        tr = br * wr - bi * wi;
        ti = br * wi + bi * wr;
        xr = ar + tr;
        xi = ai + ti;
        yr = ar - tr;
        yi = ai - ti;
        return xr + xi + yr + yi;
    }",
    args: &[1, 2, 3, 4, 2, 1],
};

/// Saturating-style vector scale-and-add (no saturation ops on the
/// machines; clamps with min/max).
pub const SAXPY_CLAMP: Kernel = Kernel {
    name: "saxpy_clamp",
    description: "scale-add with clamping via min/max",
    source: "func saxpy_clamp(a, x0, x1, y0, y1, lo, hi) {
        r0 = max(min(a * x0 + y0, hi), lo);
        r1 = max(min(a * x1 + y1, hi), lo);
        return r0 + r1;
    }",
    args: &[3, 10, -10, 5, -5, -20, 20],
};

/// Sum of absolute differences (motion-estimation inner step).
pub const SAD4: Kernel = Kernel {
    name: "sad4",
    description: "sum of absolute differences over 4 lanes",
    source: "func sad4(a0, a1, a2, a3, b0, b1, b2, b3) {
        s = abs(a0 - b0) + abs(a1 - b1);
        s = s + abs(a2 - b2) + abs(a3 - b3);
        return s;
    }",
    args: &[9, 2, 7, 4, 5, 6, 1, 8],
};

/// All bundled kernels.
pub fn all_kernels() -> Vec<Kernel> {
    vec![DOT4, BIQUAD, CMUL, BUTTERFLY, SAXPY_CLAMP, SAD4]
}

#[cfg(test)]
mod tests {
    use super::*;
    use aviv::CodegenOptions;
    use aviv_isdl::archs;
    use aviv_vm::check_function;

    #[test]
    fn kernels_parse_and_run() {
        for k in all_kernels() {
            let f = k.function();
            f.validate().unwrap();
            let r = aviv_ir::run_function(&f, k.args).unwrap();
            assert!(r.return_value.is_some(), "{}", k.name);
        }
    }

    /// Every kernel compiles and simulates faithfully on the machines
    /// that implement its operations.
    #[test]
    fn kernels_compile_faithfully() {
        for k in all_kernels() {
            let f = k.function();
            // wide_arch implements every operation (min/max/abs included).
            for machine in [archs::wide_arch(4), archs::single_alu(6)] {
                let name = machine.name.clone();
                check_function(&f, machine, CodegenOptions::heuristics_on(), k.args, &[])
                    .unwrap_or_else(|e| panic!("{} on {}: {e}", k.name, name));
            }
        }
    }

    /// The mul-heavy kernels also run on the paper's architectures.
    #[test]
    fn arithmetic_kernels_on_paper_archs() {
        for k in [DOT4, BIQUAD, CMUL, BUTTERFLY] {
            let f = k.function();
            for machine in [
                archs::example_arch(4),
                archs::arch_two(4),
                archs::dsp_arch(4),
            ] {
                let name = machine.name.clone();
                check_function(&f, machine, CodegenOptions::heuristics_on(), k.args, &[])
                    .unwrap_or_else(|e| panic!("{} on {}: {e}", k.name, name));
            }
        }
    }

    /// MAC fusion helps the multiply-accumulate kernels on the DSP.
    #[test]
    fn dot4_uses_macs_on_dsp() {
        use aviv::{CodeGenerator, SlotOpcode};
        let f = DOT4.function();
        let gen = CodeGenerator::new(archs::dsp_arch(4));
        let mut syms = f.syms.clone();
        let mut layout = aviv_ir::MemLayout::for_function(&f);
        let r = gen
            .compile_block(&f.blocks[0].dag, &mut syms, &mut layout)
            .unwrap();
        let macs = r
            .instructions
            .iter()
            .flat_map(|i| i.slots.iter().flatten())
            .filter(|s| matches!(s.opcode, SlotOpcode::Complex(_)))
            .count();
        assert!(macs >= 2, "expected MAC fusion, got {macs}");
    }
}
