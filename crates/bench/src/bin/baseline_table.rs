//! Concurrent vs sequential: AVIV against the phase-ordered baseline on
//! the benchmark blocks and a set of random DSP-style blocks.

use aviv_bench::{compare_examples, compare_random, render_compare};

fn main() {
    println!("AVIV (concurrent) vs sequential phase-ordered baseline");
    println!("\nBenchmark blocks (example architecture):");
    print!("{}", render_compare(&compare_examples()));
    println!("\nRandom 12-op blocks (seeds 0..10):");
    print!("{}", render_compare(&compare_random(12, 0..10)));
    println!("\nRandom 20-op blocks (seeds 0..10):");
    print!("{}", render_compare(&compare_random(20, 0..10)));
}
