//! Compile the DSP kernel suite for several machines and report code
//! sizes — the workload family the paper's introduction motivates.
//!
//! Flags: `--json [dir]` additionally writes a machine-readable
//! `BENCH_kernels.json` snapshot (schema in `docs/benchmarking.md`)
//! into `dir` (default: the current directory).
//!
//! Besides the default configuration, each kernel is also compiled
//! with the analysis-bounds lookahead cutoff disabled
//! (`{kernel}+nobounds` rows), and a cheap subset additionally runs in
//! exhaustive mode (`{kernel}+exact` / `{kernel}+exact-nobounds`), so
//! the snapshot records the node-expansion savings the admissible
//! lower bounds buy without any code-quality movement. Every kernel
//! also gets a `{kernel}+validate` row timing a full compile plus
//! translation validation, so the validator's overhead lands in
//! `BENCH_kernels.json` and the baseline gate.

use aviv::verify::validate_asm;
use aviv::{CodeGenerator, CodegenOptions};
use aviv_bench::{all_kernels, BenchRow, BenchSnapshot, Kernel};
use aviv_ir::{Function, MemLayout};
use aviv_isdl::{archs, Machine};
use std::time::Instant;

/// Kernels cheap enough to run through the exhaustive covering mode.
const EXACT_KERNELS: [&str; 2] = ["dot4", "cmul"];

fn run_row(
    row_name: &str,
    machine: &Machine,
    f: &Function,
    options: CodegenOptions,
) -> Option<BenchRow> {
    let gen = CodeGenerator::new(machine.clone()).options(options);
    let mut syms = f.syms.clone();
    let mut layout = MemLayout::for_function(f);
    let t0 = Instant::now();
    let r = gen
        .compile_block(&f.blocks[0].dag, &mut syms, &mut layout)
        .ok()?;
    let wall = t0.elapsed();
    Some(BenchRow {
        name: row_name.to_string(),
        machine: machine.name.clone(),
        wall_ms: wall.as_secs_f64() * 1e3,
        instructions: r.report.instructions,
        spills: r.report.spills,
        node_expansions: r.report.node_expansions,
        peak_pressure: r.report.peak_pressure,
        stages_ms: Some(r.report.stages.into()),
    })
}

/// Time a whole-function compile *plus* render and translation
/// validation, so the `+validate` rows capture the validator's
/// end-to-end overhead. A divergence here is a compiler bug: fail the
/// bench run loudly rather than recording a bogus row.
fn run_validate_row(
    row_name: &str,
    machine: &Machine,
    f: &Function,
    options: CodegenOptions,
) -> Option<BenchRow> {
    let gen = CodeGenerator::new(machine.clone()).options(options);
    let t0 = Instant::now();
    let (program, report) = gen.compile_function(f).ok()?;
    let asm = program.render(gen.target());
    let tv = validate_asm(f, &asm, machine);
    let wall = t0.elapsed();
    if !tv.ok() {
        eprintln!(
            "{row_name} on {}: translation validation FAILED:",
            machine.name
        );
        for d in &tv.diagnostics {
            eprintln!("  {d}");
        }
        std::process::exit(1);
    }
    Some(BenchRow {
        name: row_name.to_string(),
        machine: machine.name.clone(),
        wall_ms: wall.as_secs_f64() * 1e3,
        instructions: report.total_instructions,
        spills: report.blocks.iter().map(|b| b.spills).sum(),
        node_expansions: report.blocks.iter().map(|b| b.node_expansions).sum(),
        peak_pressure: report
            .blocks
            .iter()
            .map(|b| b.peak_pressure)
            .max()
            .unwrap_or(0),
        stages_ms: None,
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json_dir = args.iter().position(|a| a == "--json").map(|i| {
        args.get(i + 1)
            .filter(|a| !a.starts_with('-'))
            .cloned()
            .unwrap_or_else(|| ".".to_string())
    });

    let machines = [
        archs::example_arch(4),
        archs::arch_two(4),
        archs::dsp_arch(4),
        archs::wide_arch(4),
        archs::single_alu(6),
    ];
    let variants = [
        ("", CodegenOptions::heuristics_on()),
        (
            "+nobounds",
            CodegenOptions::heuristics_on().with_analysis_bounds(false),
        ),
    ];
    let exact_variants = [
        ("+exact", CodegenOptions::heuristics_off()),
        (
            "+exact-nobounds",
            CodegenOptions::heuristics_off().with_analysis_bounds(false),
        ),
    ];

    let mut snapshot = BenchSnapshot::new("kernels");
    let mut pruned = 0usize;
    let mut compared = 0usize;
    print!("{:12}", "kernel");
    for m in &machines {
        print!(" | {:>10}", m.name);
    }
    println!();
    println!("{}", "-".repeat(12 + machines.len() * 13));
    for k in all_kernels() {
        let f = k.function();
        print!("{:12}", k.name);
        for machine in &machines {
            let mut expansions = Vec::new();
            for (suffix, options) in variants.iter().chain(
                exact_rows(&k)
                    .then_some(exact_variants.iter())
                    .into_iter()
                    .flatten(),
            ) {
                let row_name = format!("{}{suffix}", k.name);
                match run_row(&row_name, machine, &f, options.clone()) {
                    Some(row) => {
                        if suffix.is_empty() {
                            print!(" | {:>10}", row.instructions);
                        }
                        expansions.push(row.node_expansions);
                        snapshot.rows.push(row);
                    }
                    None if suffix.is_empty() => print!(" | {:>10}", "n/a"),
                    None => {}
                }
            }
            let validate_name = format!("{}+validate", k.name);
            if let Some(row) =
                run_validate_row(&validate_name, machine, &f, CodegenOptions::heuristics_on())
            {
                snapshot.rows.push(row);
            }
            // Pairs are (bounds on, bounds off); count strict wins.
            for pair in expansions.chunks(2) {
                if let [on, off] = pair {
                    compared += 1;
                    if on < off {
                        pruned += 1;
                    }
                }
            }
        }
        println!();
    }
    println!("\ncells: VLIW instructions for the kernel body (n/a = kernel uses");
    println!("an operation the machine does not implement).");
    println!(
        "analysis-bounds pruning strictly reduced node expansions on \
         {pruned}/{compared} on/off row pairs."
    );

    if let Some(dir) = json_dir {
        match snapshot.write_to(std::path::Path::new(&dir)) {
            Ok(path) => println!("wrote {}", path.display()),
            Err(e) => {
                eprintln!("cannot write snapshot to {dir}: {e}");
                std::process::exit(1);
            }
        }
    }
}

fn exact_rows(k: &Kernel) -> bool {
    EXACT_KERNELS.contains(&k.name)
}
