//! Compile the DSP kernel suite for several machines and report code
//! sizes — the workload family the paper's introduction motivates.

use aviv::{CodeGenerator, CodegenOptions};
use aviv_bench::all_kernels;
use aviv_ir::MemLayout;
use aviv_isdl::archs;

fn main() {
    let machines = [
        archs::example_arch(4),
        archs::arch_two(4),
        archs::dsp_arch(4),
        archs::wide_arch(4),
        archs::single_alu(6),
    ];
    print!("{:12}", "kernel");
    for m in &machines {
        print!(" | {:>10}", m.name);
    }
    println!();
    println!("{}", "-".repeat(12 + machines.len() * 13));
    for k in all_kernels() {
        let f = k.function();
        print!("{:12}", k.name);
        for machine in &machines {
            let gen = CodeGenerator::new(machine.clone()).options(CodegenOptions::heuristics_on());
            let mut syms = f.syms.clone();
            let mut layout = MemLayout::for_function(&f);
            match gen.compile_block(&f.blocks[0].dag, &mut syms, &mut layout) {
                Ok(r) => print!(" | {:>10}", r.report.instructions),
                Err(_) => print!(" | {:>10}", "n/a"),
            }
        }
        println!();
    }
    println!("\ncells: VLIW instructions for the kernel body (n/a = kernel uses");
    println!("an operation the machine does not implement).");
}
