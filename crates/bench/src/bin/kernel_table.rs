//! Compile the DSP kernel suite for several machines and report code
//! sizes — the workload family the paper's introduction motivates.
//!
//! Flags: `--json [dir]` additionally writes a machine-readable
//! `BENCH_kernels.json` snapshot (schema in `docs/benchmarking.md`)
//! into `dir` (default: the current directory).

use aviv::{CodeGenerator, CodegenOptions};
use aviv_bench::{all_kernels, BenchRow, BenchSnapshot};
use aviv_ir::MemLayout;
use aviv_isdl::archs;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json_dir = args.iter().position(|a| a == "--json").map(|i| {
        args.get(i + 1)
            .filter(|a| !a.starts_with('-'))
            .cloned()
            .unwrap_or_else(|| ".".to_string())
    });

    let machines = [
        archs::example_arch(4),
        archs::arch_two(4),
        archs::dsp_arch(4),
        archs::wide_arch(4),
        archs::single_alu(6),
    ];
    let mut snapshot = BenchSnapshot::new("kernels");
    print!("{:12}", "kernel");
    for m in &machines {
        print!(" | {:>10}", m.name);
    }
    println!();
    println!("{}", "-".repeat(12 + machines.len() * 13));
    for k in all_kernels() {
        let f = k.function();
        print!("{:12}", k.name);
        for machine in &machines {
            let gen = CodeGenerator::new(machine.clone()).options(CodegenOptions::heuristics_on());
            let mut syms = f.syms.clone();
            let mut layout = MemLayout::for_function(&f);
            let t0 = Instant::now();
            match gen.compile_block(&f.blocks[0].dag, &mut syms, &mut layout) {
                Ok(r) => {
                    let wall = t0.elapsed();
                    print!(" | {:>10}", r.report.instructions);
                    snapshot.rows.push(BenchRow {
                        name: k.name.to_string(),
                        machine: machine.name.clone(),
                        wall_ms: wall.as_secs_f64() * 1e3,
                        instructions: r.report.instructions,
                        spills: r.report.spills,
                        node_expansions: r.report.node_expansions,
                        peak_pressure: r.report.peak_pressure,
                        stages_ms: Some(r.report.stages.into()),
                    });
                }
                Err(_) => print!(" | {:>10}", "n/a"),
            }
        }
        println!();
    }
    println!("\ncells: VLIW instructions for the kernel body (n/a = kernel uses");
    println!("an operation the machine does not implement).");

    if let Some(dir) = json_dir {
        match snapshot.write_to(std::path::Path::new(&dir)) {
            Ok(path) => println!("wrote {}", path.display()),
            Err(e) => {
                eprintln!("cannot write snapshot to {dir}: {e}");
                std::process::exit(1);
            }
        }
    }
}
