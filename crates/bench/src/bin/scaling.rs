//! CPU-time scaling with basic-block size, heuristics on vs off —
//! reproducing the growth pattern behind the paper's CPU-time columns.
//!
//! Flags: `--full` raises the heuristics-off size limit from 10 to 14
//! operations (minutes of CPU).

use aviv_bench::{render_scaling, scaling_sweep};

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let off_limit = if full { 14 } else { 10 };
    let sizes = [4usize, 6, 8, 10, 12, 14, 18, 24, 32];
    let points = scaling_sweep(&sizes, off_limit, 42);
    print!("{}", render_scaling(&points));
    println!("\nHeuristics-off runs capped at {off_limit} operations.");
}
