//! CPU-time scaling with basic-block size, heuristics on vs off —
//! reproducing the growth pattern behind the paper's CPU-time columns.
//!
//! Flags: `--full` raises the heuristics-off size limit from 10 to 14
//! operations (minutes of CPU). `--json [dir]` additionally writes a
//! machine-readable `BENCH_scaling.json` snapshot (schema in
//! `docs/benchmarking.md`) into `dir` (default: the current directory).

use aviv_bench::{render_scaling, scaling_sweep, BenchRow, BenchSnapshot};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let json_dir = args.iter().position(|a| a == "--json").map(|i| {
        args.get(i + 1)
            .filter(|a| !a.starts_with('-'))
            .cloned()
            .unwrap_or_else(|| ".".to_string())
    });
    let off_limit = if full { 14 } else { 10 };
    let sizes = [4usize, 6, 8, 10, 12, 14, 18, 24, 32];
    let points = scaling_sweep(&sizes, off_limit, 42);
    print!("{}", render_scaling(&points));
    println!("\nHeuristics-off runs capped at {off_limit} operations.");

    if let Some(dir) = json_dir {
        let mut snapshot = BenchSnapshot::new("scaling");
        for p in &points {
            snapshot.rows.push(BenchRow {
                name: format!("rand{}", p.n_ops),
                machine: "exampleArch".to_string(),
                wall_ms: p.time_on.as_secs_f64() * 1e3,
                instructions: p.size_on,
                spills: p.spills_on,
                node_expansions: p.expansions_on,
                peak_pressure: p.pressure_on,
                stages_ms: Some(p.stages_on.into()),
            });
        }
        match snapshot.write_to(std::path::Path::new(&dir)) {
            Ok(path) => println!("wrote {}", path.display()),
            Err(e) => {
                eprintln!("cannot write snapshot to {dir}: {e}");
                std::process::exit(1);
            }
        }
    }
}
