//! CI gate for `BENCH_*.json` snapshots.
//!
//! Usage:
//!
//! ```text
//! bench_check <snapshot.json> [other-run.json]
//! bench_check --baseline <baseline.json> <current.json>
//! ```
//!
//! Verifies each file against the pinned schema (version and required
//! keys; see `aviv_bench::json::check_schema`). When two files are
//! given they must be snapshots of the same suite from repeated runs:
//! their deterministic skeletons — everything except wall times — have
//! to match byte for byte, or the run was nondeterministic and the job
//! fails.
//!
//! With `--baseline`, the current snapshot is diffed against a
//! committed baseline (see `results/baselines/`): schema or row-set
//! drift fails hard, while timing and metric movement is printed to
//! stdout as a markdown table for the PR artifact (see
//! `aviv_bench::json::diff_against_baseline`).

use aviv_bench::{check_schema, deterministic_skeleton, diff_against_baseline};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().is_some_and(|a| a == "--baseline") {
        args.remove(0);
        let [baseline_path, current_path] = args.as_slice() else {
            eprintln!("usage: bench_check --baseline <baseline.json> <current.json>");
            return ExitCode::FAILURE;
        };
        let read = |path: &String| match std::fs::read_to_string(path) {
            Ok(t) => Some(t),
            Err(e) => {
                eprintln!("cannot read {path}: {e}");
                None
            }
        };
        let (Some(baseline), Some(current)) = (read(baseline_path), read(current_path)) else {
            return ExitCode::FAILURE;
        };
        return match diff_against_baseline(&baseline, &current) {
            Ok(table) => {
                print!("{table}");
                eprintln!("{current_path}: baseline gate ok (vs {baseline_path})");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("{current_path}: baseline gate failed vs {baseline_path}: {e}");
                ExitCode::FAILURE
            }
        };
    }

    if args.is_empty() || args.len() > 2 {
        eprintln!(
            "usage: bench_check <snapshot.json> [other-run.json]\n\
             \u{20}      bench_check --baseline <baseline.json> <current.json>"
        );
        return ExitCode::FAILURE;
    }
    let mut docs = Vec::new();
    for path in &args {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        if let Err(e) = check_schema(&text) {
            eprintln!("{path}: schema check failed: {e}");
            return ExitCode::FAILURE;
        }
        println!("{path}: schema ok");
        docs.push(text);
    }
    if let [a, b] = docs.as_slice() {
        if deterministic_skeleton(a) != deterministic_skeleton(b) {
            eprintln!(
                "{} and {} disagree outside the timing fields: \
                 the suite is nondeterministic",
                args[0], args[1]
            );
            return ExitCode::FAILURE;
        }
        println!("deterministic skeletons match");
    }
    ExitCode::SUCCESS
}
