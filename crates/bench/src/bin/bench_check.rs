//! CI gate for `BENCH_*.json` snapshots.
//!
//! Usage: `bench_check <snapshot.json> [other-run.json]`
//!
//! Verifies each file against the pinned schema (version and required
//! keys; see `aviv_bench::json::check_schema`). When two files are
//! given they must be snapshots of the same suite from repeated runs:
//! their deterministic skeletons — everything except wall times — have
//! to match byte for byte, or the run was nondeterministic and the job
//! fails.

use aviv_bench::{check_schema, deterministic_skeleton};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.len() > 2 {
        eprintln!("usage: bench_check <snapshot.json> [other-run.json]");
        return ExitCode::FAILURE;
    }
    let mut docs = Vec::new();
    for path in &args {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        if let Err(e) = check_schema(&text) {
            eprintln!("{path}: schema check failed: {e}");
            return ExitCode::FAILURE;
        }
        println!("{path}: schema ok");
        docs.push(text);
    }
    if let [a, b] = docs.as_slice() {
        if deterministic_skeleton(a) != deterministic_skeleton(b) {
            eprintln!(
                "{} and {} disagree outside the timing fields: \
                 the suite is nondeterministic",
                args[0], args[1]
            );
            return ExitCode::FAILURE;
        }
        println!("deterministic skeletons match");
    }
    ExitCode::SUCCESS
}
