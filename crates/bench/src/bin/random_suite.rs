//! Differential fuzzing driver: compile and simulate N random programs
//! per architecture and report the pass rate. Exits nonzero on any
//! mismatch — useful as a long-running soak test.
//!
//! ```sh
//! cargo run --release -p aviv-bench --bin random_suite -- 200
//! ```

use aviv::CodegenOptions;
use aviv_bench::compare::example_arch_rand_config;
use aviv_ir::randdag::random_block;
use aviv_isdl::archs;
use aviv_vm::check_function;

fn main() {
    let n: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(100);
    let mut failures = 0usize;
    let mut runs = 0usize;
    for seed in 0..n {
        let n_ops = 3 + (seed % 18) as usize;
        let mut cfg = example_arch_rand_config(n_ops);
        cfg.const_prob = if seed % 3 == 0 { 0.3 } else { 0.0 };
        let f = random_block(&cfg, seed);
        let machines = [
            archs::example_arch(4),
            archs::example_arch(2),
            archs::arch_two(4),
            archs::dsp_arch(4),
            archs::wide_arch(3),
        ];
        for machine in machines {
            runs += 1;
            let name = machine.name.clone();
            let args = [seed as i64 % 100 - 50, 7, -3];
            if let Err(e) = check_function(&f, machine, CodegenOptions::heuristics_on(), &args, &[])
            {
                eprintln!("FAIL seed {seed} n_ops {n_ops} on {name}: {e}");
                failures += 1;
            }
        }
        if (seed + 1) % 50 == 0 {
            println!("... {} seeds done", seed + 1);
        }
    }
    println!("{runs} compile+simulate runs, {failures} failures");
    if failures > 0 {
        std::process::exit(1);
    }
}
