//! The paper's §VI "ongoing work", measured: the register-starved blocks
//! (Ex6/Ex7) with and without the register-pressure term in the
//! assignment cost function, against the spill-free optimum.

use aviv::{optimal_block, CodeGenerator, CodegenOptions, OptimalConfig};
use aviv_bench::table_examples;
use aviv_ir::MemLayout;
use aviv_isdl::{archs, Target};
use aviv_splitdag::SplitNodeDag;

fn main() {
    println!("Pressure-aware assignment cost (the paper's stated ongoing work)");
    println!();
    println!("Block | Hand | base Aviv (spills) | pressure-aware (spills)");
    println!("------+------+--------------------+------------------------");
    for ex in table_examples().iter().filter(|e| e.regs == 2) {
        let f = ex.function();
        let dag = &f.blocks[0].dag;
        let target = Target::new(archs::example_arch(ex.regs));
        let sndag = SplitNodeDag::build(dag, &target).expect("supported");
        let hand = optimal_block(dag, &sndag, &target, &OptimalConfig::default())
            .map_or_else(|| "-".into(), |r| r.instructions.to_string());
        let mut cells = Vec::new();
        for pa in [false, true] {
            let mut o = CodegenOptions::thorough();
            o.pressure_aware_assignment = pa;
            let gen = CodeGenerator::new(archs::example_arch(ex.regs)).options(o);
            let mut syms = f.syms.clone();
            let mut layout = MemLayout::for_function(&f);
            let r = gen
                .compile_block(dag, &mut syms, &mut layout)
                .expect("compiles");
            cells.push(format!("{} ({})", r.report.instructions, r.report.spills));
        }
        println!(
            "{:5} | {:4} | {:18} | {}",
            ex.name, hand, cells[0], cells[1]
        );
    }
    println!();
    println!("The paper: \"the optimal solutions for examples 6 and 7 did not");
    println!("require spills. These solutions were not found by AVIV because the");
    println!("initial functional unit assignment cost function did not detect");
    println!("that the assignments it made would result in spills to memory.\"");
}
