//! Regenerate the paper's Table II: Ex1–Ex5 on the reduced architecture
//! (U1 without SUB, no U3).
//!
//! Flags: `--fast` skips the heuristics-off and optimal columns.

use aviv_bench::{render, table2, TableConfig};

fn main() {
    let fast = std::env::args().any(|a| a == "--fast");
    let config = TableConfig {
        run_off: !fast,
        run_hand: !fast,
        thorough: true,
    };
    let rows = table2(&config);
    print!(
        "{}",
        render(
            "Table II: code generation for target architecture II",
            &rows
        )
    );
    println!("\nAviv column: heuristics on (heuristics off in parentheses).");
}
