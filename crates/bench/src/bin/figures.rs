//! Regenerate the data behind the paper's figures (2, 3, 4, 6, 7, 8, 9).

fn main() {
    print!("{}", aviv_bench::figures::all_figures());
}
