//! Warm-vs-cold serving benchmark: the wall-time case for the `avivd`
//! plan cache, measured over every bundled program×machine pair.
//!
//! Each pair is compiled `ITERATIONS` times cold (a fresh
//! [`PlanCache`] per compile — every block planned from scratch) and
//! `ITERATIONS` times warm (one shared cache, primed once — every
//! block answered from cache), asserting along the way that the warm
//! bytes are identical to the cold bytes.
//!
//! A third temperature, *restart*, measures the crash-safe persistence
//! path: the primed cache is snapshotted to disk once, and each
//! measured compile pays a fresh cache + [`aviv::load_snapshot`] +
//! compile — the cost of an `avivd --persist` restart's first request.
//!
//! Flags: `--json [dir]` additionally writes a `BENCH_serving.json`
//! snapshot (three rows per pair — `<program>:cold`, `<program>:warm`,
//! `<program>:restart` — with `cache_hits`/`cache_misses` recorded per
//! row); `--check` enforces the serving acceptance gates — warm and
//! restart passes are 100% cache hits, warm is at least
//! [`REQUIRED_SPEEDUP`]× faster than cold, restart at least
//! [`REQUIRED_RESTART_SPEEDUP`]× — and exits nonzero otherwise.

use aviv::{load_snapshot, save_snapshot, CodeGenerator, CodegenOptions, LoadOutcome, PlanCache};
use aviv_ir::parse_function;
use aviv_isdl::parse_machine;
use std::fmt::Write as _;
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

/// Measured compiles per temperature per pair: enough to average out
/// scheduler noise on sub-millisecond warm compiles.
const ITERATIONS: u32 = 20;

/// `--check` fails when warm wall time is not at least this many times
/// lower than cold.
const REQUIRED_SPEEDUP: f64 = 5.0;

/// `--check` fails when a restart (snapshot load + all-hits compile) is
/// not at least this many times faster than a cold compile.
const REQUIRED_RESTART_SPEEDUP: f64 = 2.0;

struct PairResult {
    program: String,
    machine: String,
    blocks: usize,
    instructions: usize,
    spills: usize,
    node_expansions: u64,
    peak_pressure: usize,
    cold_ms: f64,
    warm_ms: f64,
    warm_hits: usize,
    warm_misses: usize,
    restart_ms: f64,
    restart_hits: usize,
    restart_misses: usize,
    bytes_match: bool,
}

fn assets_dir() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../assets")
}

fn measure_pair(prog_name: &str, machine_name: &str) -> PairResult {
    let dir = assets_dir();
    let machine_src = std::fs::read_to_string(dir.join(format!("{machine_name}.isdl")))
        .expect("bundled machine readable");
    let program_src = std::fs::read_to_string(dir.join(format!("{prog_name}.av")))
        .expect("bundled program readable");
    let machine = parse_machine(&machine_src).expect("bundled machine parses");
    let function = parse_function(&program_src).expect("bundled program parses");
    let target = Arc::new(aviv_isdl::Target::new(machine));
    let options = CodegenOptions::heuristics_on;

    // Cold: a fresh cache per compile, so every block is planned from
    // scratch (and inserted — the same work a server's first request
    // for a program does).
    let mut cold_asm = Vec::new();
    let mut report = None;
    let t0 = Instant::now();
    for _ in 0..ITERATIONS {
        let generator = CodeGenerator::with_shared_target(Arc::clone(&target))
            .options(options())
            .with_cache(Arc::new(PlanCache::default()));
        let (program, r) = generator.compile_function(&function).expect("cold compile");
        cold_asm = program.render(generator.target()).into_bytes();
        report = Some(r);
    }
    let cold_ms = t0.elapsed().as_secs_f64() * 1e3 / f64::from(ITERATIONS);
    let report = report.expect("at least one iteration");

    // Warm: one shared cache, primed once; the measured compiles are
    // what a steady-state server pays per request.
    let cache = Arc::new(PlanCache::default());
    let prime = CodeGenerator::with_shared_target(Arc::clone(&target))
        .options(options())
        .with_cache(Arc::clone(&cache));
    prime.compile_function(&function).expect("priming compile");
    let mut warm_asm = Vec::new();
    let mut warm_report = None;
    let t0 = Instant::now();
    for _ in 0..ITERATIONS {
        let generator = CodeGenerator::with_shared_target(Arc::clone(&target))
            .options(options())
            .with_cache(Arc::clone(&cache));
        let (program, r) = generator.compile_function(&function).expect("warm compile");
        warm_asm = program.render(generator.target()).into_bytes();
        warm_report = Some(r);
    }
    let warm_ms = t0.elapsed().as_secs_f64() * 1e3 / f64::from(ITERATIONS);
    let warm_report = warm_report.expect("at least one iteration");

    // Restart: snapshot the primed cache once, then pay snapshot load +
    // all-hits compile per iteration — a persisted server's first
    // request after a restart.
    let snap = std::env::temp_dir().join(format!(
        "aviv_bench_serving_{}_{prog_name}_{machine_name}.avivcache",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&snap);
    save_snapshot(&snap, &cache).expect("snapshot saves");
    let mut restart_asm = Vec::new();
    let mut restart_report = None;
    let t0 = Instant::now();
    for _ in 0..ITERATIONS {
        let restored = Arc::new(PlanCache::default());
        match load_snapshot(&snap, &restored).expect("snapshot reads") {
            LoadOutcome::Loaded { .. } => {}
            other => panic!("snapshot failed to restore: {other:?}"),
        }
        let generator = CodeGenerator::with_shared_target(Arc::clone(&target))
            .options(options())
            .with_cache(restored);
        let (program, r) = generator
            .compile_function(&function)
            .expect("restart compile");
        restart_asm = program.render(generator.target()).into_bytes();
        restart_report = Some(r);
    }
    let restart_ms = t0.elapsed().as_secs_f64() * 1e3 / f64::from(ITERATIONS);
    let restart_report = restart_report.expect("at least one iteration");
    let _ = std::fs::remove_file(&snap);

    PairResult {
        program: prog_name.to_string(),
        machine: machine_name.to_string(),
        blocks: report.blocks.len(),
        instructions: report.total_instructions,
        spills: report.blocks.iter().map(|b| b.spills).sum(),
        node_expansions: report.blocks.iter().map(|b| b.node_expansions).sum(),
        peak_pressure: report
            .blocks
            .iter()
            .map(|b| b.peak_pressure)
            .max()
            .unwrap_or(0),
        cold_ms,
        warm_ms,
        warm_hits: warm_report.cache_hits,
        warm_misses: warm_report.cache_misses,
        restart_ms,
        restart_hits: restart_report.cache_hits,
        restart_misses: restart_report.cache_misses,
        bytes_match: cold_asm == warm_asm && cold_asm == restart_asm,
    }
}

/// Serialize the results as a `BENCH_serving.json` document: the
/// standard snapshot schema (version 1) with two rows per pair plus
/// the serving-specific `cache_hits`/`cache_misses` keys (additions
/// are allowed within a schema version).
fn to_json(results: &[PairResult]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(
        out,
        "  \"schema_version\": {},",
        aviv_bench::json::SCHEMA_VERSION
    );
    out.push_str("  \"suite\": \"serving\",\n  \"rows\": [");
    let mut first = true;
    for r in results {
        for (temp, wall_ms, hits, misses) in [
            ("cold", r.cold_ms, 0usize, r.blocks),
            ("warm", r.warm_ms, r.warm_hits, r.warm_misses),
            ("restart", r.restart_ms, r.restart_hits, r.restart_misses),
        ] {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str("\n    {\n");
            let _ = writeln!(out, "      \"name\": \"{}:{temp}\",", r.program);
            let _ = writeln!(out, "      \"machine\": \"{}\",", r.machine);
            let _ = writeln!(out, "      \"wall_ms\": {wall_ms:.3},");
            let _ = writeln!(out, "      \"instructions\": {},", r.instructions);
            let _ = writeln!(out, "      \"spills\": {},", r.spills);
            let _ = writeln!(out, "      \"node_expansions\": {},", r.node_expansions);
            let _ = writeln!(out, "      \"peak_pressure\": {},", r.peak_pressure);
            let _ = writeln!(out, "      \"cache_hits\": {hits},");
            let _ = writeln!(out, "      \"cache_misses\": {misses}");
            out.push_str("    }");
        }
    }
    out.push_str("\n  ]\n}\n");
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let check = args.iter().any(|a| a == "--check");
    let json_dir = args.iter().position(|a| a == "--json").map(|i| {
        args.get(i + 1)
            .filter(|a| !a.starts_with('-'))
            .cloned()
            .unwrap_or_else(|| ".".to_string())
    });

    let machines = ["fig3", "archII", "dsp_mac"];
    let programs = ["sum_loop", "dot4"];
    let mut results = Vec::new();
    println!(
        "{:22} | {:>9} | {:>9} | {:>10} | {:>8} | {:>10}",
        "pair", "cold ms", "warm ms", "restart ms", "speedup", "warm cache"
    );
    println!("{}", "-".repeat(84));
    for m in machines {
        for p in programs {
            let r = measure_pair(p, m);
            println!(
                "{:22} | {:>9.3} | {:>9.3} | {:>10.3} | {:>7.1}x | {:>4} hit {:>2} miss",
                format!("{p}@{m}"),
                r.cold_ms,
                r.warm_ms,
                r.restart_ms,
                r.cold_ms / r.warm_ms.max(1e-9),
                r.warm_hits,
                r.warm_misses,
            );
            results.push(r);
        }
    }
    println!(
        "\nmeans over {ITERATIONS} compiles; cold = fresh plan cache per \
         compile, warm = shared primed cache, restart = snapshot load + \
         all-hits compile."
    );

    if let Some(dir) = &json_dir {
        let path = Path::new(dir).join("BENCH_serving.json");
        let json = to_json(&results);
        aviv_bench::check_schema(&json).expect("serving snapshot matches the schema");
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("cannot write {}: {e}", path.display());
            std::process::exit(1);
        }
        println!("wrote {}", path.display());
    }

    if check {
        let mut failures = Vec::new();
        for r in &results {
            let pair = format!("{}@{}", r.program, r.machine);
            if r.warm_misses != 0 || r.warm_hits != r.blocks {
                failures.push(format!(
                    "{pair}: warm pass not 100% cache hits \
                     ({} hits / {} misses over {} blocks)",
                    r.warm_hits, r.warm_misses, r.blocks
                ));
            }
            if !r.bytes_match {
                failures.push(format!("{pair}: warm assembly differs from cold"));
            }
            let speedup = r.cold_ms / r.warm_ms.max(1e-9);
            if speedup < REQUIRED_SPEEDUP {
                failures.push(format!(
                    "{pair}: warm speedup {speedup:.1}x below the \
                     {REQUIRED_SPEEDUP:.0}x gate (cold {:.3} ms, warm {:.3} ms)",
                    r.cold_ms, r.warm_ms
                ));
            }
            if r.restart_misses != 0 || r.restart_hits != r.blocks {
                failures.push(format!(
                    "{pair}: restart pass not 100% cache hits \
                     ({} hits / {} misses over {} blocks)",
                    r.restart_hits, r.restart_misses, r.blocks
                ));
            }
            let restart_speedup = r.cold_ms / r.restart_ms.max(1e-9);
            if restart_speedup < REQUIRED_RESTART_SPEEDUP {
                failures.push(format!(
                    "{pair}: restart speedup {restart_speedup:.1}x below the \
                     {REQUIRED_RESTART_SPEEDUP:.0}x gate (cold {:.3} ms, \
                     restart {:.3} ms)",
                    r.cold_ms, r.restart_ms
                ));
            }
        }
        if !failures.is_empty() {
            for f in &failures {
                eprintln!("serving check failed: {f}");
            }
            std::process::exit(1);
        }
        println!(
            "serving check passed: warm passes are all-hits and \
             ≥{REQUIRED_SPEEDUP:.0}x faster; restart passes are all-hits \
             and ≥{REQUIRED_RESTART_SPEEDUP:.0}x faster"
        );
    }
}
