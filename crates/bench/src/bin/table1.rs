//! Regenerate the paper's Table I: Ex1–Ex7 on the Fig. 3 example
//! architecture, heuristics on and (parenthesized) off, plus the optimal
//! "By Hand" column.
//!
//! Flags: `--fast` skips the heuristics-off and optimal columns.

use aviv_bench::{render, table1, TableConfig};

fn main() {
    let fast = std::env::args().any(|a| a == "--fast");
    let config = TableConfig {
        run_off: !fast,
        run_hand: !fast,
        thorough: true,
    };
    let rows = table1(&config);
    print!(
        "{}",
        render(
            "Table I: code generation for the example target architecture (Fig. 3)",
            &rows
        )
    );
    println!("\nAviv column: heuristics on (heuristics off in parentheses).");
}
