//! Extra experiments beyond the paper's tables: concurrent (AVIV) vs
//! sequential (baseline) code generation, and CPU-time scaling with block
//! size — quantifying §VI's claim that the pruning heuristics make the
//! exponential search practical.

use crate::examples::Example;
use aviv::{CodeGenerator, CodegenOptions};
use aviv_baseline::BaselineGenerator;
use aviv_ir::randdag::{random_block, RandDagConfig};
use aviv_ir::MemLayout;
use aviv_isdl::{archs, Machine, Target};
use aviv_splitdag::SplitNodeDag;
use std::time::{Duration, Instant};

/// One row of the concurrent-vs-sequential comparison.
#[derive(Debug, Clone)]
pub struct CompareRow {
    /// Block name.
    pub name: String,
    /// AVIV instruction count.
    pub aviv: usize,
    /// Sequential baseline instruction count.
    pub baseline: usize,
    /// AVIV spills.
    pub aviv_spills: usize,
    /// Baseline spills.
    pub baseline_spills: usize,
}

/// Compare AVIV against the sequential baseline on one block.
pub fn compare_block(name: &str, f: &aviv_ir::Function, machine: Machine) -> CompareRow {
    let gen = CodeGenerator::new(machine.clone()).options(CodegenOptions::heuristics_on());
    let mut syms = f.syms.clone();
    let mut layout = MemLayout::for_function(f);
    let a = gen
        .compile_block(&f.blocks[0].dag, &mut syms, &mut layout)
        .expect("block compiles");

    let base = BaselineGenerator::new(machine);
    let mut syms = f.syms.clone();
    let mut layout = MemLayout::for_function(f);
    let b = base
        .compile_block(&f.blocks[0].dag, &mut syms, &mut layout)
        .expect("block compiles");

    CompareRow {
        name: name.to_string(),
        aviv: a.report.instructions,
        baseline: b.size,
        aviv_spills: a.report.spills,
        baseline_spills: b.spills,
    }
}

/// Run the comparison over the table examples.
pub fn compare_examples() -> Vec<CompareRow> {
    crate::examples::table_examples()
        .iter()
        .map(|ex: &Example| compare_block(ex.name, &ex.function(), archs::example_arch(ex.regs)))
        .collect()
}

/// Random-block configuration restricted to the operations the example
/// architecture implements.
pub fn example_arch_rand_config(n_ops: usize) -> RandDagConfig {
    RandDagConfig {
        n_ops,
        ops: vec![
            aviv_ir::Op::Add,
            aviv_ir::Op::Sub,
            aviv_ir::Op::Mul,
            aviv_ir::Op::Add,
            aviv_ir::Op::Mul,
        ],
        ..Default::default()
    }
}

/// Run the comparison over seeded random blocks of `n_ops` operations.
pub fn compare_random(n_ops: usize, seeds: std::ops::Range<u64>) -> Vec<CompareRow> {
    let cfg = example_arch_rand_config(n_ops);
    seeds
        .map(|seed| {
            let f = random_block(&cfg, seed);
            compare_block(&format!("rand{n_ops}/{seed}"), &f, archs::example_arch(4))
        })
        .collect()
}

/// Render comparison rows.
pub fn render_compare(rows: &[CompareRow]) -> String {
    let mut out = String::from(
        "Block        | Aviv | Baseline | Aviv spills | Baseline spills\n\
         -------------+------+----------+-------------+----------------\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:12} | {:4} | {:8} | {:11} | {}\n",
            r.name, r.aviv, r.baseline, r.aviv_spills, r.baseline_spills
        ));
    }
    let total_a: usize = rows.iter().map(|r| r.aviv).sum();
    let total_b: usize = rows.iter().map(|r| r.baseline).sum();
    out.push_str(&format!(
        "total        | {total_a:4} | {total_b:8} |  ({:.1}% smaller)\n",
        100.0 * (total_b as f64 - total_a as f64) / total_b as f64
    ));
    out
}

/// One point of the CPU-time scaling sweep.
#[derive(Debug, Clone)]
pub struct ScalePoint {
    /// Operation count of the random block.
    pub n_ops: usize,
    /// Original DAG nodes.
    pub orig_nodes: usize,
    /// Split-Node DAG nodes.
    pub sndag_nodes: usize,
    /// Assignment-space size.
    pub assignment_space: u128,
    /// Compile time with heuristics on.
    pub time_on: Duration,
    /// Compile time with heuristics off (only measured at small sizes).
    pub time_off: Option<Duration>,
    /// Instruction counts (on, off).
    pub size_on: usize,
    /// Heuristics-off instruction count when measured.
    pub size_off: Option<usize>,
    /// Covering-search node expansions with heuristics on.
    pub expansions_on: u64,
    /// Peak register-bank pressure with heuristics on.
    pub pressure_on: usize,
    /// Spills with heuristics on.
    pub spills_on: usize,
    /// Per-stage breakdown with heuristics on.
    pub stages_on: aviv::StageTimes,
}

/// Sweep block sizes, reproducing the CPU-time growth the paper reports
/// (0.1 s → 10.7 s heuristics-on; 0.2 s → 89 337 s off). `off_limit`
/// bounds the op count up to which the exhaustive mode runs.
pub fn scaling_sweep(sizes: &[usize], off_limit: usize, seed: u64) -> Vec<ScalePoint> {
    sizes
        .iter()
        .map(|&n_ops| {
            let cfg = example_arch_rand_config(n_ops);
            let f = random_block(&cfg, seed);
            let dag = &f.blocks[0].dag;
            let target = Target::new(archs::example_arch(4));
            let sndag = SplitNodeDag::build(dag, &target).expect("supported ops only");
            let stats = sndag.stats(dag);

            let gen =
                CodeGenerator::new(archs::example_arch(4)).options(CodegenOptions::heuristics_on());
            let t0 = Instant::now();
            let mut syms = f.syms.clone();
            let mut layout = MemLayout::for_function(&f);
            let on = gen
                .compile_block(dag, &mut syms, &mut layout)
                .expect("compiles");
            let time_on = t0.elapsed();

            let (time_off, size_off) = if n_ops <= off_limit {
                let gen = CodeGenerator::new(archs::example_arch(4))
                    .options(CodegenOptions::heuristics_off());
                let t0 = Instant::now();
                let mut syms = f.syms.clone();
                let mut layout = MemLayout::for_function(&f);
                let off = gen
                    .compile_block(dag, &mut syms, &mut layout)
                    .expect("compiles");
                (Some(t0.elapsed()), Some(off.report.instructions))
            } else {
                (None, None)
            };

            ScalePoint {
                n_ops,
                orig_nodes: stats.orig_nodes,
                sndag_nodes: stats.sn_nodes,
                assignment_space: stats.assignment_space,
                time_on,
                time_off,
                size_on: on.report.instructions,
                size_off,
                expansions_on: on.report.node_expansions,
                pressure_on: on.report.peak_pressure,
                spills_on: on.report.spills,
                stages_on: on.report.stages,
            }
        })
        .collect()
}

/// Render the scaling sweep.
pub fn render_scaling(points: &[ScalePoint]) -> String {
    let mut out = String::from(
        "n_ops | orig | SNDAG | assignments | on secs | off secs | on size | off size\n\
         ------+------+-------+-------------+---------+----------+---------+---------\n",
    );
    for p in points {
        out.push_str(&format!(
            "{:5} | {:4} | {:5} | {:>11} | {:7.3} | {:>8} | {:7} | {}\n",
            p.n_ops,
            p.orig_nodes,
            p.sndag_nodes,
            p.assignment_space.to_string(),
            p.time_on.as_secs_f64(),
            p.time_off
                .map_or("-".to_string(), |d| format!("{:.3}", d.as_secs_f64())),
            p.size_on,
            p.size_off.map_or("-".to_string(), |s| s.to_string()),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aviv_never_loses_to_baseline_on_examples() {
        for row in compare_examples() {
            assert!(
                row.aviv <= row.baseline,
                "{}: aviv {} > baseline {}",
                row.name,
                row.aviv,
                row.baseline
            );
        }
    }

    #[test]
    fn scaling_points_are_monotone_in_structure() {
        let pts = scaling_sweep(&[6, 12], 0, 7);
        assert_eq!(pts.len(), 2);
        assert!(pts[1].orig_nodes > pts[0].orig_nodes);
        assert!(pts[1].sndag_nodes > pts[0].sndag_nodes);
        assert!(pts[1].assignment_space >= pts[0].assignment_space);
    }

    #[test]
    fn render_helpers_are_complete() {
        let rows = compare_random(6, 0..2);
        let text = render_compare(&rows);
        assert!(text.contains("rand6/0") && text.contains("total"));
    }
}
