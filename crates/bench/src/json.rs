//! Machine-readable benchmark snapshots.
//!
//! Each bench binary can emit a `BENCH_<suite>.json` file next to its
//! text table so the performance trajectory of the generator is
//! diffable across commits by tooling, not just by eye. The format is
//! deliberately dependency-free (no serde in the workspace): a small
//! writer with a pinned key order, and a structural checker the CI
//! smoke job runs against every emitted file.
//!
//! Schema (version [`SCHEMA_VERSION`]):
//!
//! ```json
//! {
//!   "schema_version": 1,
//!   "suite": "kernels",
//!   "rows": [
//!     {
//!       "name": "dot4",
//!       "machine": "dspMac",
//!       "wall_ms": 1.234,
//!       "instructions": 7,
//!       "spills": 0,
//!       "node_expansions": 182,
//!       "peak_pressure": 3,
//!       "stages_ms": {
//!         "sndag": 0.1, "explore": 0.5, "cover": 0.4,
//!         "alloc": 0.1, "peephole": 0.0, "verify": 0.0
//!       }
//!     }
//!   ]
//! }
//! ```
//!
//! `stages_ms` is optional per row (suites that time whole compiles
//! rather than stages omit it). Wall times vary run to run; every other
//! field is deterministic, which is what the CI determinism gate checks.

use aviv::StageTimes;
use std::fmt::Write as _;

/// Version of the snapshot schema. Bump on any key rename/removal;
/// additions are allowed within a version.
pub const SCHEMA_VERSION: u32 = 1;

/// Per-stage wall-clock breakdown, in milliseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StageBreakdown {
    /// Split-Node DAG construction.
    pub sndag: f64,
    /// Assignment exploration.
    pub explore: f64,
    /// Clique generation + covering + scheduling.
    pub cover: f64,
    /// Register allocation.
    pub alloc: f64,
    /// Peephole cleanup.
    pub peephole: f64,
    /// Schedule/invariant verification.
    pub verify: f64,
}

impl From<StageTimes> for StageBreakdown {
    fn from(t: StageTimes) -> StageBreakdown {
        let ms = |d: std::time::Duration| d.as_secs_f64() * 1e3;
        StageBreakdown {
            sndag: ms(t.sndag),
            explore: ms(t.explore),
            cover: ms(t.cover),
            alloc: ms(t.alloc),
            peephole: ms(t.peephole),
            verify: ms(t.verify),
        }
    }
}

/// One measured compile.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRow {
    /// Workload name (kernel, example, or synthetic-block label).
    pub name: String,
    /// Machine description the workload was compiled for.
    pub machine: String,
    /// End-to-end wall time in milliseconds (nondeterministic).
    pub wall_ms: f64,
    /// VLIW instructions emitted.
    pub instructions: usize,
    /// Spills inserted.
    pub spills: usize,
    /// Covering-search node expansions (deterministic work measure).
    pub node_expansions: u64,
    /// Peak simultaneous live values in the most-loaded register bank.
    pub peak_pressure: usize,
    /// Optional per-stage wall-time breakdown.
    pub stages_ms: Option<StageBreakdown>,
}

/// A full `BENCH_<suite>.json` document.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchSnapshot {
    /// Suite name; the file is written as `BENCH_<suite>.json`.
    pub suite: String,
    /// Measured rows, in suite order.
    pub rows: Vec<BenchRow>,
}

impl BenchSnapshot {
    /// New empty snapshot for `suite`.
    pub fn new(suite: impl Into<String>) -> BenchSnapshot {
        BenchSnapshot {
            suite: suite.into(),
            rows: Vec::new(),
        }
    }

    /// The file name this snapshot is written under.
    pub fn file_name(&self) -> String {
        format!("BENCH_{}.json", self.suite)
    }

    /// Serialize with a pinned key order and `{:.3}` millisecond
    /// precision, so two runs with identical deterministic fields
    /// differ only in `wall_ms`/`stages_ms` digits.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema_version\": {SCHEMA_VERSION},");
        let _ = writeln!(out, "  \"suite\": {},", escape(&self.suite));
        out.push_str("  \"rows\": [");
        for (i, r) in self.rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {\n");
            let _ = writeln!(out, "      \"name\": {},", escape(&r.name));
            let _ = writeln!(out, "      \"machine\": {},", escape(&r.machine));
            let _ = writeln!(out, "      \"wall_ms\": {:.3},", r.wall_ms);
            let _ = writeln!(out, "      \"instructions\": {},", r.instructions);
            let _ = writeln!(out, "      \"spills\": {},", r.spills);
            let _ = writeln!(out, "      \"node_expansions\": {},", r.node_expansions);
            match r.stages_ms {
                None => {
                    let _ = writeln!(out, "      \"peak_pressure\": {}", r.peak_pressure);
                }
                Some(s) => {
                    let _ = writeln!(out, "      \"peak_pressure\": {},", r.peak_pressure);
                    out.push_str("      \"stages_ms\": { ");
                    let _ = write!(
                        out,
                        "\"sndag\": {:.3}, \"explore\": {:.3}, \"cover\": {:.3}, \
                         \"alloc\": {:.3}, \"peephole\": {:.3}, \"verify\": {:.3}",
                        s.sndag, s.explore, s.cover, s.alloc, s.peephole, s.verify
                    );
                    out.push_str(" }\n");
                }
            }
            out.push_str("    }");
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Write `BENCH_<suite>.json` into `dir`, returning the path.
    ///
    /// # Errors
    ///
    /// Propagates the I/O error when the file cannot be written.
    pub fn write_to(&self, dir: &std::path::Path) -> std::io::Result<std::path::PathBuf> {
        let path = dir.join(self.file_name());
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Structurally check a snapshot document: the schema version must
/// match [`SCHEMA_VERSION`] and every row must carry the required keys.
/// This is the CI gate against accidental schema drift; it is a
/// key-presence check, not a full JSON parser.
///
/// # Errors
///
/// Returns a message naming the first missing/mismatched piece.
pub fn check_schema(json: &str) -> Result<(), String> {
    let version_key = format!("\"schema_version\": {SCHEMA_VERSION}");
    if !json.contains(&version_key) {
        return Err(format!(
            "missing or mismatched schema version (want `{version_key}`)"
        ));
    }
    if !json.contains("\"suite\":") {
        return Err("missing `suite` field".to_string());
    }
    if !json.contains("\"rows\":") {
        return Err("missing `rows` field".to_string());
    }
    let rows = json.matches("\"name\":").count();
    for key in [
        "\"machine\":",
        "\"wall_ms\":",
        "\"instructions\":",
        "\"spills\":",
        "\"node_expansions\":",
        "\"peak_pressure\":",
    ] {
        let n = json.matches(key).count();
        if n != rows {
            return Err(format!("key {key} appears {n} times for {rows} rows"));
        }
    }
    Ok(())
}

/// One row of a parsed snapshot (see [`parse_snapshot`]). Numeric
/// fields are `u64` except the wall time; `stages_ms` is dropped (the
/// baseline gate never inspects it).
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedRow {
    /// Workload name.
    pub name: String,
    /// Machine the workload was compiled for.
    pub machine: String,
    /// End-to-end wall time in milliseconds (nondeterministic).
    pub wall_ms: f64,
    /// VLIW instructions emitted.
    pub instructions: u64,
    /// Spills inserted.
    pub spills: u64,
    /// Covering-search node expansions.
    pub node_expansions: u64,
    /// Peak register-bank occupancy.
    pub peak_pressure: u64,
}

/// A fully parsed `BENCH_*.json` document.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedSnapshot {
    /// Suite name.
    pub suite: String,
    /// Rows in file order.
    pub rows: Vec<ParsedRow>,
}

/// Parse a snapshot document properly (the baseline gate needs values,
/// not just key presence like [`check_schema`]). Rejects documents
/// whose `schema_version` is not [`SCHEMA_VERSION`].
///
/// # Errors
///
/// Returns a message naming the first structural problem.
pub fn parse_snapshot(json: &str) -> Result<ParsedSnapshot, String> {
    use aviv::jsonv::{self, Json};
    let doc = jsonv::parse(json).map_err(|e| e.to_string())?;
    let version = doc
        .get("schema_version")
        .and_then(Json::as_u64)
        .ok_or("missing `schema_version`")?;
    if version != u64::from(SCHEMA_VERSION) {
        return Err(format!(
            "schema version {version} (this tool understands {SCHEMA_VERSION})"
        ));
    }
    let suite = doc
        .get("suite")
        .and_then(Json::as_str)
        .ok_or("missing `suite`")?
        .to_string();
    let rows = doc
        .get("rows")
        .and_then(Json::as_arr)
        .ok_or("missing `rows`")?;
    let mut parsed = Vec::with_capacity(rows.len());
    for (i, row) in rows.iter().enumerate() {
        let str_field = |key: &str| -> Result<String, String> {
            row.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or(format!("row {i}: missing string `{key}`"))
        };
        let num_field = |key: &str| -> Result<u64, String> {
            row.get(key)
                .and_then(Json::as_u64)
                .ok_or(format!("row {i}: missing integer `{key}`"))
        };
        parsed.push(ParsedRow {
            name: str_field("name")?,
            machine: str_field("machine")?,
            wall_ms: row
                .get("wall_ms")
                .and_then(Json::as_f64)
                .ok_or(format!("row {i}: missing number `wall_ms`"))?,
            instructions: num_field("instructions")?,
            spills: num_field("spills")?,
            node_expansions: num_field("node_expansions")?,
            peak_pressure: num_field("peak_pressure")?,
        });
    }
    Ok(ParsedSnapshot {
        suite,
        rows: parsed,
    })
}

/// Diff a freshly measured snapshot against a committed baseline.
///
/// Hard failures (the CI gate) are **structural only**: unparsable
/// documents, a suite mismatch, or row-set drift — a workload identity
/// `(name, machine)` present on one side and missing on the other.
/// Everything else — wall-time movement, but also instruction/spill/
/// expansion/pressure changes, which are legitimate consequences of
/// generator changes — lands in the returned markdown table for humans
/// to read in the PR artifact, with changed metric cells marked.
///
/// # Errors
///
/// Returns the structural failure message.
pub fn diff_against_baseline(baseline: &str, current: &str) -> Result<String, String> {
    let base = parse_snapshot(baseline).map_err(|e| format!("baseline: {e}"))?;
    let cur = parse_snapshot(current).map_err(|e| format!("current: {e}"))?;
    if base.suite != cur.suite {
        return Err(format!(
            "suite mismatch: baseline `{}` vs current `{}`",
            base.suite, cur.suite
        ));
    }
    let key = |r: &ParsedRow| (r.name.clone(), r.machine.clone());
    let cur_keys: std::collections::BTreeSet<_> = cur.rows.iter().map(key).collect();
    let base_keys: std::collections::BTreeSet<_> = base.rows.iter().map(key).collect();
    let missing: Vec<_> = base_keys.difference(&cur_keys).collect();
    let added: Vec<_> = cur_keys.difference(&base_keys).collect();
    if !missing.is_empty() || !added.is_empty() {
        let fmt = |v: &[&(String, String)]| {
            v.iter()
                .map(|(n, m)| format!("{n}@{m}"))
                .collect::<Vec<_>>()
                .join(", ")
        };
        return Err(format!(
            "row-set drift in suite `{}`: missing [{}], added [{}]",
            base.suite,
            fmt(&missing),
            fmt(&added)
        ));
    }

    let by_key: std::collections::BTreeMap<_, _> = cur.rows.iter().map(|r| (key(r), r)).collect();
    let mut out = String::new();
    let _ = writeln!(out, "### Bench deltas: `{}` suite\n", base.suite);
    let _ = writeln!(
        out,
        "| workload | machine | wall ms (base → now) | Δ wall | instructions | \
         spills | expansions | pressure |"
    );
    let _ = writeln!(out, "|---|---|---|---|---|---|---|---|");
    for b in &base.rows {
        let c = by_key[&key(b)];
        let delta = if b.wall_ms > 0.0 {
            format!("{:+.0}%", (c.wall_ms - b.wall_ms) / b.wall_ms * 100.0)
        } else {
            "n/a".to_string()
        };
        let metric = |base_v: u64, cur_v: u64| {
            if base_v == cur_v {
                format!("{cur_v}")
            } else {
                format!("**{base_v} → {cur_v}**")
            }
        };
        let _ = writeln!(
            out,
            "| {} | {} | {:.3} → {:.3} | {} | {} | {} | {} | {} |",
            b.name,
            b.machine,
            b.wall_ms,
            c.wall_ms,
            delta,
            metric(b.instructions, c.instructions),
            metric(b.spills, c.spills),
            metric(b.node_expansions, c.node_expansions),
            metric(b.peak_pressure, c.peak_pressure),
        );
    }
    let _ = writeln!(
        out,
        "\nWall times are informational (runner-dependent); bold cells mark \
         deterministic metrics that moved. Row-set or schema drift fails the \
         gate instead of appearing here."
    );
    Ok(out)
}

/// Strip the nondeterministic fields (`wall_ms`, `stages_ms`) from a
/// snapshot document, leaving only the deterministic skeleton. Two runs
/// of the same suite at any `--jobs` value must agree on this skeleton;
/// the CI smoke job diffs it across repeated runs.
pub fn deterministic_skeleton(json: &str) -> String {
    json.lines()
        .filter(|l| {
            let t = l.trim_start();
            !t.starts_with("\"wall_ms\":") && !t.starts_with("\"stages_ms\":")
        })
        .collect::<Vec<_>>()
        .join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BenchSnapshot {
        BenchSnapshot {
            suite: "kernels".into(),
            rows: vec![
                BenchRow {
                    name: "dot4".into(),
                    machine: "dspMac".into(),
                    wall_ms: 1.2345,
                    instructions: 7,
                    spills: 0,
                    node_expansions: 182,
                    peak_pressure: 3,
                    stages_ms: Some(StageBreakdown {
                        sndag: 0.1,
                        explore: 0.5,
                        cover: 0.4,
                        alloc: 0.1,
                        peephole: 0.0,
                        verify: 0.0,
                    }),
                },
                BenchRow {
                    name: "rand12".into(),
                    machine: "exampleArch".into(),
                    wall_ms: 10.0,
                    instructions: 13,
                    spills: 1,
                    node_expansions: 999,
                    peak_pressure: 4,
                    stages_ms: None,
                },
            ],
        }
    }

    #[test]
    fn serializes_and_passes_schema_check() {
        let json = sample().to_json();
        check_schema(&json).unwrap();
        assert!(json.contains("\"schema_version\": 1"), "{json}");
        assert!(json.contains("\"wall_ms\": 1.234"), "{json}");
    }

    #[test]
    fn schema_check_rejects_drift() {
        let json = sample().to_json();
        assert!(check_schema(&json.replace("schema_version\": 1", "schema_version\": 2")).is_err());
        assert!(check_schema(&json.replace("\"spills\":", "\"spilled\":")).is_err());
        assert!(check_schema("{}").is_err());
    }

    #[test]
    fn skeleton_drops_only_timing() {
        let json = sample().to_json();
        let skel = deterministic_skeleton(&json);
        assert!(!skel.contains("wall_ms"));
        assert!(!skel.contains("stages_ms"));
        assert!(skel.contains("\"node_expansions\": 182"));
        // Same deterministic fields, different wall time → same skeleton.
        let mut slow = sample();
        slow.rows[0].wall_ms = 99.0;
        assert_eq!(skel, deterministic_skeleton(&slow.to_json()));
    }

    #[test]
    fn strings_are_escaped() {
        let mut s = sample();
        s.rows[0].name = "we\"ird\\name".into();
        let json = s.to_json();
        assert!(json.contains(r#""we\"ird\\name""#), "{json}");
    }

    #[test]
    fn file_name_embeds_suite() {
        assert_eq!(sample().file_name(), "BENCH_kernels.json");
    }

    #[test]
    fn parse_snapshot_round_trips_the_writer() {
        let snap = sample();
        let parsed = parse_snapshot(&snap.to_json()).unwrap();
        assert_eq!(parsed.suite, "kernels");
        assert_eq!(parsed.rows.len(), 2);
        assert_eq!(parsed.rows[0].name, "dot4");
        assert_eq!(parsed.rows[0].instructions, 7);
        assert_eq!(parsed.rows[1].node_expansions, 999);
        assert!((parsed.rows[1].wall_ms - 10.0).abs() < 1e-9);

        assert!(parse_snapshot("{}").is_err());
        let bad_version = snap
            .to_json()
            .replace("\"schema_version\": 1", "\"schema_version\": 9");
        assert!(parse_snapshot(&bad_version).is_err());
    }

    #[test]
    fn baseline_diff_tolerates_timing_but_rejects_row_drift() {
        let base = sample().to_json();
        // Timing-only movement: fine, reported in the table.
        let mut timing = sample();
        timing.rows[0].wall_ms *= 3.0;
        let table = diff_against_baseline(&base, &timing.to_json()).unwrap();
        assert!(table.contains("| dot4 |"), "{table}");
        assert!(table.contains("+200%"), "{table}");

        // Deterministic metric movement: still not a hard failure, but
        // marked in the table.
        let mut faster = sample();
        faster.rows[0].instructions = 5;
        let table = diff_against_baseline(&base, &faster.to_json()).unwrap();
        assert!(table.contains("**7 → 5**"), "{table}");

        // Row-set drift: hard failure naming the drifted workload.
        let mut dropped = sample();
        dropped.rows.pop();
        let e = diff_against_baseline(&base, &dropped.to_json()).unwrap_err();
        assert!(e.contains("row-set drift"), "{e}");
        assert!(e.contains("rand12@exampleArch"), "{e}");

        // Suite mismatch: hard failure.
        let mut other = sample();
        other.suite = "scaling".into();
        assert!(diff_against_baseline(&base, &other.to_json()).is_err());
    }
}
