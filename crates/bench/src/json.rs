//! Machine-readable benchmark snapshots.
//!
//! Each bench binary can emit a `BENCH_<suite>.json` file next to its
//! text table so the performance trajectory of the generator is
//! diffable across commits by tooling, not just by eye. The format is
//! deliberately dependency-free (no serde in the workspace): a small
//! writer with a pinned key order, and a structural checker the CI
//! smoke job runs against every emitted file.
//!
//! Schema (version [`SCHEMA_VERSION`]):
//!
//! ```json
//! {
//!   "schema_version": 1,
//!   "suite": "kernels",
//!   "rows": [
//!     {
//!       "name": "dot4",
//!       "machine": "dspMac",
//!       "wall_ms": 1.234,
//!       "instructions": 7,
//!       "spills": 0,
//!       "node_expansions": 182,
//!       "peak_pressure": 3,
//!       "stages_ms": {
//!         "sndag": 0.1, "explore": 0.5, "cover": 0.4,
//!         "alloc": 0.1, "peephole": 0.0, "verify": 0.0
//!       }
//!     }
//!   ]
//! }
//! ```
//!
//! `stages_ms` is optional per row (suites that time whole compiles
//! rather than stages omit it). Wall times vary run to run; every other
//! field is deterministic, which is what the CI determinism gate checks.

use aviv::StageTimes;
use std::fmt::Write as _;

/// Version of the snapshot schema. Bump on any key rename/removal;
/// additions are allowed within a version.
pub const SCHEMA_VERSION: u32 = 1;

/// Per-stage wall-clock breakdown, in milliseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StageBreakdown {
    /// Split-Node DAG construction.
    pub sndag: f64,
    /// Assignment exploration.
    pub explore: f64,
    /// Clique generation + covering + scheduling.
    pub cover: f64,
    /// Register allocation.
    pub alloc: f64,
    /// Peephole cleanup.
    pub peephole: f64,
    /// Schedule/invariant verification.
    pub verify: f64,
}

impl From<StageTimes> for StageBreakdown {
    fn from(t: StageTimes) -> StageBreakdown {
        let ms = |d: std::time::Duration| d.as_secs_f64() * 1e3;
        StageBreakdown {
            sndag: ms(t.sndag),
            explore: ms(t.explore),
            cover: ms(t.cover),
            alloc: ms(t.alloc),
            peephole: ms(t.peephole),
            verify: ms(t.verify),
        }
    }
}

/// One measured compile.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRow {
    /// Workload name (kernel, example, or synthetic-block label).
    pub name: String,
    /// Machine description the workload was compiled for.
    pub machine: String,
    /// End-to-end wall time in milliseconds (nondeterministic).
    pub wall_ms: f64,
    /// VLIW instructions emitted.
    pub instructions: usize,
    /// Spills inserted.
    pub spills: usize,
    /// Covering-search node expansions (deterministic work measure).
    pub node_expansions: u64,
    /// Peak simultaneous live values in the most-loaded register bank.
    pub peak_pressure: usize,
    /// Optional per-stage wall-time breakdown.
    pub stages_ms: Option<StageBreakdown>,
}

/// A full `BENCH_<suite>.json` document.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchSnapshot {
    /// Suite name; the file is written as `BENCH_<suite>.json`.
    pub suite: String,
    /// Measured rows, in suite order.
    pub rows: Vec<BenchRow>,
}

impl BenchSnapshot {
    /// New empty snapshot for `suite`.
    pub fn new(suite: impl Into<String>) -> BenchSnapshot {
        BenchSnapshot {
            suite: suite.into(),
            rows: Vec::new(),
        }
    }

    /// The file name this snapshot is written under.
    pub fn file_name(&self) -> String {
        format!("BENCH_{}.json", self.suite)
    }

    /// Serialize with a pinned key order and `{:.3}` millisecond
    /// precision, so two runs with identical deterministic fields
    /// differ only in `wall_ms`/`stages_ms` digits.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema_version\": {SCHEMA_VERSION},");
        let _ = writeln!(out, "  \"suite\": {},", escape(&self.suite));
        out.push_str("  \"rows\": [");
        for (i, r) in self.rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {\n");
            let _ = writeln!(out, "      \"name\": {},", escape(&r.name));
            let _ = writeln!(out, "      \"machine\": {},", escape(&r.machine));
            let _ = writeln!(out, "      \"wall_ms\": {:.3},", r.wall_ms);
            let _ = writeln!(out, "      \"instructions\": {},", r.instructions);
            let _ = writeln!(out, "      \"spills\": {},", r.spills);
            let _ = writeln!(out, "      \"node_expansions\": {},", r.node_expansions);
            match r.stages_ms {
                None => {
                    let _ = writeln!(out, "      \"peak_pressure\": {}", r.peak_pressure);
                }
                Some(s) => {
                    let _ = writeln!(out, "      \"peak_pressure\": {},", r.peak_pressure);
                    out.push_str("      \"stages_ms\": { ");
                    let _ = write!(
                        out,
                        "\"sndag\": {:.3}, \"explore\": {:.3}, \"cover\": {:.3}, \
                         \"alloc\": {:.3}, \"peephole\": {:.3}, \"verify\": {:.3}",
                        s.sndag, s.explore, s.cover, s.alloc, s.peephole, s.verify
                    );
                    out.push_str(" }\n");
                }
            }
            out.push_str("    }");
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Write `BENCH_<suite>.json` into `dir`, returning the path.
    ///
    /// # Errors
    ///
    /// Propagates the I/O error when the file cannot be written.
    pub fn write_to(&self, dir: &std::path::Path) -> std::io::Result<std::path::PathBuf> {
        let path = dir.join(self.file_name());
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Structurally check a snapshot document: the schema version must
/// match [`SCHEMA_VERSION`] and every row must carry the required keys.
/// This is the CI gate against accidental schema drift; it is a
/// key-presence check, not a full JSON parser.
///
/// # Errors
///
/// Returns a message naming the first missing/mismatched piece.
pub fn check_schema(json: &str) -> Result<(), String> {
    let version_key = format!("\"schema_version\": {SCHEMA_VERSION}");
    if !json.contains(&version_key) {
        return Err(format!(
            "missing or mismatched schema version (want `{version_key}`)"
        ));
    }
    if !json.contains("\"suite\":") {
        return Err("missing `suite` field".to_string());
    }
    if !json.contains("\"rows\":") {
        return Err("missing `rows` field".to_string());
    }
    let rows = json.matches("\"name\":").count();
    for key in [
        "\"machine\":",
        "\"wall_ms\":",
        "\"instructions\":",
        "\"spills\":",
        "\"node_expansions\":",
        "\"peak_pressure\":",
    ] {
        let n = json.matches(key).count();
        if n != rows {
            return Err(format!("key {key} appears {n} times for {rows} rows"));
        }
    }
    Ok(())
}

/// Strip the nondeterministic fields (`wall_ms`, `stages_ms`) from a
/// snapshot document, leaving only the deterministic skeleton. Two runs
/// of the same suite at any `--jobs` value must agree on this skeleton;
/// the CI smoke job diffs it across repeated runs.
pub fn deterministic_skeleton(json: &str) -> String {
    json.lines()
        .filter(|l| {
            let t = l.trim_start();
            !t.starts_with("\"wall_ms\":") && !t.starts_with("\"stages_ms\":")
        })
        .collect::<Vec<_>>()
        .join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BenchSnapshot {
        BenchSnapshot {
            suite: "kernels".into(),
            rows: vec![
                BenchRow {
                    name: "dot4".into(),
                    machine: "dspMac".into(),
                    wall_ms: 1.2345,
                    instructions: 7,
                    spills: 0,
                    node_expansions: 182,
                    peak_pressure: 3,
                    stages_ms: Some(StageBreakdown {
                        sndag: 0.1,
                        explore: 0.5,
                        cover: 0.4,
                        alloc: 0.1,
                        peephole: 0.0,
                        verify: 0.0,
                    }),
                },
                BenchRow {
                    name: "rand12".into(),
                    machine: "exampleArch".into(),
                    wall_ms: 10.0,
                    instructions: 13,
                    spills: 1,
                    node_expansions: 999,
                    peak_pressure: 4,
                    stages_ms: None,
                },
            ],
        }
    }

    #[test]
    fn serializes_and_passes_schema_check() {
        let json = sample().to_json();
        check_schema(&json).unwrap();
        assert!(json.contains("\"schema_version\": 1"), "{json}");
        assert!(json.contains("\"wall_ms\": 1.234"), "{json}");
    }

    #[test]
    fn schema_check_rejects_drift() {
        let json = sample().to_json();
        assert!(check_schema(&json.replace("schema_version\": 1", "schema_version\": 2")).is_err());
        assert!(check_schema(&json.replace("\"spills\":", "\"spilled\":")).is_err());
        assert!(check_schema("{}").is_err());
    }

    #[test]
    fn skeleton_drops_only_timing() {
        let json = sample().to_json();
        let skel = deterministic_skeleton(&json);
        assert!(!skel.contains("wall_ms"));
        assert!(!skel.contains("stages_ms"));
        assert!(skel.contains("\"node_expansions\": 182"));
        // Same deterministic fields, different wall time → same skeleton.
        let mut slow = sample();
        slow.rows[0].wall_ms = 99.0;
        assert_eq!(skel, deterministic_skeleton(&slow.to_json()));
    }

    #[test]
    fn strings_are_escaped() {
        let mut s = sample();
        s.rows[0].name = "we\"ird\\name".into();
        let json = s.to_json();
        assert!(json.contains(r#""we\"ird\\name""#), "{json}");
    }

    #[test]
    fn file_name_embeds_suite() {
        assert_eq!(sample().file_name(), "BENCH_kernels.json");
    }
}
