//! Generators for the paper's Table I and Table II.
//!
//! Each row reports, for one benchmark block on one architecture: the
//! original-DAG and Split-Node-DAG node counts, the register budget,
//! spills inserted, the optimal ("By Hand") instruction count, AVIV's
//! count with heuristics on and off, and the CPU times — the exact
//! columns of the paper's tables.

use crate::examples::Example;
use aviv::{optimal_block, CodeGenerator, CodegenOptions, OptimalConfig};
use aviv_ir::MemLayout;
use aviv_isdl::{archs, Machine, Target};
use aviv_splitdag::SplitNodeDag;
use std::time::{Duration, Instant};

/// One row of Table I / Table II.
#[derive(Debug, Clone)]
pub struct TableRow {
    /// Block name (Ex1..Ex7).
    pub name: &'static str,
    /// Original DAG node count.
    pub orig_nodes: usize,
    /// Split-Node DAG node count.
    pub sndag_nodes: usize,
    /// Registers per register file.
    pub regs: u32,
    /// Spills inserted by the heuristic run.
    pub spills: usize,
    /// Optimal instruction count (the paper's hand-coded column), when
    /// the optimal search was run and found a spill-free solution.
    pub hand: Option<usize>,
    /// AVIV's instruction count, heuristics on.
    pub aviv: usize,
    /// AVIV's instruction count, heuristics off (the parenthesized
    /// column), when run.
    pub aviv_off: Option<usize>,
    /// Compile time, heuristics on.
    pub time_on: Duration,
    /// Compile time, heuristics off, when run.
    pub time_off: Option<Duration>,
}

/// Which optional columns to compute.
#[derive(Debug, Clone, Copy)]
pub struct TableConfig {
    /// Run the exhaustive heuristics-off mode (the parenthesized columns).
    pub run_off: bool,
    /// Run the optimal search (the "By Hand" column).
    pub run_hand: bool,
    /// Use the heavier `thorough` preset for the Aviv column (the tables
    /// in EXPERIMENTS.md use it); `false` uses the fast default preset.
    pub thorough: bool,
}

impl Default for TableConfig {
    fn default() -> Self {
        TableConfig {
            run_off: true,
            run_hand: true,
            thorough: true,
        }
    }
}

/// Compile one example on one machine and fill a row.
pub fn run_row(ex: &Example, machine: Machine, config: &TableConfig) -> TableRow {
    let f = ex.function();
    let dag = &f.blocks[0].dag;
    let target = Target::new(machine.clone());
    let sndag = SplitNodeDag::build(dag, &target).expect("examples are supported");
    let stats = sndag.stats(dag);

    // Heuristics on (the `thorough` operating point; see EXPERIMENTS.md).
    let on_options = if config.thorough {
        CodegenOptions::thorough()
    } else {
        CodegenOptions::heuristics_on()
    };
    let gen = CodeGenerator::new(machine.clone()).options(on_options);
    let t0 = Instant::now();
    let mut syms = f.syms.clone();
    let mut layout = MemLayout::for_function(&f);
    let on = gen
        .compile_block(dag, &mut syms, &mut layout)
        .expect("examples compile");
    let time_on = t0.elapsed();

    // Heuristics off.
    let (aviv_off, time_off) = if config.run_off {
        let gen = CodeGenerator::new(machine.clone()).options(CodegenOptions::heuristics_off());
        let t0 = Instant::now();
        let mut syms = f.syms.clone();
        let mut layout = MemLayout::for_function(&f);
        let off = gen
            .compile_block(dag, &mut syms, &mut layout)
            .expect("examples compile");
        (Some(off.report.instructions), Some(t0.elapsed()))
    } else {
        (None, None)
    };

    // Optimal.
    let hand = if config.run_hand {
        optimal_block(dag, &sndag, &target, &OptimalConfig::default()).map(|r| r.instructions)
    } else {
        None
    };

    TableRow {
        name: ex.name,
        orig_nodes: stats.orig_nodes,
        sndag_nodes: stats.sn_nodes,
        regs: ex.regs,
        spills: on.report.spills,
        hand,
        aviv: on.report.instructions,
        aviv_off,
        time_on,
        time_off,
    }
}

/// Reproduce Table I: Ex1–Ex7 on the Fig. 3 example architecture.
pub fn table1(config: &TableConfig) -> Vec<TableRow> {
    crate::examples::table_examples()
        .iter()
        .map(|ex| run_row(ex, archs::example_arch(ex.regs), config))
        .collect()
}

/// Reproduce Table II: Ex1–Ex5 on the reduced architecture.
pub fn table2(config: &TableConfig) -> Vec<TableRow> {
    crate::examples::table2_examples()
        .iter()
        .map(|ex| run_row(ex, archs::arch_two(ex.regs), config))
        .collect()
}

/// Render rows in the paper's column layout.
pub fn render(title: &str, rows: &[TableRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!("{title}\n"));
    out.push_str(
        "Block | Orig #Nodes | SNDAG #Nodes | #Regs/File | #Spills | By Hand | Aviv | CPU secs\n",
    );
    out.push_str(
        "------+-------------+--------------+------------+---------+---------+------+---------\n",
    );
    for r in rows {
        let hand = r.hand.map_or("-".to_string(), |h| h.to_string());
        let aviv = match r.aviv_off {
            Some(off) => format!("{} ({})", r.aviv, off),
            None => r.aviv.to_string(),
        };
        let time = match r.time_off {
            Some(off) => format!("{:.3} ({:.3})", r.time_on.as_secs_f64(), off.as_secs_f64()),
            None => format!("{:.3}", r.time_on.as_secs_f64()),
        };
        out.push_str(&format!(
            "{:5} | {:11} | {:12} | {:10} | {:7} | {:7} | {:4} | {}\n",
            r.name, r.orig_nodes, r.sndag_nodes, r.regs, r.spills, hand, aviv, time
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Table I shape checks (the full table runs in the `table1` binary;
    /// this uses the cheap configuration).
    #[test]
    fn table1_shape_holds() {
        let config = TableConfig {
            run_off: false,
            run_hand: false,
            thorough: false,
        };
        let rows = table1(&config);
        assert_eq!(rows.len(), 7);
        for r in &rows {
            assert!(r.sndag_nodes > r.orig_nodes, "{}", r.name);
            assert!(r.aviv > 0);
        }
        // Ex1–Ex5 (4 regs/file) need no spills, as in the paper.
        for r in rows.iter().take(5) {
            assert_eq!(r.spills, 0, "{} spilled", r.name);
        }
        // Reduced registers never shrink code: Ex6 >= Ex4, Ex7 >= Ex5.
        assert!(rows[5].aviv >= rows[3].aviv);
        assert!(rows[6].aviv >= rows[4].aviv);
    }

    #[test]
    fn table2_shape_holds() {
        let config = TableConfig {
            run_off: false,
            run_hand: false,
            thorough: false,
        };
        let t1 = table1(&config);
        let t2 = table2(&config);
        assert_eq!(t2.len(), 5);
        for (r2, r1) in t2.iter().zip(&t1) {
            // Table II: same blocks, far smaller Split-Node DAGs.
            assert!(r2.sndag_nodes < r1.sndag_nodes, "{}", r2.name);
        }
    }

    #[test]
    fn render_contains_all_rows() {
        let config = TableConfig {
            run_off: false,
            run_hand: false,
            thorough: false,
        };
        let rows = table2(&config);
        let text = render("Table II", &rows);
        for r in &rows {
            assert!(text.contains(r.name));
        }
    }
}

#[cfg(test)]
mod pressure_aware_tests {
    use crate::examples::table_examples;
    use aviv::{CodeGenerator, CodegenOptions};
    use aviv_ir::MemLayout;
    use aviv_isdl::archs;

    /// The paper's §VI "ongoing work": a pressure term in the assignment
    /// cost function should find the spill-free solutions for the
    /// register-starved examples. It does: Ex7 drops from a spilled
    /// schedule to a spill-free one.
    #[test]
    fn pressure_aware_assignment_finds_spill_free_ex7() {
        let ex7 = &table_examples()[6];
        let f = ex7.function();
        let mut results = Vec::new();
        for pa in [false, true] {
            let mut o = CodegenOptions::thorough();
            o.pressure_aware_assignment = pa;
            let gen = CodeGenerator::new(archs::example_arch(2)).options(o);
            let mut syms = f.syms.clone();
            let mut layout = MemLayout::for_function(&f);
            let r = gen
                .compile_block(&f.blocks[0].dag, &mut syms, &mut layout)
                .unwrap();
            results.push((r.report.instructions, r.report.spills));
        }
        let (base, aware) = (results[0], results[1]);
        assert_eq!(aware.1, 0, "pressure-aware mode avoids spills on Ex7");
        assert!(
            aware.0 <= base.0,
            "pressure-aware {} > base {}",
            aware.0,
            base.0
        );
    }
}
