//! # aviv-bench — experiment harness for the AVIV reproduction
//!
//! Workloads, table generators, and figure regenerators for every table
//! and figure in the paper's evaluation (see `EXPERIMENTS.md` at the
//! repository root for the recorded results).

#![warn(missing_docs)]

pub mod compare;
pub mod examples;
pub mod figures;
pub mod json;
pub mod kernels;
pub mod tables;

pub use compare::{
    compare_examples, compare_random, render_compare, render_scaling, scaling_sweep,
};
pub use examples::{table2_examples, table_examples, Example};
pub use json::{
    check_schema, deterministic_skeleton, diff_against_baseline, parse_snapshot, BenchRow,
    BenchSnapshot, ParsedRow, ParsedSnapshot, StageBreakdown,
};
pub use kernels::{all_kernels, Kernel};
pub use tables::{render, run_row, table1, table2, TableConfig, TableRow};
