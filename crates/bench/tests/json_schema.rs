//! Golden-file pin of the `BENCH_*.json` snapshot schema.
//!
//! The snapshot format is consumed by out-of-repo tooling (CI artifact
//! diffing, perf-trajectory plots), so its shape is pinned to a golden
//! file: any serializer change that alters the bytes of a fixed
//! snapshot fails here and must bump `SCHEMA_VERSION` (and the golden)
//! deliberately.

use aviv_bench::{check_schema, deterministic_skeleton, BenchRow, BenchSnapshot, StageBreakdown};

/// A snapshot with every field pinned (wall times included — this is a
/// hand-constructed fixture, not a measurement).
fn fixture() -> BenchSnapshot {
    BenchSnapshot {
        suite: "kernels".into(),
        rows: vec![
            BenchRow {
                name: "dot4".into(),
                machine: "dspMac".into(),
                wall_ms: 1.5,
                instructions: 7,
                spills: 0,
                node_expansions: 182,
                peak_pressure: 3,
                stages_ms: Some(StageBreakdown {
                    sndag: 0.125,
                    explore: 0.5,
                    cover: 0.75,
                    alloc: 0.0625,
                    peephole: 0.03125,
                    verify: 0.03125,
                }),
            },
            BenchRow {
                name: "sum_loop".into(),
                machine: "archII".into(),
                wall_ms: 2.25,
                instructions: 11,
                spills: 1,
                node_expansions: 640,
                peak_pressure: 4,
                stages_ms: None,
            },
        ],
    }
}

/// Regenerate the golden after a deliberate schema change:
/// `cargo test -p aviv-bench --test json_schema -- --ignored regen_golden`
#[test]
#[ignore = "writes tests/golden/bench_snapshot.json; run with --ignored to regenerate"]
fn regen_golden() {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/bench_snapshot.json"
    );
    std::fs::write(path, fixture().to_json()).unwrap();
}

#[test]
fn snapshot_matches_golden_file() {
    let golden = include_str!("golden/bench_snapshot.json");
    let got = fixture().to_json();
    assert_eq!(
        got, golden,
        "BENCH_*.json schema drifted from the golden file; if the change \
         is intentional, bump SCHEMA_VERSION and regenerate the golden"
    );
}

#[test]
fn golden_passes_the_ci_schema_gate() {
    check_schema(include_str!("golden/bench_snapshot.json")).unwrap();
}

#[test]
fn serialization_is_deterministic() {
    assert_eq!(fixture().to_json(), fixture().to_json());
}

#[test]
fn skeleton_is_wall_time_invariant() {
    let mut jittered = fixture();
    jittered.rows[0].wall_ms = 123.456;
    jittered.rows[1].wall_ms = 0.001;
    assert_eq!(
        deterministic_skeleton(&fixture().to_json()),
        deterministic_skeleton(&jittered.to_json())
    );
}
