//! Human-readable explanation of a compilation result: which units ran
//! what, where the transfers went, what got spilled, and the final
//! schedule — the narrative behind the numbers in [`BlockReport`].
//!
//! [`BlockReport`]: crate::codegen::BlockReport

use crate::codegen::BlockResult;
use crate::covergraph::{CnKind, CoverGraph, Operand, Resource};
use aviv_ir::SymbolTable;
use aviv_isdl::Target;
use std::fmt::Write as _;

impl BlockResult {
    /// Render a step-by-step explanation of the compiled block.
    pub fn explain(&self, target: &Target, syms: &SymbolTable) -> String {
        let mut out = String::new();
        let r = &self.report;
        let _ = writeln!(
            out,
            "block: {} DAG nodes -> {} split-node DAG nodes \
             (assignment space {}, {} enumerated, {} explored)",
            r.orig_nodes,
            r.sndag_nodes,
            r.assignment_space,
            r.assignments_enumerated,
            r.assignments_explored
        );
        let _ = writeln!(
            out,
            "result: {} instructions, {} spill(s), peephole removed {}, {:.1} ms",
            r.instructions,
            r.spills,
            r.peephole_removed,
            r.time.as_secs_f64() * 1e3
        );
        for s in &self.schedule.spills {
            let kind = if s.spill.is_some() {
                "spilled to memory"
            } else {
                "rematerialized"
            };
            let _ = writeln!(
                out,
                "  value {} {} (slot `{}`)",
                s.victim,
                kind,
                syms.name(s.slot)
            );
        }
        for (t, step) in self.schedule.steps.iter().enumerate() {
            let items: Vec<String> = step
                .iter()
                .map(|&n| describe_node(&self.graph, target, syms, n))
                .collect();
            let _ = writeln!(out, "  step {t:3}: {}", items.join(" | "));
        }
        out
    }
}

fn describe_node(
    graph: &CoverGraph,
    target: &Target,
    syms: &SymbolTable,
    n: crate::covergraph::CnId,
) -> String {
    let node = graph.node(n);
    match &node.kind {
        CnKind::Op { unit, op, .. } => {
            format!("{}:{}", target.machine.unit(*unit).name, op)
        }
        CnKind::Complex { unit, index, .. } => format!(
            "{}:{}",
            target.machine.unit(*unit).name,
            target.machine.complexes()[*index].name
        ),
        CnKind::Move { from, to, .. } => format!(
            "mov {}->{}",
            target.machine.bank(*from).name,
            target.machine.bank(*to).name
        ),
        CnKind::LoadVar { sym, to, .. } => {
            format!("ld {}->{}", syms.name(*sym), target.machine.bank(*to).name)
        }
        CnKind::StoreVar { sym, .. } => format!("st {}", syms.name(*sym)),
        CnKind::LoadDyn { bank, .. } => {
            format!("ld mem[]->{}", target.machine.bank(*bank).name)
        }
        CnKind::StoreDyn { .. } => "st mem[]".to_string(),
    }
}

/// Graphviz export of a cover graph with its schedule: nodes are grouped
/// by instruction (same-rank clusters), colored by resource.
pub fn covergraph_to_dot(
    graph: &CoverGraph,
    target: &Target,
    syms: &SymbolTable,
    schedule: Option<&crate::cover::Schedule>,
) -> String {
    let mut out = String::from("digraph cover {\n  rankdir=TB;\n  node [fontsize=10];\n");
    let step_of = schedule.map(|s| s.step_of(graph.len()));
    for id in graph.alive() {
        let node = graph.node(id);
        let color = match node.resource() {
            Resource::Unit(_) => "lightblue",
            Resource::Bus(_) => "lightgrey",
        };
        let mut label = describe_node(graph, target, syms, id);
        if let Some(steps) = &step_of {
            if let Some(t) = steps[id.index()] {
                let _ = write!(label, "\\n@{t}");
            }
        }
        let _ = writeln!(
            out,
            "  {id} [label=\"{id}: {label}\", style=filled, fillcolor={color}];"
        );
        for a in &node.args {
            if let Operand::Cn(c) = a {
                let _ = writeln!(out, "  {c} -> {id};");
            }
        }
        for d in &node.deps {
            let _ = writeln!(out, "  {d} -> {id} [style=dashed];");
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CodeGenerator, CodegenOptions};
    use aviv_ir::{parse_function, MemLayout};
    use aviv_isdl::archs;

    #[test]
    fn explain_mentions_schedule_and_spills() {
        let f = parse_function(
            "func f(a, b, c, d, e, g) {
                t1 = a + b; t2 = c + d; t3 = e + g;
                t4 = t1 * t2; t5 = t4 - t3; out = t5 + t1;
            }",
        )
        .unwrap();
        let gen =
            CodeGenerator::new(archs::example_arch(2)).options(CodegenOptions::heuristics_on());
        let mut syms = f.syms.clone();
        let mut layout = MemLayout::for_function(&f);
        let r = gen
            .compile_block(&f.blocks[0].dag, &mut syms, &mut layout)
            .unwrap();
        let text = r.explain(gen.target(), &syms);
        assert!(text.contains("step"), "{text}");
        assert!(text.contains("instructions"), "{text}");
        // The step count in the explanation matches the report.
        let steps = text.matches("  step").count();
        assert_eq!(steps, r.report.instructions);
    }

    #[test]
    fn dot_export_is_wellformed() {
        let f = parse_function("func f(a, b) { x = a * b + 1; }").unwrap();
        let gen = CodeGenerator::new(archs::example_arch(4));
        let mut syms = f.syms.clone();
        let mut layout = MemLayout::for_function(&f);
        let r = gen
            .compile_block(&f.blocks[0].dag, &mut syms, &mut layout)
            .unwrap();
        let dot = covergraph_to_dot(&r.graph, gen.target(), &syms, Some(&r.schedule));
        assert!(dot.starts_with("digraph cover {"));
        assert_eq!(dot.matches('{').count(), dot.matches('}').count());
        assert!(dot.contains("@0"), "schedule steps annotated\n{dot}");
        for id in r.graph.alive() {
            assert!(dot.contains(&format!("{id} [label=")), "{id} missing");
        }
    }
}
