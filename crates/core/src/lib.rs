//! # aviv — the AVIV retargetable code generator
//!
//! Reproduction of Hanono & Devadas, *"Instruction Selection, Resource
//! Allocation, and Scheduling in the AVIV Retargetable Code Generator"*
//! (DAC 1998): concurrent instruction selection, resource allocation, and
//! scheduling by covering the Split-Node DAG with a minimal set of legal
//! maximal cliques.

#![warn(missing_docs)]
// The generator's panic-free contract (see `docs/robustness.md`) is
// enforced statically: no bare `unwrap()` in shipped code. Use
// `expect("reason")` for genuinely unreachable states, or return a
// structured `CodegenError`/`Diagnostic`. Test modules are exempt.
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod assign;
pub mod budget;
pub mod cache;
pub mod cliques;
pub mod codegen;
pub mod cover;
pub mod covergraph;
pub mod emit;
pub mod faults;
pub mod invariants;
pub mod jsonv;
pub mod optimal;
pub mod options;
pub mod peephole;
pub mod persist;
pub mod regalloc;
pub mod report;
pub mod wire;

pub use assign::{explore, Assignment, ExploreResult, ExploreTrace};
pub use budget::{Budget, CancelToken, Exhaustion};
pub use cache::{CacheKey, CacheStats, PlanCache, DEFAULT_CACHE_CAPACITY};
pub use codegen::{
    register_outer_pool, BlockPlan, BlockReport, BlockResult, CodeGenerator, CodegenError,
    CompileReport, CoverMode, Downgrade, DowngradeReason, FunctionReport, StageTimes,
};
pub use cover::{
    cover, cover_budgeted, cover_sequential, cover_sequential_budgeted, peak_pressure,
    verify_schedule, CoverError, Schedule, SpillRecord,
};
pub use covergraph::{CnId, CnKind, CoverGraph, CoverNode, Operand, Resource};
pub use emit::{
    AsmOperand, ControlOp, SlotOp, SlotOpcode, TransferKind, TransferOp, VliwInstruction,
    VliwProgram,
};
pub use faults::{FaultConfig, FaultKind, INJECTED_PANIC};
pub use invariants::{verify_block, verify_program, verify_stage, Stage, StageState};
pub use optimal::{optimal_block, OptimalConfig, OptimalResult};
pub use options::CodegenOptions;
pub use persist::{load_snapshot, save_snapshot, LoadOutcome};
pub use regalloc::{
    allocate, allocate_budgeted, verify_allocation, AllocFailure, Allocation, Reg, RegAllocError,
};
pub use report::covergraph_to_dot;

// Re-export the shared static-analysis crate (diagnostics framework and
// the ISDL machine lint) so downstream users need only depend on `aviv`.
pub use aviv_verify as verify;
pub use aviv_verify::{lint_machine, Code, Diagnostic, Severity};
