//! Covering the assignment with a minimum-cost set of cliques (§IV-D/E).
//!
//! "Our covering algorithm begins with an empty solution set. It then
//! selects a maximal clique that covers the largest number of remaining
//! uncovered nodes whose children have all been covered ... and whose
//! register requirements do not exceed the available resources. ... After
//! selecting the clique, the remaining cliques are shrunk so that they no
//! longer include any of the covered nodes." Ties break on a lookahead
//! estimate; when every candidate would blow a register bank, a value is
//! spilled (Fig. 9) and the cliques are regenerated.
//!
//! The order in which cliques are selected **is** the schedule (§IV-E).

use crate::budget::{Budget, Exhaustion};
use crate::cliques::{gen_max_cliques_budgeted, legalize, ParallelismMatrix};
use crate::covergraph::{CnId, CoverGraph, Operand};
use crate::options::CodegenOptions;
use aviv_ir::{BitSet, Sym, SymbolTable};
use aviv_isdl::{BankId, Target};
use aviv_verify::{Code, Diagnostic};
use std::error::Error;
use std::fmt;

/// A spill inserted during covering, with everything the peephole pass
/// needs to try undoing it.
#[derive(Debug, Clone)]
pub struct SpillRecord {
    /// The memory slot.
    pub slot: Sym,
    /// The spilled value.
    pub victim: CnId,
    /// The spill-store node (`None` for rematerialized loads).
    pub spill: Option<CnId>,
    /// Reload chain tails per destination bank (informational; the
    /// peephole pass re-derives tails from the graph).
    pub loads: Vec<(BankId, CnId)>,
    /// Every node created for this spill (stores, moves, loads).
    pub nodes: Vec<CnId>,
}

/// The covering solution: an ordered set of shrunk cliques.
#[derive(Debug, Clone)]
pub struct Schedule {
    /// One entry per VLIW instruction, in execution order; each lists the
    /// cover nodes grouped into that instruction.
    pub steps: Vec<Vec<CnId>>,
    /// Spills inserted along the way.
    pub spills: Vec<SpillRecord>,
}

impl Schedule {
    /// Number of instructions (the paper's cost function).
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// True when the block needed no instructions.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// The step index of each node.
    pub fn step_of(&self, graph_len: usize) -> Vec<Option<usize>> {
        let mut out = vec![None; graph_len];
        for (t, step) in self.steps.iter().enumerate() {
            for &n in step {
                out[n.index()] = Some(t);
            }
        }
        out
    }
}

/// Failure of the covering engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoverError {
    /// Register pressure could not be relieved (every live value is
    /// pinned by a block live-out and no bank has room).
    RegisterPressure {
        /// The bank that could not be relieved.
        bank: BankId,
    },
    /// Internal safety valve: the spill loop did not converge.
    SpillLimit,
    /// The cooperative [`Budget`] ran out mid-covering; the driver
    /// reacts by stepping down its degradation ladder.
    Budget(Exhaustion),
    /// A defect the engine used to panic (or silently loop) on, reported
    /// as a structured diagnostic instead: a wedged dependence frontier,
    /// an uncoverable node, or a spill-machinery precondition violation.
    Internal(Diagnostic),
}

impl fmt::Display for CoverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoverError::RegisterPressure { bank } => {
                write!(f, "cannot relieve register pressure in bank {bank}")
            }
            CoverError::SpillLimit => write!(f, "spill loop failed to converge"),
            CoverError::Budget(why) => write!(f, "covering budget ran out: {why}"),
            CoverError::Internal(d) => write!(f, "covering engine defect: {d}"),
        }
    }
}

impl Error for CoverError {}

/// Dynamic covering state recomputed after every selection.
struct State {
    /// Scheduled nodes.
    covered: BitSet,
    /// Uncovered alive nodes whose predecessors are all covered.
    ready: Vec<CnId>,
    /// Remaining uncovered consumers per node (values only).
    remaining: Vec<usize>,
    /// Live register values per bank.
    pressure: Vec<usize>,
    /// Nodes pinned live to the end of the block.
    pinned: BitSet,
}

impl State {
    fn compute(graph: &CoverGraph, target: &Target, covered: &BitSet) -> State {
        let n = graph.len();
        let mut pinned = BitSet::new(n);
        for &(_, operand) in graph.live_out() {
            if let Operand::Cn(c) = operand {
                pinned.insert(c.index());
            }
        }
        let mut remaining = vec![0usize; n];
        let mut ready = Vec::new();
        for id in graph.alive() {
            remaining[id.index()] = graph
                .uses(id)
                .iter()
                .filter(|u| !covered.contains(u.index()))
                .count();
            if !covered.contains(id.index())
                && graph.preds(id).iter().all(|p| covered.contains(p.index()))
            {
                ready.push(id);
            }
        }
        let mut pressure = vec![0usize; target.machine.banks().len()];
        for id in graph.alive() {
            if !covered.contains(id.index()) {
                continue;
            }
            if let Some(bank) = graph.node(id).dest_bank(target) {
                if remaining[id.index()] > 0 || pinned.contains(id.index()) {
                    pressure[bank.index()] += 1;
                }
            }
        }
        State {
            covered: covered.clone(),
            ready,
            remaining,
            pressure,
            pinned,
        }
    }

    /// Anti-wedge selection policy: scheduling `group` must not leave any
    /// bank completely full unless at least one value live in that bank
    /// will be consumable in the very next step (a consumer with every
    /// other predecessor already covered). Greedy max-cover otherwise
    /// parks far-future values in the last registers of scarce banks,
    /// which wedges the covering loop into spill thrashing.
    fn policy_ok(&self, graph: &CoverGraph, target: &Target, group: &[CnId]) -> bool {
        let Some(p_after) = self.pressure_after(graph, target, group) else {
            return false;
        };
        let done = |id: CnId| self.covered.contains(id.index()) || group.contains(&id);
        for (bi, &load) in p_after.iter().enumerate() {
            if load < target.machine.banks()[bi].size as usize {
                continue;
            }
            // The bank is full after this step: some live value there must
            // have a consumer that is ready right afterwards.
            let mut consumable = false;
            'values: for id in graph.alive() {
                if !done(id) {
                    continue;
                }
                if graph.node(id).dest_bank(target) != Some(aviv_isdl::BankId(bi as u32)) {
                    continue;
                }
                // Live after the group?
                let live =
                    self.pinned.contains(id.index()) || graph.uses(id).iter().any(|u| !done(*u));
                if !live {
                    continue;
                }
                for &u in graph.uses(id) {
                    if done(u) {
                        continue;
                    }
                    if graph.preds(u).iter().all(|p| done(*p)) {
                        consumable = true;
                        break 'values;
                    }
                }
            }
            if !consumable {
                return false;
            }
        }
        true
    }

    /// Bank loads after scheduling `group`: returns `None` when any bank
    /// would exceed its size.
    fn pressure_after(
        &self,
        graph: &CoverGraph,
        target: &Target,
        group: &[CnId],
    ) -> Option<Vec<usize>> {
        let mut p = self.pressure.clone();
        // Values dying: all remaining uses are inside `group`.
        for id in graph.alive() {
            if !self.covered.contains(id.index()) || self.pinned.contains(id.index()) {
                continue;
            }
            let rem = self.remaining[id.index()];
            if rem == 0 {
                continue;
            }
            let uses_in_group = graph.uses(id).iter().filter(|u| group.contains(u)).count();
            if uses_in_group >= rem {
                if let Some(bank) = graph.node(id).dest_bank(target) {
                    p[bank.index()] -= 1;
                }
            }
        }
        // New definitions.
        for &g in group {
            if let Some(bank) = graph.node(g).dest_bank(target) {
                p[bank.index()] += 1;
            }
        }
        for (bi, &load) in p.iter().enumerate() {
            if load > target.machine.banks()[bi].size as usize {
                return None;
            }
        }
        Some(p)
    }
}

/// Clique pool over the *current* uncovered node set.
struct Pool {
    matrix: ParallelismMatrix,
    cliques: Vec<BitSet>,
}

impl Pool {
    fn generate(
        graph: &CoverGraph,
        target: &Target,
        covered: &BitSet,
        options: &CodegenOptions,
        budget: &Budget,
    ) -> Pool {
        let nodes: Vec<CnId> = graph
            .alive()
            .into_iter()
            .filter(|n| !covered.contains(n.index()))
            .collect();
        let matrix = ParallelismMatrix::build(graph, target, &nodes, options.clique_level_window);
        let raw = gen_max_cliques_budgeted(&matrix, budget);
        let cliques = legalize(raw, &matrix, graph, target);
        Pool { matrix, cliques }
    }

    /// The ready, uncovered members of clique `ci` (its shrunk form).
    fn ready_members(&self, ci: usize, state: &State) -> Vec<CnId> {
        self.cliques[ci]
            .iter()
            .map(|i| self.matrix.ids[i])
            .filter(|id| !state.covered.contains(id.index()) && state.ready.contains(id))
            .collect()
    }
}

/// Cover `graph` with a minimal set of legal cliques, producing the
/// schedule. May insert spills (mutating the graph and `syms`).
///
/// # Errors
///
/// See [`CoverError`]. On a validated machine with bank sizes ≥ 2 this
/// only fails when live-out values alone exceed a bank.
pub fn cover(
    graph: &mut CoverGraph,
    target: &Target,
    syms: &mut SymbolTable,
    options: &CodegenOptions,
) -> Result<Schedule, CoverError> {
    cover_budgeted(graph, target, syms, options, &Budget::unlimited())
}

/// [`cover`] under a cooperative [`Budget`]: the selection loop, the
/// lookahead estimator, and clique regeneration each charge fuel as they
/// expand work, and the engine returns [`CoverError::Budget`] as soon as
/// the allotment runs out or the deadline passes.
///
/// # Errors
///
/// See [`CoverError`].
pub fn cover_budgeted(
    graph: &mut CoverGraph,
    target: &Target,
    syms: &mut SymbolTable,
    options: &CodegenOptions,
    budget: &Budget,
) -> Result<Schedule, CoverError> {
    let mut covered = BitSet::new(graph.len());
    let mut steps: Vec<Vec<CnId>> = Vec::new();
    let mut spills: Vec<SpillRecord> = Vec::new();
    let mut pool = Pool::generate(graph, target, &covered, options, budget);
    let spill_limit = 4 * graph.len().max(8);
    // Deadlock breaker: once spilling starts, commit to one nearly-ready
    // node and schedule only toward it (its uncovered predecessor
    // closure) until it is covered.
    let mut focus: Option<CnId> = None;
    // Progress level of the previous spill: spilling twice at the same
    // covered count means eviction alone is not advancing — take the best
    // plain-feasible group instead (the anti-wedge policy is a
    // preference, not a straitjacket).
    let mut last_spill_progress: Option<usize> = None;

    loop {
        let total_alive = graph.alive().len();
        if covered.count() >= total_alive {
            break;
        }
        budget.charge(1).map_err(CoverError::Budget)?;
        let state = State::compute(graph, target, &covered);
        if state.ready.is_empty() {
            // A dependence cycle or a dead operand: without the guard
            // this loop would spin forever (it used to be a debug
            // assertion, invisible in release builds).
            return Err(wedged(covered.count(), total_alive));
        }

        // Candidate groups: the shrunk-to-ready form of every clique.
        let mut groups: Vec<Vec<CnId>> = Vec::new();
        let mut seen: std::collections::HashSet<Vec<CnId>> = std::collections::HashSet::new();
        for ci in 0..pool.cliques.len() {
            let mut g = pool.ready_members(ci, &state);
            if g.is_empty() {
                continue;
            }
            g.sort_unstable();
            if seen.insert(g.clone()) {
                groups.push(g);
            }
        }
        if groups.is_empty() {
            return Err(CoverError::Internal(Diagnostic::new(
                Code::C004,
                "covering",
                "no candidate group covers any ready node",
            )));
        }

        // Focused mode: restrict selection to groups that advance the
        // focus node's uncovered predecessor closure.
        let focus_closure: Option<BitSet> = focus.and_then(|c| {
            if covered.contains(c.index()) || graph.is_dead(c) {
                None
            } else {
                let mut closure = BitSet::new(graph.len());
                let mut stack = vec![c];
                while let Some(n) = stack.pop() {
                    if covered.contains(n.index()) || closure.contains(n.index()) {
                        continue;
                    }
                    closure.insert(n.index());
                    for p in graph.preds(n) {
                        stack.push(p);
                    }
                }
                Some(closure)
            }
        });
        if focus_closure.is_none() {
            focus = None;
        }
        if let Some(closure) = &focus_closure {
            let filtered: Vec<Vec<CnId>> = groups
                .iter()
                .filter(|g| g.iter().any(|n| closure.contains(n.index())))
                .cloned()
                .collect();
            // Use the focused subset only when it contains a feasible
            // group — otherwise fall back to the full set (e.g. a pending
            // spill store outside the closure may be the only way to
            // relieve pressure).
            let any_feasible = filtered
                .iter()
                .any(|g| state.pressure_after(graph, target, g).is_some());
            if any_feasible {
                groups = filtered;
            }
        }

        // Feasible groups under the register bound; prefer those that
        // also satisfy the anti-wedge policy.
        let plain: Vec<usize> = (0..groups.len())
            .filter(|&gi| state.pressure_after(graph, target, &groups[gi]).is_some())
            .collect();
        let feasible: Vec<usize> = plain
            .iter()
            .copied()
            .filter(|&gi| state.policy_ok(graph, target, &groups[gi]))
            .collect();

        let chosen: Option<Vec<CnId>> = if !feasible.is_empty() {
            let best_size = feasible
                .iter()
                .map(|&gi| groups[gi].len())
                .max()
                .expect("feasible set is non-empty here");
            let tied: Vec<usize> = feasible
                .iter()
                .copied()
                .filter(|&gi| groups[gi].len() == best_size)
                .collect();
            let winner = if tied.len() > 1 && options.lookahead {
                // Evaluate candidates in order, keeping the incumbent.
                // With `analysis_bounds`, later rollouts abort as soon
                // as an admissible lower bound proves they cannot
                // strictly beat the incumbent — ties keep the earlier
                // group, exactly as the plain (estimate, index) minimum
                // would, so the winner is identical either way.
                let mut best_gi = tied[0];
                let mut best_est = lookahead_estimate(
                    graph,
                    target,
                    &covered,
                    &pool,
                    &groups[best_gi],
                    budget,
                    None,
                );
                for &gi in &tied[1..] {
                    let cutoff = options.analysis_bounds.then_some(best_est);
                    let est = lookahead_estimate(
                        graph,
                        target,
                        &covered,
                        &pool,
                        &groups[gi],
                        budget,
                        cutoff,
                    );
                    if est < best_est {
                        best_est = est;
                        best_gi = gi;
                    }
                }
                best_gi
            } else {
                tied[0]
            };
            Some(groups[winner].clone())
        } else {
            // Shrink the biggest groups: drop value-defining members until
            // the remainder fits.
            let mut best: Option<Vec<CnId>> = None;
            for g in &groups {
                let mut g = g.clone();
                while !g.is_empty() {
                    if state.pressure_after(graph, target, &g).is_some() {
                        break;
                    }
                    // Drop a member defining into the most-loaded bank.
                    let drop_idx = g
                        .iter()
                        .enumerate()
                        .filter_map(|(k, &id)| {
                            graph
                                .node(id)
                                .dest_bank(target)
                                .map(|b| (k, state.pressure[b.index()]))
                        })
                        .max_by_key(|&(_, load)| load)
                        .map(|(k, _)| k);
                    match drop_idx {
                        Some(k) => {
                            g.remove(k);
                        }
                        None => break, // only stores left; must be feasible
                    }
                }
                if !g.is_empty()
                    && state.policy_ok(graph, target, &g)
                    && best.as_ref().is_none_or(|b| g.len() > b.len())
                {
                    best = Some(g);
                }
            }
            best
        };

        match chosen {
            Some(group) => {
                for &id in &group {
                    covered.insert(id.index());
                }
                steps.push(group);
            }
            None => {
                // Spill: every ready node defines into a full bank and
                // nothing dies. Pick the most-contended bank (§IV-D: "the
                // most needed resource").
                if spills.len() >= spill_limit {
                    return Err(CoverError::SpillLimit);
                }
                if last_spill_progress == Some(covered.count()) {
                    if let Some(&gi) = plain.iter().max_by_key(|&&gi| groups[gi].len()) {
                        let group = groups[gi].clone();
                        for &id in &group {
                            covered.insert(id.index());
                        }
                        steps.push(group);
                        last_spill_progress = None;
                        continue;
                    }
                }
                last_spill_progress = Some(covered.count());
                let mut blocked: Vec<usize> = vec![0; target.machine.banks().len()];
                for &r in &state.ready {
                    if let Some(b) = graph.node(r).dest_bank(target) {
                        if state.pressure[b.index()]
                            >= target.machine.banks()[b.index()].size as usize
                        {
                            blocked[b.index()] += 1;
                        }
                    }
                }
                let bank = BankId(
                    blocked
                        .iter()
                        .enumerate()
                        .max_by_key(|&(_, c)| c)
                        .map(|(i, _)| i as u32)
                        .expect("machine has banks"),
                );
                // Victim: a live, unpinned value in that bank. Belady's
                // rule — evict the value whose next use is farthest away
                // (proxied by the dependence depth of its earliest
                // uncovered consumer) — with the paper's reload count
                // ("the number of parent nodes that would later require
                // the spilled value") as the tie-break. Evicting the
                // farthest-needed value is what lets the blocked
                // dependence chain advance and makes the spill loop
                // converge.
                // Belady keys: primary — whose *next* use is farthest;
                // tie — whose *last* use is farthest (evicting the value
                // with the most distant outstanding work frees the
                // register for the longest stretch; the freshly staged
                // operand of the very next op always loses this
                // comparison).
                let use_depths = |id: CnId| {
                    let mut min_d = u32::MAX;
                    let mut max_d = u32::MAX;
                    let depths: Vec<u32> = graph
                        .uses(id)
                        .iter()
                        .filter(|u| !covered.contains(u.index()))
                        .map(|&u| graph.level_bottom(u))
                        .collect();
                    if !depths.is_empty() {
                        min_d = *depths.iter().min().expect("nonempty");
                        max_d = *depths.iter().max().expect("nonempty");
                    }
                    (min_d, max_d)
                };
                // Values consumed inside the focus closure are protected:
                // evicting the operands of the very node we are trying to
                // unblock would spin forever.
                let is_protected = |id: CnId| {
                    focus_closure.as_ref().is_some_and(|closure| {
                        graph.uses(id).iter().any(|u| closure.contains(u.index()))
                    })
                };
                let candidates: Vec<CnId> = graph
                    .alive()
                    .into_iter()
                    .filter(|&id| {
                        covered.contains(id.index())
                            && !state.pinned.contains(id.index())
                            && state.remaining[id.index()] > 0
                            && graph.node(id).dest_bank(target) == Some(bank)
                    })
                    .collect();
                let pick = |pool: &[CnId]| {
                    pool.iter()
                        .copied()
                        .max_by_key(|&id| (use_depths(id), std::cmp::Reverse(id)))
                };
                let unprotected: Vec<CnId> = candidates
                    .iter()
                    .copied()
                    .filter(|&id| !is_protected(id))
                    .collect();
                let victim = pick(&unprotected).or_else(|| pick(&candidates));
                let Some(victim) = victim else {
                    // Nothing evictable. If some group was feasible under
                    // the raw pressure bound (the anti-wedge policy vetoed
                    // it), scheduling it is the only way forward.
                    if let Some(&gi) = plain.iter().max_by_key(|&&gi| groups[gi].len()) {
                        let group = groups[gi].clone();
                        for &id in &group {
                            covered.insert(id.index());
                        }
                        steps.push(group);
                        continue;
                    }
                    return Err(CoverError::RegisterPressure { bank });
                };
                if focus.is_none() {
                    // Commit to the node whose execution will actually
                    // relieve the blocked bank: an uncovered consumer of a
                    // currently-live value there, as nearly ready as
                    // possible.
                    focus = graph
                        .alive()
                        .into_iter()
                        .filter(|&n| {
                            !covered.contains(n.index())
                                && graph.preds(n).iter().any(|&p| {
                                    covered.contains(p.index())
                                        && state.remaining[p.index()] > 0
                                        && graph.node(p).dest_bank(target) == Some(bank)
                                })
                        })
                        .min_by_key(|&n| {
                            let missing = graph
                                .preds(n)
                                .iter()
                                .filter(|p| !covered.contains(p.index()))
                                .count();
                            (missing, graph.level_bottom(n), n)
                        });
                }
                let (slot, outcome) = graph
                    .relieve_pressure(target, syms, victim, &covered)
                    .map_err(CoverError::Internal)?;
                covered.grow(graph.len());
                spills.push(SpillRecord {
                    slot,
                    victim,
                    spill: outcome.spill,
                    loads: Vec::new(), // filled below from the outcome
                    nodes: outcome.new_nodes.clone(),
                });
                // Reload tails: chain ends among the new nodes that some
                // outside node consumes — recorded for reporting (the
                // peephole pass re-derives them from the graph).
                if let Some(rec) = spills.last_mut() {
                    for &nn in &outcome.new_nodes {
                        if Some(nn) == outcome.spill {
                            continue;
                        }
                        if let Some(b) = graph.node(nn).dest_bank(target) {
                            if graph
                                .uses(nn)
                                .iter()
                                .any(|u| !outcome.new_nodes.contains(u))
                            {
                                rec.loads.push((b, nn));
                            }
                        }
                    }
                }
                // "New maximal cliques are then generated for all the
                // remaining uncovered nodes."
                pool = Pool::generate(graph, target, &covered, options, budget);
            }
        }
    }

    let schedule = Schedule { steps, spills };
    debug_assert!(verify_schedule(graph, target, &schedule).is_ok());
    Ok(schedule)
}

/// Structured "covering wedged" defect: uncovered nodes remain but none
/// is ready — a dependence cycle or a dead operand, typically from
/// malformed intermediate state.
fn wedged(covered: usize, total: usize) -> CoverError {
    CoverError::Internal(Diagnostic::new(
        Code::C004,
        "covering",
        format!("{covered}/{total} nodes covered but nothing is ready (dependence cycle or dead operand)"),
    ))
}

/// Greedy completion estimate used as the §IV-D lookahead: pretend we
/// schedule `first`, then finish with plain max-cover selection under the
/// register bound and count the steps. Futures that wedge on pressure get
/// a heavy penalty — this is what steers the engine away from parking
/// far-future values in scarce registers.
///
/// When `cutoff` is set (the incumbent tie-break estimate, under
/// `CodegenOptions::analysis_bounds`), the rollout aborts — returning
/// the incumbent value — as soon as `steps` plus an admissible lower
/// bound on the remaining steps reaches it: every later iteration adds
/// one step and covers at most the largest clique in `pool`, so the
/// eventual estimate could not have been strictly smaller (the wedge
/// penalty only inflates it further). The abort therefore never changes
/// which group wins, it only skips budget charges the comparison no
/// longer needs.
fn lookahead_estimate(
    graph: &CoverGraph,
    target: &Target,
    covered: &BitSet,
    pool: &Pool,
    first: &[CnId],
    budget: &Budget,
    cutoff: Option<usize>,
) -> usize {
    const STUCK_PENALTY: usize = 1000;
    let mut covered = covered.clone();
    for &id in first {
        covered.insert(id.index());
    }
    let max_per_step = match cutoff {
        Some(_) => pool
            .cliques
            .iter()
            .map(BitSet::count)
            .max()
            .unwrap_or(1)
            .max(1),
        None => 1,
    };
    let mut steps = 1usize;
    let total = graph.alive().len();
    while covered.count() < total {
        if let Some(best) = cutoff {
            let lb = (total - covered.count()).div_ceil(max_per_step);
            if steps + lb >= best {
                return best;
            }
        }
        // Soft charge: an estimator cannot propagate exhaustion, but the
        // enclosing selection loop's next charge observes it.
        budget.note(1);
        if budget.exhaustion().is_some() {
            break;
        }
        let state = State::compute(graph, target, &covered);
        if state.ready.is_empty() {
            break;
        }
        let mut best: Vec<CnId> = Vec::new();
        for ci in 0..pool.cliques.len() {
            let g = pool.ready_members(ci, &state);
            if g.len() > best.len() && state.pressure_after(graph, target, &g).is_some() {
                best = g;
            }
        }
        if best.is_empty() {
            // Try any single feasible ready node before declaring the
            // future stuck.
            best = state
                .ready
                .iter()
                .copied()
                .find(|&r| state.pressure_after(graph, target, &[r]).is_some())
                .map(|r| vec![r])
                .unwrap_or_default();
        }
        if best.is_empty() {
            // Wedged: this branch would need another spill.
            return steps + STUCK_PENALTY + (total - covered.count());
        }
        for &id in &best {
            covered.insert(id.index());
        }
        steps += 1;
    }
    steps
}

/// The peak register pressure `schedule` exerts: the maximum number of
/// values simultaneously occupying any one bank at any step. A value's
/// occupancy runs from its defining step through its last consumer's
/// step, or to the end of the block when it is live-out. Purely a
/// reporting metric (the bench snapshots record it); the allocator
/// enforces the actual bank bounds.
pub fn peak_pressure(graph: &CoverGraph, target: &Target, schedule: &Schedule) -> usize {
    let n = graph.len();
    let steps = schedule.steps.len();
    if steps == 0 {
        return 0;
    }
    let step_of = schedule.step_of(n);
    let mut live_until = vec![None::<usize>; n];
    for id in graph.alive() {
        let Some(t) = step_of[id.index()] else {
            continue;
        };
        for arg in &graph.node(id).args {
            if let Operand::Cn(p) = arg {
                let e = &mut live_until[p.index()];
                *e = Some(e.map_or(t, |old: usize| old.max(t)));
            }
        }
    }
    for &(_, op) in graph.live_out() {
        if let Operand::Cn(c) = op {
            live_until[c.index()] = Some(steps - 1);
        }
    }
    let mut peak = 0;
    let mut counts = vec![0usize; target.machine.banks().len()];
    for t in 0..steps {
        counts.iter_mut().for_each(|c| *c = 0);
        for id in graph.alive() {
            let (Some(def), Some(until)) = (step_of[id.index()], live_until[id.index()]) else {
                continue;
            };
            if def <= t && t <= until {
                if let Some(bank) = graph.node(id).dest_bank(target) {
                    counts[bank.index()] += 1;
                }
            }
        }
        peak = peak.max(counts.iter().copied().max().unwrap_or(0));
    }
    peak
}

/// Validate a schedule against every constraint the covering step is
/// supposed to maintain. This is the oracle for the property tests.
///
/// # Errors
///
/// Returns a description of the first violation: a node scheduled twice
/// or never, a dependency scheduled out of order, a resource oversubscribed
/// within one instruction, an ISDL constraint violated, or a register bank
/// exceeding its size at some step.
pub fn verify_schedule(
    graph: &CoverGraph,
    target: &Target,
    schedule: &Schedule,
) -> Result<(), String> {
    let n = graph.len();
    let step_of = schedule.step_of(n);
    // Exactly-once coverage of alive nodes.
    for id in graph.alive() {
        if step_of[id.index()].is_none() {
            return Err(format!("{id} never scheduled"));
        }
    }
    let mut seen = BitSet::new(n);
    for step in &schedule.steps {
        for &id in step {
            if graph.is_dead(id) {
                return Err(format!("{id} is dead but scheduled"));
            }
            if seen.contains(id.index()) {
                return Err(format!("{id} scheduled twice"));
            }
            seen.insert(id.index());
        }
    }
    // Dependencies strictly precede.
    for id in graph.alive() {
        let t = step_of[id.index()].expect("checked scheduled above");
        for p in graph.preds(id) {
            let pt = step_of[p.index()].ok_or_else(|| format!("{p} unscheduled"))?;
            if pt >= t {
                return Err(format!("{p} (step {pt}) not before {id} (step {t})"));
            }
        }
    }
    // Per-step resources, constraints, legality.
    for (t, step) in schedule.steps.iter().enumerate() {
        let mut unit_used = vec![false; target.machine.units().len()];
        let mut bus_used = vec![0u32; target.machine.buses().len()];
        for &id in step {
            match graph.node(id).resource() {
                crate::covergraph::Resource::Unit(u) => {
                    if unit_used[u.index()] {
                        return Err(format!("step {t}: unit {u} used twice"));
                    }
                    unit_used[u.index()] = true;
                }
                crate::covergraph::Resource::Bus(b) => {
                    bus_used[b.index()] += 1;
                    if bus_used[b.index()] > target.machine.bus(b).capacity {
                        return Err(format!("step {t}: bus {b} over capacity"));
                    }
                }
            }
        }
        for (ci, con) in target.machine.constraints().iter().enumerate() {
            let mut count = 0u32;
            for &id in step {
                let node = graph.node(id);
                let matched = con.members.iter().any(|pat| match *pat {
                    aviv_isdl::SlotPattern::UnitOp { unit, op } => match &node.kind {
                        crate::covergraph::CnKind::Op { unit: u, op: o, .. } => {
                            *u == unit && op.is_none_or(|want| *o == want)
                        }
                        crate::covergraph::CnKind::Complex { unit: u, .. } => {
                            *u == unit && op.is_none()
                        }
                        _ => false,
                    },
                    aviv_isdl::SlotPattern::BusUse { bus } => matches!(
                        node.resource(),
                        crate::covergraph::Resource::Bus(b) if b == bus
                    ),
                });
                if matched {
                    count += 1;
                }
            }
            if count > con.at_most {
                return Err(format!("step {t}: constraint {ci} violated"));
            }
        }
    }
    // Register pressure at every step.
    let mut pinned = BitSet::new(n);
    for &(_, operand) in graph.live_out() {
        if let Operand::Cn(c) = operand {
            pinned.insert(c.index());
        }
    }
    for t in 0..schedule.steps.len() {
        let mut pressure = vec![0usize; target.machine.banks().len()];
        for id in graph.alive() {
            let Some(def_t) = step_of[id.index()] else {
                continue;
            };
            if def_t > t {
                continue;
            }
            let Some(bank) = graph.node(id).dest_bank(target) else {
                continue;
            };
            let live = pinned.contains(id.index())
                || graph
                    .uses(id)
                    .iter()
                    .any(|u| step_of[u.index()].is_some_and(|ut| ut > t));
            if live {
                pressure[bank.index()] += 1;
            }
        }
        for (bi, &load) in pressure.iter().enumerate() {
            if load > target.machine.banks()[bi].size as usize {
                return Err(format!(
                    "step {t}: bank {} holds {load} > {}",
                    target.machine.banks()[bi].name,
                    target.machine.banks()[bi].size
                ));
            }
        }
    }
    Ok(())
}

/// Guaranteed-progress fallback covering: one node per instruction,
/// processed in dependence order, with *eager spilling* — every computed
/// value is immediately stored to a slot and each consumer reloads it
/// just in time. The register demand of this strategy is bounded by the
/// widest operation arity (plus pinned live-outs) per bank, so it
/// terminates whenever the machine can execute the block at all. Code
/// quality is poor (that is the point of the concurrent engine); the
/// driver only uses it when [`cover`] fails to converge under extreme
/// register pressure.
///
/// # Errors
///
/// [`CoverError::RegisterPressure`] when even single-operation staging
/// exceeds a bank (the block is genuinely unimplementable), or
/// [`CoverError::SpillLimit`] as a final safety valve.
pub fn cover_sequential(
    graph: &mut CoverGraph,
    target: &Target,
    syms: &mut SymbolTable,
) -> Result<Schedule, CoverError> {
    cover_sequential_budgeted(graph, target, syms, &Budget::unlimited())
}

/// [`cover_sequential`] under a cooperative [`Budget`]. The final rung
/// of the degradation ladder calls this with an unlimited budget — its
/// register demand is bounded by operation arity, so it terminates
/// whenever the machine can execute the block at all.
///
/// # Errors
///
/// See [`CoverError`].
pub fn cover_sequential_budgeted(
    graph: &mut CoverGraph,
    target: &Target,
    syms: &mut SymbolTable,
    budget: &Budget,
) -> Result<Schedule, CoverError> {
    let mut covered = BitSet::new(graph.len());
    let mut steps: Vec<Vec<CnId>> = Vec::new();
    let mut spills: Vec<SpillRecord> = Vec::new();
    let spill_limit = 40 * graph.len().max(8);
    // Nodes created by spill machinery are never eagerly evicted (their
    // single consumer follows just-in-time); everything else is evicted
    // right after computation.
    let mut no_eager = BitSet::new(graph.len());

    loop {
        let alive = graph.alive();
        if covered.count() >= alive.len() {
            break;
        }
        budget.charge(1).map_err(CoverError::Budget)?;
        let state = State::compute(graph, target, &covered);
        if state.ready.is_empty() {
            return Err(wedged(covered.count(), alive.len()));
        }
        // Stores (and other non-defining nodes) first — they only relieve
        // pressure; then lowest id (dependence order).
        let mut ready = state.ready.clone();
        ready.sort_by_key(|&r| (graph.node(r).dest_bank(target).is_some(), r));
        let pick = ready
            .iter()
            .copied()
            .find(|&r| state.pressure_after(graph, target, &[r]).is_some());
        match pick {
            Some(r) => {
                covered.insert(r.index());
                steps.push(vec![r]);
                // Eager eviction of the fresh value.
                let has_pending_use = graph.uses(r).iter().any(|u| !covered.contains(u.index()));
                if has_pending_use
                    && graph.node(r).dest_bank(target).is_some()
                    && !no_eager.contains(r.index())
                    && !graph.live_out().iter().any(|&(_, op)| op == Operand::Cn(r))
                {
                    if spills.len() >= spill_limit {
                        return Err(CoverError::SpillLimit);
                    }
                    let (slot, outcome) = graph
                        .relieve_pressure(target, syms, r, &covered)
                        .map_err(CoverError::Internal)?;
                    covered.grow(graph.len());
                    no_eager.grow(graph.len());
                    for &nn in &outcome.new_nodes {
                        no_eager.insert(nn.index());
                    }
                    spills.push(SpillRecord {
                        slot,
                        victim: r,
                        spill: outcome.spill,
                        loads: Vec::new(),
                        nodes: outcome.new_nodes,
                    });
                }
            }
            None => {
                // Staging conflict: evict the live value whose next use is
                // farthest (never pinned ones).
                if spills.len() >= spill_limit {
                    return Err(CoverError::SpillLimit);
                }
                let mut blocked = vec![0usize; target.machine.banks().len()];
                for &r in &state.ready {
                    if let Some(b) = graph.node(r).dest_bank(target) {
                        if state.pressure[b.index()]
                            >= target.machine.banks()[b.index()].size as usize
                        {
                            blocked[b.index()] += 1;
                        }
                    }
                }
                let bank = BankId(
                    (0..blocked.len())
                        .max_by_key(|&b| (blocked[b], state.pressure[b]))
                        .expect("machine has banks") as u32,
                );
                let victim = graph
                    .alive()
                    .into_iter()
                    .filter(|&id| {
                        covered.contains(id.index())
                            && !state.pinned.contains(id.index())
                            && state.remaining[id.index()] > 0
                            && graph.node(id).dest_bank(target) == Some(bank)
                    })
                    .max_by_key(|&id| {
                        let depths: Vec<u32> = graph
                            .uses(id)
                            .iter()
                            .filter(|u| !covered.contains(u.index()))
                            .map(|&u| graph.level_bottom(u))
                            .collect();
                        let min_d = depths.iter().min().copied().unwrap_or(u32::MAX);
                        let max_d = depths.iter().max().copied().unwrap_or(u32::MAX);
                        (min_d, max_d, std::cmp::Reverse(id))
                    });
                let Some(victim) = victim else {
                    return Err(CoverError::RegisterPressure { bank });
                };
                let (slot, outcome) = graph
                    .relieve_pressure(target, syms, victim, &covered)
                    .map_err(CoverError::Internal)?;
                covered.grow(graph.len());
                no_eager.grow(graph.len());
                for &nn in &outcome.new_nodes {
                    no_eager.insert(nn.index());
                }
                spills.push(SpillRecord {
                    slot,
                    victim,
                    spill: outcome.spill,
                    loads: Vec::new(),
                    nodes: outcome.new_nodes,
                });
            }
        }
    }
    let schedule = Schedule { steps, spills };
    debug_assert!(verify_schedule(graph, target, &schedule).is_ok());
    Ok(schedule)
}
