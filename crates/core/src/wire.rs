//! Minimal binary wire codec for the persisted plan-cache snapshot.
//!
//! The workspace is dependency-free by policy (see `docs/serving.md`), so
//! the snapshot format is hand-rolled: little-endian fixed-width
//! integers, length-prefixed byte strings, and a rolling FNV-1a checksum.
//! The decoder is written for hostile input — every length is bounded
//! before allocation, every read is range-checked, and any violation
//! surfaces as a [`WireError`] rather than a panic or an unbounded
//! allocation. The chaos suite feeds it truncated and bit-flipped files.

use std::fmt;

/// Upper bound on any single decoded collection length. Snapshots are
/// written by us, so a length beyond this is corruption, not data; the
/// bound keeps a flipped length byte from asking for gigabytes.
pub const MAX_SEQ_LEN: usize = 1 << 24;

/// Upper bound on any single decoded string length.
pub const MAX_STR_LEN: usize = 1 << 16;

/// Structured decode failure: what was being read and where.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// What the decoder was reading when it failed.
    pub what: &'static str,
    /// Byte offset into the buffer.
    pub offset: usize,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "snapshot decode failed at byte {}: {}",
            self.offset, self.what
        )
    }
}

impl std::error::Error for WireError {}

/// FNV-1a over `bytes` — the snapshot payload checksum. Not
/// cryptographic; it detects the torn writes and bit flips the chaos
/// suite injects, while tampering is out of scope (the file lives next
/// to the binary that trusts it).
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Append-only encoder.
#[derive(Debug, Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    /// Fresh empty encoder.
    pub fn new() -> Enc {
        Enc::default()
    }

    /// Finish, yielding the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Write one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Write a bool as one byte (0/1).
    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    /// Write a `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a `u128`, little-endian.
    pub fn put_u128(&mut self, v: u128) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write an `i64`, little-endian.
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a `usize` as a `u64`.
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Write a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }
}

/// Range-checked decoder over a byte slice.
#[derive(Debug)]
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    /// Decode from the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Dec<'a> {
        Dec { buf, pos: 0 }
    }

    /// Current byte offset.
    pub fn offset(&self) -> usize {
        self.pos
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn err(&self, what: &'static str) -> WireError {
        WireError {
            what,
            offset: self.pos,
        }
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(self.err(what));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read one byte.
    pub fn get_u8(&mut self, what: &'static str) -> Result<u8, WireError> {
        Ok(self.take(1, what)?[0])
    }

    /// Read a bool; any byte other than 0/1 is corruption.
    pub fn get_bool(&mut self, what: &'static str) -> Result<bool, WireError> {
        match self.get_u8(what)? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(WireError {
                what,
                offset: self.pos - 1,
            }),
        }
    }

    /// Read a little-endian `u32`.
    pub fn get_u32(&mut self, what: &'static str) -> Result<u32, WireError> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Read a little-endian `u64`.
    pub fn get_u64(&mut self, what: &'static str) -> Result<u64, WireError> {
        let b = self.take(8, what)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    /// Read a little-endian `u128`.
    pub fn get_u128(&mut self, what: &'static str) -> Result<u128, WireError> {
        let b = self.take(16, what)?;
        let mut a = [0u8; 16];
        a.copy_from_slice(b);
        Ok(u128::from_le_bytes(a))
    }

    /// Read a little-endian `i64`.
    pub fn get_i64(&mut self, what: &'static str) -> Result<i64, WireError> {
        let b = self.take(8, what)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(i64::from_le_bytes(a))
    }

    /// Read a `usize` written by [`Enc::put_usize`], bounded by
    /// [`MAX_SEQ_LEN`] — safe to use directly as an allocation size.
    pub fn get_usize(&mut self, what: &'static str) -> Result<usize, WireError> {
        let v = self.get_u64(what)?;
        if v > MAX_SEQ_LEN as u64 {
            return Err(self.err(what));
        }
        Ok(v as usize)
    }

    /// Read a collection length (`u32`), bounded by [`MAX_SEQ_LEN`].
    pub fn get_len(&mut self, what: &'static str) -> Result<usize, WireError> {
        let v = self.get_u32(what)?;
        if v as usize > MAX_SEQ_LEN {
            return Err(self.err(what));
        }
        Ok(v as usize)
    }

    /// Read a length-prefixed UTF-8 string, bounded by [`MAX_STR_LEN`].
    pub fn get_str(&mut self, what: &'static str) -> Result<String, WireError> {
        let n = self.get_u32(what)? as usize;
        if n > MAX_STR_LEN {
            return Err(self.err(what));
        }
        let bytes = self.take(n, what)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError {
            what,
            offset: self.pos - n,
        })
    }

    /// Fail unless every byte has been consumed — trailing garbage after
    /// a structurally valid payload is still corruption.
    pub fn finish(self, what: &'static str) -> Result<(), WireError> {
        if self.remaining() != 0 {
            return Err(WireError {
                what,
                offset: self.pos,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_every_primitive() {
        let mut e = Enc::new();
        e.put_u8(7);
        e.put_bool(true);
        e.put_u32(0xdead_beef);
        e.put_u64(u64::MAX - 1);
        e.put_u128(u128::MAX / 3);
        e.put_i64(-42);
        e.put_usize(12345);
        e.put_str("spill_slot_0");
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        assert_eq!(d.get_u8("a").unwrap(), 7);
        assert!(d.get_bool("b").unwrap());
        assert_eq!(d.get_u32("c").unwrap(), 0xdead_beef);
        assert_eq!(d.get_u64("d").unwrap(), u64::MAX - 1);
        assert_eq!(d.get_u128("e").unwrap(), u128::MAX / 3);
        assert_eq!(d.get_i64("f").unwrap(), -42);
        assert_eq!(d.get_usize("g").unwrap(), 12345);
        assert_eq!(d.get_str("h").unwrap(), "spill_slot_0");
        d.finish("trailing").unwrap();
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let mut e = Enc::new();
        e.put_u64(99);
        let bytes = e.into_bytes();
        for cut in 0..bytes.len() {
            let mut d = Dec::new(&bytes[..cut]);
            assert!(d.get_u64("x").is_err());
        }
    }

    #[test]
    fn oversized_lengths_are_rejected_before_allocation() {
        let mut e = Enc::new();
        e.put_u32(u32::MAX); // absurd collection length
        let bytes = e.into_bytes();
        assert!(Dec::new(&bytes).get_len("len").is_err());
        assert!(Dec::new(&bytes).get_str("str").is_err());
    }

    #[test]
    fn non_boolean_bytes_are_corruption() {
        let mut d = Dec::new(&[2u8]);
        assert!(d.get_bool("flag").is_err());
    }

    #[test]
    fn trailing_garbage_is_corruption() {
        let mut e = Enc::new();
        e.put_u8(1);
        e.put_u8(2);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        d.get_u8("x").unwrap();
        assert!(d.finish("trailing").is_err());
    }

    #[test]
    fn fnv_is_stable_and_input_sensitive() {
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv64(b"abc"), fnv64(b"abd"));
    }
}
