//! A minimal JSON value model, parser, and string escaper.
//!
//! The workspace is dependency-free by policy (no `serde`), but two
//! consumers need to *read* JSON: the `avivd` serving protocol
//! (newline-delimited request objects) and the bench baseline gate
//! (diffing committed `BENCH_*.json` snapshots). Both live downstream of
//! this crate, so the shared implementation sits here.
//!
//! Scope: strict RFC 8259 subset, sufficient for machine-written JSON —
//! objects, arrays, strings with `\uXXXX` escapes, numbers, booleans,
//! `null`. Not supported (by design — nothing in the repo emits them):
//! surrogate-pair escapes, numbers outside `f64`, duplicate-key
//! detection. Object members preserve insertion order so round-trips are
//! deterministic.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always carried as `f64`; snapshot values are
    /// counts and milliseconds, well inside exact range).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Key-sorted storage: snapshot diffing wants canonical
    /// member order, and the protocol never relies on member order.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a `u64`, if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => Some(*n as u64),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The members, if this is an object.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Object member lookup (`None` for non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.as_obj().and_then(|m| m.get(key))
    }
}

/// Where and why parsing failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the offending input.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parse one JSON document; trailing non-whitespace is an error.
///
/// # Errors
///
/// Returns a [`JsonError`] locating the first malformed byte.
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after the document"));
    }
    Ok(value)
}

/// Maximum container nesting the parser accepts. The recursive-descent
/// parser consumes stack per level, so hostile input like `[[[[…` must
/// hit a structured error long before the stack runs out (a stack
/// overflow is an abort, not a catchable failure). Real requests nest
/// two or three levels.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            at: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.nested(Parser::object),
            Some(b'[') => self.nested(Parser::array),
            Some(b'"') => self.string().map(Json::Str),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected character '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn nested(
        &mut self,
        container: fn(&mut Self) -> Result<Json, JsonError>,
    ) -> Result<Json, JsonError> {
        if self.depth >= MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        self.depth += 1;
        let v = container(self);
        self.depth -= 1;
        v
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut members = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut elements = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(elements));
        }
        loop {
            self.skip_ws();
            elements.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(elements));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("dangling escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("malformed \\u escape"))?;
                            let ch = char::from_u32(code)
                                .ok_or_else(|| self.err("\\u escape is not a scalar value"))?;
                            out.push(ch);
                            self.pos += 4;
                        }
                        other => {
                            return Err(self.err(format!("unknown escape '\\{}'", other as char)))
                        }
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // byte stream is valid UTF-8 by construction).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xc0) == 0x80 {
                        self.pos += 1;
                    }
                    if let Ok(s) = std::str::from_utf8(&self.bytes[start..self.pos]) {
                        out.push_str(s);
                    }
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("malformed number"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err(format!("malformed number '{text}'")))
    }
}

/// Escape a string for embedding in a JSON document (quotes not
/// included). Inverse of the parser's unescaping for the repo's output
/// alphabet.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let doc = r#"{"op":"compile","jobs":0,"ok":true,"rows":[1,2.5,-3],"note":null}"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("op").and_then(Json::as_str), Some("compile"));
        assert_eq!(v.get("jobs").and_then(Json::as_u64), Some(0));
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(v.get("note"), Some(&Json::Null));
        let rows = v.get("rows").and_then(Json::as_arr).unwrap();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[1].as_f64(), Some(2.5));
    }

    #[test]
    fn escape_round_trips_through_parse() {
        let nasty = "line1\nline2\t\"quoted\" \\slash\\ unicode: π \u{0001}";
        let doc = format!("{{\"s\":\"{}\"}}", escape(nasty));
        let v = parse(&doc).unwrap();
        assert_eq!(v.get("s").and_then(Json::as_str), Some(nasty));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "\"unterminated",
            "01x",
            "{\"a\":1} trailing",
            "nul",
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn unicode_escapes_decode() {
        let v = parse(r#""Aé raw: é""#).unwrap();
        assert_eq!(v.as_str(), Some("Aé raw: é"));
    }

    #[test]
    fn as_u64_rejects_non_integers() {
        assert_eq!(parse("2.5").unwrap().as_u64(), None);
        assert_eq!(parse("-1").unwrap().as_u64(), None);
        assert_eq!(parse("42").unwrap().as_u64(), Some(42));
    }
}
