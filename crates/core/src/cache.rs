//! Content-addressed plan cache for incremental recompilation.
//!
//! The serving layer (`avivd`) compiles the same programs over and over;
//! the expensive part of each compile is per-block planning (assignment
//! exploration + covering + allocation), which is a pure function of
//! `(block content, target, planning options)`. This module memoizes it.
//!
//! # Key
//!
//! [`CacheKey`] is the triple of stable fingerprints:
//!
//! * `block` — [`aviv_ir::block_dag_hash`] of the post-DCE block DAG,
//!   covering structure *and* the `(id, name)` binding of every symbol
//!   the block references;
//! * `target` — [`aviv_isdl::Target::fingerprint`] (canonical ISDL text);
//! * `options` — [`CodegenOptions::planning_fingerprint`]
//!   (parallelism/budget knobs excluded — see that method).
//!
//! [`CodegenOptions::planning_fingerprint`]: crate::CodegenOptions::planning_fingerprint
//!
//! # What is stored, and why hits are sound
//!
//! Only plans that report [`complete`](crate::BlockReport::complete) are
//! inserted: a complete plan is byte-identical to what an unbudgeted run
//! produces, so serving it under any fuel/deadline is indistinguishable
//! from (faster than) recomputing. Degraded or truncated plans depend on
//! budgets and wall-clock and are never cached. Fault-injected compiles
//! bypass the cache entirely (the injector keys on block *position*).
//!
//! A cached [`BlockPlan`] embeds symbol ids, which is safe because the
//! block hash pins every referenced `(id, name)` pair, and the plan's
//! *appended* (spill-slot) ids are rebased by
//! [`apply_plan`](crate::CodeGenerator::apply_plan) against whatever
//! table the hit is applied to — the same mechanism that makes parallel
//! planning deterministic.
//!
//! # Eviction and concurrency
//!
//! Bounded LRU: inserting beyond [`PlanCache::capacity`] evicts the
//! least-recently-used entry and counts it in
//! [`CacheStats::evictions`]. One mutex guards the map — planning a
//! block takes milliseconds while a lookup takes nanoseconds, so
//! contention is negligible even with many server workers; counters are
//! atomics so [`stats`](PlanCache::stats) never blocks a compile.

use crate::codegen::BlockPlan;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Cache key: `(block content hash, target fingerprint, options
/// fingerprint)`. See the [module docs](self) for what each component
/// covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// [`aviv_ir::block_dag_hash`] of the block being planned.
    pub block: u64,
    /// [`aviv_isdl::Target::fingerprint`] of the machine.
    pub target: u64,
    /// [`CodegenOptions::planning_fingerprint`](crate::CodegenOptions::planning_fingerprint).
    pub options: u64,
}

/// Counter snapshot from a [`PlanCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to plan from scratch.
    pub misses: u64,
    /// Entries evicted by the LRU bound.
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: usize,
    /// Maximum resident entries.
    pub capacity: usize,
    /// Snapshots written to disk ([`crate::persist::save_snapshot`]).
    pub persist_saves: u64,
    /// Entries absorbed from persisted snapshots
    /// ([`crate::persist::load_snapshot`]).
    pub persist_loads: u64,
    /// Snapshot files found corrupt/truncated/stale and quarantined
    /// instead of trusted.
    pub quarantines: u64,
}

struct CacheEntry {
    plan: BlockPlan,
    /// Logical timestamp of the last hit or insertion.
    last_used: u64,
    /// Came from a persisted snapshot, not a compile in this process
    /// (`avivd --validate-on-load` forces validation on such hits).
    restored: bool,
}

struct CacheMap {
    entries: HashMap<CacheKey, CacheEntry>,
    tick: u64,
}

/// A bounded, thread-safe LRU cache of complete block plans.
///
/// Shared across compiles (and across server requests) via `Arc`; attach
/// one to a generator with
/// [`CodeGenerator::with_cache`](crate::CodeGenerator::with_cache).
pub struct PlanCache {
    map: Mutex<CacheMap>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    persist_saves: AtomicU64,
    persist_loads: AtomicU64,
    quarantines: AtomicU64,
}

impl std::fmt::Debug for PlanCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("PlanCache")
            .field("capacity", &self.capacity)
            .field("stats", &stats)
            .finish()
    }
}

/// Default [`PlanCache`] capacity: plans are per *block*, so this
/// comfortably holds hundreds of functions.
pub const DEFAULT_CACHE_CAPACITY: usize = 4096;

impl Default for PlanCache {
    fn default() -> Self {
        Self::new(DEFAULT_CACHE_CAPACITY)
    }
}

impl PlanCache {
    /// Create a cache bounded to `capacity` entries (clamped to ≥ 1).
    pub fn new(capacity: usize) -> PlanCache {
        PlanCache {
            map: Mutex::new(CacheMap {
                entries: HashMap::new(),
                tick: 0,
            }),
            capacity: capacity.max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            persist_saves: AtomicU64::new(0),
            persist_loads: AtomicU64::new(0),
            quarantines: AtomicU64::new(0),
        }
    }

    /// Maximum number of resident entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Look up a plan, refreshing its LRU position and counting the
    /// outcome. Returns a clone — plans are mutated during application
    /// (spill-slot rebasing), so the resident copy must stay pristine.
    pub fn lookup(&self, key: &CacheKey) -> Option<BlockPlan> {
        self.lookup_flagged(key).map(|(plan, _)| plan)
    }

    /// [`lookup`](PlanCache::lookup), also reporting whether the serving
    /// entry was restored from a persisted snapshot rather than computed
    /// in this process.
    pub fn lookup_flagged(&self, key: &CacheKey) -> Option<(BlockPlan, bool)> {
        let mut map = lock_unpoisoned(&self.map);
        map.tick += 1;
        let tick = map.tick;
        match map.entries.get_mut(key) {
            Some(entry) => {
                entry.last_used = tick;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some((entry.plan.clone(), entry.restored))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Insert (or refresh) a plan, evicting the least-recently-used
    /// entry if the cache is full.
    ///
    /// Callers are expected to insert only *complete* plans — the
    /// generator enforces this; see the [module docs](self).
    pub fn insert(&self, key: CacheKey, plan: BlockPlan) {
        let mut map = lock_unpoisoned(&self.map);
        map.tick += 1;
        let tick = map.tick;
        let replacing = map.entries.contains_key(&key);
        if !replacing && map.entries.len() >= self.capacity {
            if let Some(&lru) = map
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k)
            {
                map.entries.remove(&lru);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        map.entries.insert(
            key,
            CacheEntry {
                plan,
                last_used: tick,
                restored: false,
            },
        );
    }

    /// Snapshot the resident entries in LRU order (least recently used
    /// first), cloning each plan — the input to
    /// [`crate::persist::save_snapshot`]. Iterating oldest-first means a
    /// later [`absorb`](PlanCache::absorb) into a smaller cache keeps the
    /// hottest entries.
    pub fn snapshot_entries(&self) -> Vec<(CacheKey, BlockPlan)> {
        let map = lock_unpoisoned(&self.map);
        let mut entries: Vec<(&CacheKey, &CacheEntry)> = map.entries.iter().collect();
        entries.sort_by_key(|(_, e)| e.last_used);
        entries
            .into_iter()
            .map(|(k, e)| (*k, e.plan.clone()))
            .collect()
    }

    /// Insert entries restored from a persisted snapshot, marking each as
    /// `restored` (see [`lookup_flagged`](PlanCache::lookup_flagged)) and
    /// counting them in [`CacheStats::persist_loads`]. Entries beyond
    /// capacity evict LRU as usual; an entry already resident (computed
    /// in this process) is *not* overwritten — a live plan is always at
    /// least as trustworthy as a restored one.
    pub fn absorb(&self, restored: Vec<(CacheKey, BlockPlan)>) -> usize {
        let mut absorbed = 0;
        for (key, plan) in restored {
            let mut map = lock_unpoisoned(&self.map);
            map.tick += 1;
            let tick = map.tick;
            if map.entries.contains_key(&key) {
                continue;
            }
            if map.entries.len() >= self.capacity {
                if let Some(&lru) = map
                    .entries
                    .iter()
                    .min_by_key(|(_, e)| e.last_used)
                    .map(|(k, _)| k)
                {
                    map.entries.remove(&lru);
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                }
            }
            map.entries.insert(
                key,
                CacheEntry {
                    plan,
                    last_used: tick,
                    restored: true,
                },
            );
            absorbed += 1;
        }
        self.persist_loads.fetch_add(absorbed, Ordering::Relaxed);
        absorbed as usize
    }

    /// Count one snapshot written to disk.
    pub fn record_save(&self) {
        self.persist_saves.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one snapshot file quarantined as corrupt/truncated/stale.
    pub fn record_quarantine(&self) {
        self.quarantines.fetch_add(1, Ordering::Relaxed);
    }

    /// Drop every entry matching `predicate`, returning how many were
    /// removed. (Targeted invalidation; dropping the whole cache is just
    /// dropping the `Arc`.)
    pub fn invalidate_where(&self, predicate: impl Fn(&CacheKey) -> bool) -> usize {
        let mut map = lock_unpoisoned(&self.map);
        let before = map.entries.len();
        map.entries.retain(|k, _| !predicate(k));
        before - map.entries.len()
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        lock_unpoisoned(&self.map).entries.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot the hit/miss/eviction counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: self.len(),
            capacity: self.capacity,
            persist_saves: self.persist_saves.load(Ordering::Relaxed),
            persist_loads: self.persist_loads.load(Ordering::Relaxed),
            quarantines: self.quarantines.load(Ordering::Relaxed),
        }
    }
}

/// Lock a mutex, recovering from poisoning: the cache holds only
/// immutable-once-inserted plans plus LRU bookkeeping, both valid at
/// every instruction boundary, so a panic elsewhere cannot leave the map
/// in a state worth refusing to read (and the planner already isolates
/// panics per block — poisoning is next to impossible to begin with).
fn lock_unpoisoned<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    match m.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CodeGenerator;
    use aviv_ir::parse_function;

    /// A real plan to populate entries with (contents are irrelevant to
    /// the LRU logic under test).
    fn some_plan() -> BlockPlan {
        let f = parse_function("func f(a) { x = a + 1; return x; }").unwrap();
        let gen = CodeGenerator::new(aviv_isdl::archs::example_arch(4));
        gen.plan_block(&f.blocks[0].dag, &f.syms).unwrap()
    }

    fn key(i: u64) -> CacheKey {
        CacheKey {
            block: i,
            target: 7,
            options: 9,
        }
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let cache = PlanCache::new(2);
        let plan = some_plan();
        cache.insert(key(1), plan.clone());
        cache.insert(key(2), plan.clone());
        // Touch 1 so 2 becomes the LRU entry.
        assert!(cache.lookup(&key(1)).is_some());
        cache.insert(key(3), plan);
        let stats = cache.stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.entries, 2);
        assert!(cache.lookup(&key(1)).is_some(), "recently used survived");
        assert!(cache.lookup(&key(2)).is_none(), "LRU entry evicted");
        assert!(cache.lookup(&key(3)).is_some());
    }

    #[test]
    fn counters_track_hits_and_misses() {
        let cache = PlanCache::new(8);
        assert!(cache.lookup(&key(1)).is_none());
        cache.insert(key(1), some_plan());
        assert!(cache.lookup(&key(1)).is_some());
        assert!(cache.lookup(&key(2)).is_none());
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 2));
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.capacity, 8);
    }

    #[test]
    fn reinserting_a_resident_key_never_evicts() {
        let cache = PlanCache::new(2);
        let plan = some_plan();
        cache.insert(key(1), plan.clone());
        cache.insert(key(2), plan.clone());
        cache.insert(key(2), plan);
        let stats = cache.stats();
        assert_eq!(stats.evictions, 0);
        assert_eq!(stats.entries, 2);
    }

    #[test]
    fn invalidate_where_removes_matching_entries() {
        let cache = PlanCache::new(8);
        let plan = some_plan();
        for i in 0..4 {
            cache.insert(key(i), plan.clone());
        }
        assert_eq!(cache.invalidate_where(|k| k.block < 2), 2);
        assert_eq!(cache.len(), 2);
        assert!(cache.lookup(&key(3)).is_some());
    }
}
