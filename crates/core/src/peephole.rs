//! Peephole optimization after detailed register allocation (§IV-G).
//!
//! "If, after performing detailed register allocation, it is determined
//! that a particular load or spill is not needed, peephole optimization
//! ... will remove the unnecessary loads and spills and try to compact
//! the schedule by moving other operations into the empty slots if the
//! dependency constraints allow it."
//!
//! The pressure analysis used during covering is an upper bound, so a
//! spill it inserted may turn out removable: this pass tentatively undoes
//! each spill (rewiring consumers back to the original value), keeps the
//! change only when the schedule still verifies and colors, and then
//! recompacts the schedule with an earliest-fit pass.

use crate::cover::{verify_schedule, Schedule};
use crate::covergraph::{CnId, CnKind, CoverGraph, Resource};
use crate::regalloc::{allocate, Allocation};
use aviv_isdl::{SlotPattern, Target};

/// Run the peephole pass in place. Never makes the schedule longer.
pub fn optimize(
    graph: &mut CoverGraph,
    target: &Target,
    schedule: &mut Schedule,
    alloc: &mut Allocation,
) {
    // 1. Try to undo each spill, most recent first (later spills depend
    //    on earlier pressure, so undoing in reverse composes better).
    let mut i = schedule.spills.len();
    while i > 0 {
        i -= 1;
        try_undo_spill(graph, target, schedule, alloc, i);
    }
    // 2. Earliest-fit compaction.
    compact(graph, target, schedule, alloc);
}

/// Attempt to remove spill `si`; commits on success.
fn try_undo_spill(
    graph: &mut CoverGraph,
    target: &Target,
    schedule: &mut Schedule,
    alloc: &mut Allocation,
    si: usize,
) {
    let rec = schedule.spills[si].clone();
    // Reload tails are derived from the graph rather than trusted from
    // the record (the sequential fallback leaves the record's load list
    // empty): a tail is any spill-chain node some outside node consumes.
    let tails: Vec<CnId> = rec
        .nodes
        .iter()
        .copied()
        .filter(|&n| {
            !graph.is_dead(n)
                && graph
                    .uses(n)
                    .iter()
                    .any(|u| !rec.nodes.contains(u) && !graph.is_dead(*u))
        })
        .filter(|&n| Some(n) != rec.spill)
        .collect();
    // Only the pure reload pattern is undone: every reload tail must land
    // in the victim's own bank (a tail in another bank replaced a ferry
    // transfer — undoing that needs the transfer resurrected, which the
    // covering step deliberately removed).
    let Some(victim_bank) = graph.node(rec.victim).dest_bank(target) else {
        return;
    };
    if tails
        .iter()
        .any(|&t| graph.node(t).dest_bank(target) != Some(victim_bank))
    {
        return;
    }

    // Any *other* alive node touching the spill slot (a remat of one of
    // this spill's reloads creates additional readers) pins the spill
    // store: undoing it would leave those readers loading garbage.
    let outside_slot_user = graph.alive().into_iter().any(|id| {
        !rec.nodes.contains(&id)
            && matches!(
                graph.node(id).kind,
                CnKind::LoadVar { sym, .. } | CnKind::StoreVar { sym, .. }
                    if sym == rec.slot
            )
    });
    if outside_slot_user {
        return;
    }

    let mut trial_graph = graph.clone();
    let mut trial_sched = schedule.clone();
    for &tail in &tails {
        trial_graph.rewire_all(tail, rec.victim);
    }
    for &n in &rec.nodes {
        trial_graph.kill(n);
    }
    // Later spills' reloads may carry just-in-time ordering edges onto
    // the nodes we just killed; those edges are advisory and must go.
    trial_graph.prune_dead_deps();
    trial_graph.rebuild_indexes();
    for step in &mut trial_sched.steps {
        step.retain(|n| !rec.nodes.contains(n));
    }
    trial_sched.steps.retain(|s| !s.is_empty());
    trial_sched.spills.remove(si);

    if verify_schedule(&trial_graph, target, &trial_sched).is_err() {
        return;
    }
    let Ok(trial_alloc) = allocate(&trial_graph, target, &trial_sched) else {
        return;
    };
    *graph = trial_graph;
    *schedule = trial_sched;
    *alloc = trial_alloc;
}

/// Earliest-fit compaction: move each node as early as dependencies and
/// resources allow; commit only when the instruction count drops and the
/// result still verifies and colors.
fn compact(
    graph: &mut CoverGraph,
    target: &Target,
    schedule: &mut Schedule,
    alloc: &mut Allocation,
) {
    let mut trial: Vec<Vec<CnId>> = Vec::new();
    let mut placed_step: std::collections::HashMap<CnId, usize> = std::collections::HashMap::new();
    for step in &schedule.steps {
        for &id in step {
            let min_step = graph
                .preds(id)
                .iter()
                .map(|p| placed_step[p] + 1)
                .max()
                .unwrap_or(0);
            let mut t = min_step;
            while t < trial.len() {
                let mut probe = trial[t].clone();
                probe.push(id);
                if group_legal(graph, target, &probe) {
                    break;
                }
                t += 1;
            }
            if t == trial.len() {
                trial.push(Vec::new());
            }
            trial[t].push(id);
            placed_step.insert(id, t);
        }
    }
    if trial.len() >= schedule.steps.len() {
        return;
    }
    let trial_sched = Schedule {
        steps: trial,
        spills: schedule.spills.clone(),
    };
    if verify_schedule(graph, target, &trial_sched).is_err() {
        return;
    }
    let Ok(trial_alloc) = allocate(graph, target, &trial_sched) else {
        return;
    };
    *schedule = trial_sched;
    *alloc = trial_alloc;
}

/// Whether a set of cover nodes may share one instruction: unit and bus
/// resources plus the ISDL constraints (dependencies are enforced by the
/// caller's placement order).
pub fn group_legal(graph: &CoverGraph, target: &Target, group: &[CnId]) -> bool {
    let mut unit_used = vec![false; target.machine.units().len()];
    let mut bus_used = vec![0u32; target.machine.buses().len()];
    for &id in group {
        match graph.node(id).resource() {
            Resource::Unit(u) => {
                if unit_used[u.index()] {
                    return false;
                }
                unit_used[u.index()] = true;
            }
            Resource::Bus(b) => {
                bus_used[b.index()] += 1;
                if bus_used[b.index()] > target.machine.bus(b).capacity {
                    return false;
                }
            }
        }
    }
    for con in target.machine.constraints() {
        let mut count = 0u32;
        for &id in group {
            let node = graph.node(id);
            let matched = con.members.iter().any(|pat| match *pat {
                SlotPattern::UnitOp { unit, op } => match &node.kind {
                    CnKind::Op { unit: u, op: o, .. } => {
                        *u == unit && op.is_none_or(|want| *o == want)
                    }
                    CnKind::Complex { unit: u, .. } => *u == unit && op.is_none(),
                    _ => false,
                },
                SlotPattern::BusUse { bus } => {
                    matches!(node.resource(), Resource::Bus(b) if b == bus)
                }
            });
            if matched {
                count += 1;
            }
        }
        if count > con.at_most {
            return false;
        }
    }
    true
}
