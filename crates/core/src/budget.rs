//! Cooperative compile-time budgets: node-expansion fuel and wall-clock
//! deadlines.
//!
//! The covering engine is a heuristic branch-and-bound whose worst case
//! explodes combinatorially; the paper prunes with user-set thresholds
//! precisely because full enumeration is infeasible. A [`Budget`] makes
//! that bound explicit and *cooperative*: the hot loops of assignment
//! exploration, clique generation, covering, and register allocation
//! [`charge`](Budget::charge) fuel units as they expand work, and bail
//! out with a structured [`Exhaustion`] the moment the allotment runs
//! dry. The driver reacts by stepping down its degradation ladder (see
//! [`crate::codegen::CoverMode`]) rather than aborting the compile.
//!
//! Budgets are deliberately *per block and per ladder rung*: every block
//! gets the full fuel allotment regardless of how many worker threads
//! plan blocks concurrently, so whether a block exhausts its budget is a
//! deterministic function of the block alone. A shared fuel pool would
//! make exhaustion depend on scheduling order and break the
//! byte-identical-for-any-`--jobs` guarantee. The wall-clock deadline is
//! the exception — it is an absolute [`Instant`] shared by the whole
//! function compile — and is therefore inherently nondeterministic; use
//! fuel when reproducibility matters and deadlines when latency does.

use std::cell::Cell;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How often (in charged calls) the wall clock is consulted. Reading
/// `Instant::now()` is a syscall on some platforms; the hot loops charge
/// millions of units, so the clock is only sampled every few hundred.
const CLOCK_STRIDE: u32 = 256;

/// Why a [`Budget`] ran out.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Exhaustion {
    /// The node-expansion fuel allotment was consumed.
    Fuel,
    /// The wall-clock deadline passed.
    Deadline,
    /// A [`CancelToken`] attached to the budget was fired. Unlike fuel
    /// and deadline exhaustion, cancellation does not walk the
    /// degradation ladder — the whole compile aborts with
    /// [`crate::CodegenError::Cancelled`].
    Cancelled,
    /// Exhaustion was injected by the fault harness
    /// ([`crate::faults::FaultConfig`]).
    Injected,
}

impl fmt::Display for Exhaustion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Exhaustion::Fuel => write!(f, "fuel exhausted"),
            Exhaustion::Deadline => write!(f, "deadline exceeded"),
            Exhaustion::Cancelled => write!(f, "compile cancelled"),
            Exhaustion::Injected => write!(f, "injected budget exhaustion"),
        }
    }
}

/// A cooperative cancellation handle: a shared flag plus a generation
/// id identifying which request armed it.
///
/// Cloning shares the flag (`Arc<AtomicBool>`); [`cancel`](CancelToken::cancel)
/// from any thread makes every [`Budget`] carrying a clone report
/// [`Exhaustion::Cancelled`] at its next check — within one
/// clock-stride quantum of charges in the hot loops. The generation id
/// is free-form bookkeeping for registries that map request ids to
/// tokens: a reused request id gets a new generation, so a stale
/// cancel can be detected and ignored by the owner of the registry
/// (the token itself never compares generations).
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
    generation: u64,
}

impl CancelToken {
    /// A fresh, unfired token with generation 0.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// A fresh, unfired token carrying `generation`.
    pub fn with_generation(generation: u64) -> CancelToken {
        CancelToken {
            flag: Arc::new(AtomicBool::new(false)),
            generation,
        }
    }

    /// Fire the token: every budget sharing it observes cancellation at
    /// its next check. Idempotent.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Whether the token has been fired.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }

    /// The generation id this token was armed with.
    pub fn generation(&self) -> u64 {
        self.generation
    }
}

/// Tokens are equal when they share the same flag allocation (and
/// generation) — value comparison of an `AtomicBool` snapshot would
/// make [`crate::CodegenOptions`] equality racy.
impl PartialEq for CancelToken {
    fn eq(&self, other: &CancelToken) -> bool {
        Arc::ptr_eq(&self.flag, &other.flag) && self.generation == other.generation
    }
}

impl Eq for CancelToken {}

/// A cooperative compile budget: optional node-expansion fuel plus an
/// optional absolute wall-clock deadline.
///
/// Not `Sync` on purpose (interior [`Cell`]s): each planner thread
/// constructs its own budget from [`crate::CodegenOptions`], which is
/// what keeps fuel exhaustion deterministic under parallel planning.
#[derive(Debug, Clone)]
pub struct Budget {
    /// Remaining fuel; `None` means unlimited.
    fuel: Cell<Option<u64>>,
    /// Absolute deadline; `None` means no time limit.
    deadline: Option<Instant>,
    /// Countdown to the next wall-clock/cancellation sample.
    clock_in: Cell<u32>,
    /// Latched exhaustion cause; once set it never clears.
    exhausted: Cell<Option<Exhaustion>>,
    /// Total units charged (for reporting).
    spent: Cell<u64>,
    /// Cooperative cancellation flag, sampled on the same stride as the
    /// wall clock; `None` means the budget cannot be cancelled.
    cancel: Option<CancelToken>,
}

impl Budget {
    /// A budget that never runs out.
    pub fn unlimited() -> Budget {
        Budget::new(None, None)
    }

    /// A budget with the given fuel allotment and absolute deadline.
    pub fn new(fuel: Option<u64>, deadline: Option<Instant>) -> Budget {
        Budget {
            fuel: Cell::new(fuel),
            deadline,
            clock_in: Cell::new(0),
            exhausted: Cell::new(None),
            spent: Cell::new(0),
            cancel: None,
        }
    }

    /// Attach a [`CancelToken`]: once fired (from any thread), the next
    /// stride-aligned [`charge`](Budget::charge) or
    /// [`check`](Budget::check) reports [`Exhaustion::Cancelled`]. The
    /// countdown starts at zero, so a budget built from an
    /// already-fired token fails its very first check — before any
    /// covering expansion.
    pub fn with_cancel(mut self, cancel: Option<CancelToken>) -> Budget {
        self.cancel = cancel;
        self
    }

    /// A budget with `fuel` units and `deadline_ms` milliseconds from
    /// now, either optional.
    pub fn from_limits(fuel: Option<u64>, deadline_ms: Option<u64>) -> Budget {
        Budget::new(fuel, deadline(deadline_ms))
    }

    /// Charge `units` of work. Returns the exhaustion cause once the
    /// fuel allotment is consumed or the deadline has passed; every call
    /// after that keeps failing with the same cause.
    ///
    /// # Errors
    ///
    /// [`Exhaustion`] when the budget has run out.
    pub fn charge(&self, units: u64) -> Result<(), Exhaustion> {
        self.note(units);
        match self.exhausted.get() {
            Some(why) => Err(why),
            None => Ok(()),
        }
    }

    /// Check for exhaustion without charging any fuel.
    ///
    /// # Errors
    ///
    /// [`Exhaustion`] when the budget has run out.
    pub fn check(&self) -> Result<(), Exhaustion> {
        self.charge(0)
    }

    /// Record `units` of work without failing — for nested estimators
    /// (e.g. the covering lookahead) that cannot propagate an error; the
    /// enclosing loop's next [`charge`](Budget::charge) observes the
    /// exhaustion.
    pub fn note(&self, units: u64) {
        self.spent.set(self.spent.get().saturating_add(units));
        if self.exhausted.get().is_some() {
            return;
        }
        if let Some(f) = self.fuel.get() {
            let left = f.saturating_sub(units);
            self.fuel.set(Some(left));
            if left == 0 {
                self.exhausted.set(Some(Exhaustion::Fuel));
                return;
            }
        }
        if self.deadline.is_some() || self.cancel.is_some() {
            let countdown = self.clock_in.get();
            if countdown == 0 {
                self.clock_in.set(CLOCK_STRIDE);
                // Cancellation outranks the deadline at the same sample:
                // a cancelled request should report as cancelled, not as
                // having coincidentally timed out.
                if self.cancel.as_ref().is_some_and(CancelToken::is_cancelled) {
                    self.exhausted.set(Some(Exhaustion::Cancelled));
                } else if self.deadline.is_some_and(|d| Instant::now() >= d) {
                    self.exhausted.set(Some(Exhaustion::Deadline));
                }
            } else {
                self.clock_in.set(countdown - 1);
            }
        }
    }

    /// Force the budget into the exhausted state (fault-injection hook).
    pub fn exhaust(&self, why: Exhaustion) {
        if self.exhausted.get().is_none() {
            self.exhausted.set(Some(why));
        }
    }

    /// The latched exhaustion cause, if the budget has run out.
    pub fn exhaustion(&self) -> Option<Exhaustion> {
        self.exhausted.get()
    }

    /// Total units charged so far.
    pub fn spent(&self) -> u64 {
        self.spent.get()
    }
}

impl Default for Budget {
    fn default() -> Budget {
        Budget::unlimited()
    }
}

/// Resolve a relative `deadline_ms` to an absolute instant. Computed
/// once per function compile and shared by every block so all blocks
/// race the same clock.
pub fn deadline(deadline_ms: Option<u64>) -> Option<Instant> {
    deadline_ms.map(|ms| Instant::now() + Duration::from_millis(ms))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_exhausts() {
        let b = Budget::unlimited();
        for _ in 0..10_000 {
            assert!(b.charge(1_000_000).is_ok());
        }
        assert_eq!(b.exhaustion(), None);
    }

    #[test]
    fn fuel_exhausts_and_latches() {
        let b = Budget::new(Some(10), None);
        assert!(b.charge(9).is_ok());
        assert_eq!(b.charge(1), Err(Exhaustion::Fuel));
        assert_eq!(b.charge(0), Err(Exhaustion::Fuel));
        assert_eq!(b.check(), Err(Exhaustion::Fuel));
        assert_eq!(b.exhaustion(), Some(Exhaustion::Fuel));
    }

    #[test]
    fn note_is_soft_but_observed_by_next_charge() {
        let b = Budget::new(Some(5), None);
        b.note(100);
        assert_eq!(b.check(), Err(Exhaustion::Fuel));
        assert_eq!(b.spent(), 100);
    }

    #[test]
    fn past_deadline_exhausts_within_one_stride() {
        let b = Budget::new(None, Some(Instant::now() - Duration::from_millis(1)));
        let mut out = Ok(());
        for _ in 0..=CLOCK_STRIDE {
            out = b.charge(1);
            if out.is_err() {
                break;
            }
        }
        assert_eq!(out, Err(Exhaustion::Deadline));
    }

    #[test]
    fn pre_cancelled_token_fails_the_first_check() {
        let token = CancelToken::new();
        token.cancel();
        let b = Budget::unlimited().with_cancel(Some(token));
        // The countdown starts at zero: the very first check samples the
        // token, so a pre-cancelled compile never expands a node.
        assert_eq!(b.check(), Err(Exhaustion::Cancelled));
    }

    #[test]
    fn cancellation_lands_within_one_stride() {
        let token = CancelToken::new();
        let b = Budget::unlimited().with_cancel(Some(token.clone()));
        assert!(b.check().is_ok());
        token.cancel();
        let mut out = Ok(());
        for _ in 0..=CLOCK_STRIDE {
            out = b.charge(1);
            if out.is_err() {
                break;
            }
        }
        assert_eq!(out, Err(Exhaustion::Cancelled));
    }

    #[test]
    fn cancellation_outranks_a_blown_deadline() {
        let token = CancelToken::new();
        token.cancel();
        let b = Budget::new(None, Some(Instant::now() - Duration::from_millis(1)))
            .with_cancel(Some(token));
        assert_eq!(b.check(), Err(Exhaustion::Cancelled));
    }

    #[test]
    fn token_equality_is_by_identity() {
        let a = CancelToken::with_generation(3);
        let b = a.clone();
        assert_eq!(a, b);
        assert_ne!(a, CancelToken::with_generation(3));
        a.cancel();
        assert!(b.is_cancelled(), "clones share the flag");
        assert_eq!(b.generation(), 3);
    }

    #[test]
    fn injected_exhaustion_wins_only_if_first() {
        let b = Budget::unlimited();
        b.exhaust(Exhaustion::Injected);
        b.exhaust(Exhaustion::Fuel);
        assert_eq!(b.check(), Err(Exhaustion::Injected));
    }
}
