//! Cooperative compile-time budgets: node-expansion fuel and wall-clock
//! deadlines.
//!
//! The covering engine is a heuristic branch-and-bound whose worst case
//! explodes combinatorially; the paper prunes with user-set thresholds
//! precisely because full enumeration is infeasible. A [`Budget`] makes
//! that bound explicit and *cooperative*: the hot loops of assignment
//! exploration, clique generation, covering, and register allocation
//! [`charge`](Budget::charge) fuel units as they expand work, and bail
//! out with a structured [`Exhaustion`] the moment the allotment runs
//! dry. The driver reacts by stepping down its degradation ladder (see
//! [`crate::codegen::CoverMode`]) rather than aborting the compile.
//!
//! Budgets are deliberately *per block and per ladder rung*: every block
//! gets the full fuel allotment regardless of how many worker threads
//! plan blocks concurrently, so whether a block exhausts its budget is a
//! deterministic function of the block alone. A shared fuel pool would
//! make exhaustion depend on scheduling order and break the
//! byte-identical-for-any-`--jobs` guarantee. The wall-clock deadline is
//! the exception — it is an absolute [`Instant`] shared by the whole
//! function compile — and is therefore inherently nondeterministic; use
//! fuel when reproducibility matters and deadlines when latency does.

use std::cell::Cell;
use std::fmt;
use std::time::{Duration, Instant};

/// How often (in charged calls) the wall clock is consulted. Reading
/// `Instant::now()` is a syscall on some platforms; the hot loops charge
/// millions of units, so the clock is only sampled every few hundred.
const CLOCK_STRIDE: u32 = 256;

/// Why a [`Budget`] ran out.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Exhaustion {
    /// The node-expansion fuel allotment was consumed.
    Fuel,
    /// The wall-clock deadline passed.
    Deadline,
    /// Exhaustion was injected by the fault harness
    /// ([`crate::faults::FaultConfig`]).
    Injected,
}

impl fmt::Display for Exhaustion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Exhaustion::Fuel => write!(f, "fuel exhausted"),
            Exhaustion::Deadline => write!(f, "deadline exceeded"),
            Exhaustion::Injected => write!(f, "injected budget exhaustion"),
        }
    }
}

/// A cooperative compile budget: optional node-expansion fuel plus an
/// optional absolute wall-clock deadline.
///
/// Not `Sync` on purpose (interior [`Cell`]s): each planner thread
/// constructs its own budget from [`crate::CodegenOptions`], which is
/// what keeps fuel exhaustion deterministic under parallel planning.
#[derive(Debug, Clone)]
pub struct Budget {
    /// Remaining fuel; `None` means unlimited.
    fuel: Cell<Option<u64>>,
    /// Absolute deadline; `None` means no time limit.
    deadline: Option<Instant>,
    /// Countdown to the next wall-clock sample.
    clock_in: Cell<u32>,
    /// Latched exhaustion cause; once set it never clears.
    exhausted: Cell<Option<Exhaustion>>,
    /// Total units charged (for reporting).
    spent: Cell<u64>,
}

impl Budget {
    /// A budget that never runs out.
    pub fn unlimited() -> Budget {
        Budget::new(None, None)
    }

    /// A budget with the given fuel allotment and absolute deadline.
    pub fn new(fuel: Option<u64>, deadline: Option<Instant>) -> Budget {
        Budget {
            fuel: Cell::new(fuel),
            deadline,
            clock_in: Cell::new(0),
            exhausted: Cell::new(None),
            spent: Cell::new(0),
        }
    }

    /// A budget with `fuel` units and `deadline_ms` milliseconds from
    /// now, either optional.
    pub fn from_limits(fuel: Option<u64>, deadline_ms: Option<u64>) -> Budget {
        Budget::new(fuel, deadline(deadline_ms))
    }

    /// Charge `units` of work. Returns the exhaustion cause once the
    /// fuel allotment is consumed or the deadline has passed; every call
    /// after that keeps failing with the same cause.
    ///
    /// # Errors
    ///
    /// [`Exhaustion`] when the budget has run out.
    pub fn charge(&self, units: u64) -> Result<(), Exhaustion> {
        self.note(units);
        match self.exhausted.get() {
            Some(why) => Err(why),
            None => Ok(()),
        }
    }

    /// Check for exhaustion without charging any fuel.
    ///
    /// # Errors
    ///
    /// [`Exhaustion`] when the budget has run out.
    pub fn check(&self) -> Result<(), Exhaustion> {
        self.charge(0)
    }

    /// Record `units` of work without failing — for nested estimators
    /// (e.g. the covering lookahead) that cannot propagate an error; the
    /// enclosing loop's next [`charge`](Budget::charge) observes the
    /// exhaustion.
    pub fn note(&self, units: u64) {
        self.spent.set(self.spent.get().saturating_add(units));
        if self.exhausted.get().is_some() {
            return;
        }
        if let Some(f) = self.fuel.get() {
            let left = f.saturating_sub(units);
            self.fuel.set(Some(left));
            if left == 0 {
                self.exhausted.set(Some(Exhaustion::Fuel));
                return;
            }
        }
        if let Some(deadline) = self.deadline {
            let countdown = self.clock_in.get();
            if countdown == 0 {
                self.clock_in.set(CLOCK_STRIDE);
                if Instant::now() >= deadline {
                    self.exhausted.set(Some(Exhaustion::Deadline));
                }
            } else {
                self.clock_in.set(countdown - 1);
            }
        }
    }

    /// Force the budget into the exhausted state (fault-injection hook).
    pub fn exhaust(&self, why: Exhaustion) {
        if self.exhausted.get().is_none() {
            self.exhausted.set(Some(why));
        }
    }

    /// The latched exhaustion cause, if the budget has run out.
    pub fn exhaustion(&self) -> Option<Exhaustion> {
        self.exhausted.get()
    }

    /// Total units charged so far.
    pub fn spent(&self) -> u64 {
        self.spent.get()
    }
}

impl Default for Budget {
    fn default() -> Budget {
        Budget::unlimited()
    }
}

/// Resolve a relative `deadline_ms` to an absolute instant. Computed
/// once per function compile and shared by every block so all blocks
/// race the same clock.
pub fn deadline(deadline_ms: Option<u64>) -> Option<Instant> {
    deadline_ms.map(|ms| Instant::now() + Duration::from_millis(ms))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_exhausts() {
        let b = Budget::unlimited();
        for _ in 0..10_000 {
            assert!(b.charge(1_000_000).is_ok());
        }
        assert_eq!(b.exhaustion(), None);
    }

    #[test]
    fn fuel_exhausts_and_latches() {
        let b = Budget::new(Some(10), None);
        assert!(b.charge(9).is_ok());
        assert_eq!(b.charge(1), Err(Exhaustion::Fuel));
        assert_eq!(b.charge(0), Err(Exhaustion::Fuel));
        assert_eq!(b.check(), Err(Exhaustion::Fuel));
        assert_eq!(b.exhaustion(), Some(Exhaustion::Fuel));
    }

    #[test]
    fn note_is_soft_but_observed_by_next_charge() {
        let b = Budget::new(Some(5), None);
        b.note(100);
        assert_eq!(b.check(), Err(Exhaustion::Fuel));
        assert_eq!(b.spent(), 100);
    }

    #[test]
    fn past_deadline_exhausts_within_one_stride() {
        let b = Budget::new(None, Some(Instant::now() - Duration::from_millis(1)));
        let mut out = Ok(());
        for _ in 0..=CLOCK_STRIDE {
            out = b.charge(1);
            if out.is_err() {
                break;
            }
        }
        assert_eq!(out, Err(Exhaustion::Deadline));
    }

    #[test]
    fn injected_exhaustion_wins_only_if_first() {
        let b = Budget::unlimited();
        b.exhaust(Exhaustion::Injected);
        b.exhaust(Exhaustion::Fuel);
        assert_eq!(b.check(), Err(Exhaustion::Injected));
    }
}
