//! The per-assignment cover graph.
//!
//! Once a functional-unit assignment is selected, "the data transfers
//! required for the given functional unit assignment are added" (paper
//! §IV-B): the Split-Node DAG collapses to a concrete graph whose nodes
//! are the operation instances, data-transfer instances, memory accesses,
//! and (later) loads and spills. This graph is what maximal cliques are
//! generated over and what the covering step schedules.
//!
//! Spill insertion (§IV-D, Fig. 9) mutates the graph in place: a spill
//! store is appended, pending transfers of the victim are replaced by
//! loads from the spill slot, and obsolete transfer nodes are marked dead.

use crate::assign::Assignment;
use aviv_ir::{BitMatrix, BitSet, BlockDag, NodeId, Op, Sym, SymbolTable};
use aviv_isdl::{BankId, BusId, Location, Target, UnitId};
use aviv_splitdag::{AltKind, Exec, SplitNodeDag};
use aviv_verify::{Code, Diagnostic};
use std::collections::HashMap;
use std::fmt;

/// Index of a node in a [`CoverGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CnId(pub u32);

impl CnId {
    /// Raw vector index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for CnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// A value operand of a cover node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Operand {
    /// The value produced by another cover node.
    Cn(CnId),
    /// An instruction immediate.
    Imm(i64),
}

/// What a cover node does.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CnKind {
    /// An operation on a functional unit.
    Op {
        /// Original DAG node.
        orig: NodeId,
        /// Executing unit.
        unit: UnitId,
        /// Operation.
        op: Op,
    },
    /// A complex instruction covering several original nodes.
    Complex {
        /// Original root node.
        orig: NodeId,
        /// Index into the machine's complex list.
        index: usize,
        /// Executing unit.
        unit: UnitId,
    },
    /// A register-to-register transfer.
    Move {
        /// Bus used.
        bus: BusId,
        /// Source bank.
        from: BankId,
        /// Destination bank.
        to: BankId,
    },
    /// A load of a named variable (or spill slot) from memory.
    LoadVar {
        /// The variable.
        sym: Sym,
        /// Bus used.
        bus: BusId,
        /// Destination bank.
        to: BankId,
    },
    /// A store of a value (or immediate) to a named variable.
    StoreVar {
        /// The variable.
        sym: Sym,
        /// Bus used.
        bus: BusId,
        /// Source bank (`None` when storing an immediate).
        from: Option<BankId>,
    },
    /// A dynamic load `mem[addr]` into `bank`.
    LoadDyn {
        /// Original DAG node.
        orig: NodeId,
        /// Bus used.
        bus: BusId,
        /// Destination bank (address must also reside here).
        bank: BankId,
    },
    /// A dynamic store `mem[addr] = value` from `bank`.
    StoreDyn {
        /// Original DAG node.
        orig: NodeId,
        /// Bus used.
        bus: BusId,
        /// Source bank (address and value reside here).
        bank: BankId,
    },
}

/// The execution resource a cover node occupies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Resource {
    /// A functional-unit slot.
    Unit(UnitId),
    /// A bus slot.
    Bus(BusId),
}

/// One node of the cover graph.
#[derive(Debug, Clone)]
pub struct CoverNode {
    /// What the node does.
    pub kind: CnKind,
    /// Value operands.
    pub args: Vec<Operand>,
    /// Extra ordering predecessors (memory serialization, spill→load).
    pub deps: Vec<CnId>,
}

impl CoverNode {
    /// The resource the node occupies.
    pub fn resource(&self) -> Resource {
        match self.kind {
            CnKind::Op { unit, .. } | CnKind::Complex { unit, .. } => Resource::Unit(unit),
            CnKind::Move { bus, .. }
            | CnKind::LoadVar { bus, .. }
            | CnKind::StoreVar { bus, .. }
            | CnKind::LoadDyn { bus, .. }
            | CnKind::StoreDyn { bus, .. } => Resource::Bus(bus),
        }
    }

    /// The bank the node's result lands in (`None` for stores).
    pub fn dest_bank(&self, target: &Target) -> Option<BankId> {
        match self.kind {
            CnKind::Op { unit, .. } | CnKind::Complex { unit, .. } => {
                Some(target.machine.bank_of(unit))
            }
            CnKind::Move { to, .. } | CnKind::LoadVar { to, .. } => Some(to),
            CnKind::LoadDyn { bank, .. } => Some(bank),
            CnKind::StoreVar { .. } | CnKind::StoreDyn { .. } => None,
        }
    }

    /// True for transfer-class nodes (everything on a bus).
    pub fn is_transfer(&self) -> bool {
        matches!(self.resource(), Resource::Bus(_))
    }
}

/// Result of a spill mutation.
#[derive(Debug, Clone)]
pub struct SpillOutcome {
    /// The spill-store node (must be scheduled); `None` when the victim
    /// was rematerialized from memory instead of stored (the value was a
    /// load whose source is still valid).
    pub spill: Option<CnId>,
    /// Newly created load/move nodes.
    pub new_nodes: Vec<CnId>,
    /// Nodes made dead (obsolete transfers).
    pub removed: Vec<CnId>,
}

/// The concrete implementation graph of one assignment.
#[derive(Debug, Clone)]
pub struct CoverGraph {
    nodes: Vec<CoverNode>,
    dead: BitSet,
    /// Cover node producing each original node's value.
    value_of_orig: Vec<Option<CnId>>,
    /// Values that must stay live (in a register) at block end, with the
    /// original node they implement.
    live_out: Vec<(NodeId, Operand)>,
    /// Rebuilt on demand after mutation.
    uses: Vec<Vec<CnId>>,
    /// Packed reachability: row `i` holds the ancestors of node `i`. A
    /// single allocation probed on every pair the parallelism matrix
    /// builds, so it lives in one cache-friendly [`BitMatrix`] rather
    /// than a `Vec` of heap-allocated sets.
    desc: BitMatrix,
    levels_top: Vec<u32>,
    levels_bottom: Vec<u32>,
    /// Per-bus usage counts (for the §IV-B path-choice heuristic).
    bus_usage: Vec<usize>,
}

impl CoverGraph {
    /// [`CoverGraph::build`] with the builder's input preconditions
    /// checked up front: every constant carries an immediate, every
    /// variable node a symbol, every operation a chosen alternative on a
    /// capable resource, and every register bank a transfer path to and
    /// from memory. Malformed input yields a structured `C003`
    /// diagnostic instead of a panic deep inside construction, which is
    /// what lets the compilation driver degrade gracefully.
    ///
    /// # Errors
    ///
    /// A [`Diagnostic`] with code `C003` describing the first violated
    /// precondition.
    pub fn try_build(
        dag: &BlockDag,
        sndag: &SplitNodeDag,
        target: &Target,
        assignment: &Assignment,
    ) -> Result<CoverGraph, Diagnostic> {
        validate_build_inputs(dag, sndag, target, assignment)?;
        Ok(CoverGraph::build(dag, sndag, target, assignment))
    }

    /// Build the cover graph of `assignment` for `dag` on `target`.
    pub fn build(
        dag: &BlockDag,
        sndag: &SplitNodeDag,
        target: &Target,
        assignment: &Assignment,
    ) -> CoverGraph {
        let mut b = GraphBuilder {
            dag,
            sndag,
            target,
            assignment,
            nodes: Vec::new(),
            value_of_orig: vec![None; dag.len()],
            n_banks: target.machine.banks().len(),
            move_cache: Vec::new(),
            loadvar_cache: Vec::new(),
            mem_cn: vec![None; dag.len()],
            loads_by_sym: Vec::new(),
            stores_by_sym: Vec::new(),
            bus_usage: vec![0; target.machine.buses().len()],
        };
        b.run();

        // Live-outs: branch conditions / return values must sit in a
        // register (or be immediates) at block end. A live-out that is a
        // plain input leaf gets loaded into the bank nearest memory.
        let mut live_out = Vec::new();
        for &(_, orig) in dag.live_outs() {
            let operand = match dag.node(orig).op {
                Op::Const => Operand::Imm(dag.node(orig).imm.expect("validated: const has imm")),
                Op::Input => {
                    let bank = target.load_bank.expect("machine has banks");
                    b.resolve(orig, bank)
                }
                _ => Operand::Cn(
                    b.value_of_orig[orig.index()].expect("live-out value was materialized"),
                ),
            };
            live_out.push((orig, operand));
        }

        let n = b.nodes.len();
        let mut g = CoverGraph {
            nodes: b.nodes,
            dead: BitSet::new(n),
            value_of_orig: b.value_of_orig,
            live_out,
            uses: Vec::new(),
            desc: BitMatrix::new(0, 0),
            levels_top: Vec::new(),
            levels_bottom: Vec::new(),
            bus_usage: b.bus_usage,
        };
        g.rebuild_indexes();
        g
    }

    /// Decompose into the essential fields the snapshot codec
    /// ([`crate::persist`]) writes to disk. The derived indexes (uses,
    /// reachability, levels) are *not* part of the wire format —
    /// [`CoverGraph::from_wire_parts`] recomputes them, which keeps the
    /// format small and makes a decoded graph self-consistent by
    /// construction.
    #[allow(clippy::type_complexity)]
    pub(crate) fn wire_parts(
        &self,
    ) -> (
        &[CoverNode],
        &BitSet,
        &[Option<CnId>],
        &[(NodeId, Operand)],
        &[usize],
    ) {
        (
            &self.nodes,
            &self.dead,
            &self.value_of_orig,
            &self.live_out,
            &self.bus_usage,
        )
    }

    /// Reassemble a graph from decoded snapshot parts, rebuilding every
    /// derived index. See [`CoverGraph::wire_parts`].
    pub(crate) fn from_wire_parts(
        nodes: Vec<CoverNode>,
        dead: BitSet,
        value_of_orig: Vec<Option<CnId>>,
        live_out: Vec<(NodeId, Operand)>,
        bus_usage: Vec<usize>,
    ) -> CoverGraph {
        let mut g = CoverGraph {
            nodes,
            dead,
            value_of_orig,
            live_out,
            uses: Vec::new(),
            desc: BitMatrix::new(0, 0),
            levels_top: Vec::new(),
            levels_bottom: Vec::new(),
            bus_usage,
        };
        g.rebuild_indexes();
        g
    }

    /// All nodes, including dead ones — check [`CoverGraph::is_dead`].
    pub fn nodes(&self) -> &[CoverNode] {
        &self.nodes
    }

    /// Access a node.
    pub fn node(&self, id: CnId) -> &CoverNode {
        &self.nodes[id.index()]
    }

    /// Total node slots (including dead).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the graph has no nodes at all.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Number of live (non-dead) nodes — the cost-relevant size.
    pub fn live_len(&self) -> usize {
        self.nodes.len() - self.dead.count()
    }

    /// Whether a node has been removed by spill rewiring.
    pub fn is_dead(&self, id: CnId) -> bool {
        self.dead.contains(id.index())
    }

    /// The cover node producing each original node's value.
    pub fn value_of_orig(&self, orig: NodeId) -> Option<CnId> {
        self.value_of_orig[orig.index()]
    }

    /// Values that must remain in registers at block end.
    pub fn live_out(&self) -> &[(NodeId, Operand)] {
        &self.live_out
    }

    /// Consumers of each node's value (alive consumers only).
    pub fn uses(&self, id: CnId) -> &[CnId] {
        &self.uses[id.index()]
    }

    /// Dependency test: is there a directed path between `a` and `b`?
    pub fn dependent(&self, a: CnId, b: CnId) -> bool {
        self.desc.contains(a.index(), b.index()) || self.desc.contains(b.index(), a.index())
    }

    /// All predecessors (operands + ordering deps) of `id`.
    pub fn preds(&self, id: CnId) -> Vec<CnId> {
        let n = &self.nodes[id.index()];
        let mut p: Vec<CnId> = n
            .args
            .iter()
            .filter_map(|a| match a {
                Operand::Cn(c) => Some(*c),
                Operand::Imm(_) => None,
            })
            .collect();
        p.extend(n.deps.iter().copied());
        p
    }

    /// Level from the top (roots = consumers-of-nothing have 0).
    pub fn level_top(&self, id: CnId) -> u32 {
        self.levels_top[id.index()]
    }

    /// Level from the bottom (nodes with no predecessors have 0).
    pub fn level_bottom(&self, id: CnId) -> u32 {
        self.levels_bottom[id.index()]
    }

    /// Recompute uses, reachability, and levels after mutation.
    ///
    /// Spill rewiring can point old nodes at newly appended loads, so ids
    /// are no longer topological; a Kahn ordering over the alive subgraph
    /// drives the dataflow computations.
    pub fn rebuild_indexes(&mut self) {
        let n = self.nodes.len();
        self.uses = vec![Vec::new(); n];
        for i in 0..n {
            if self.dead.contains(i) {
                continue;
            }
            for a in &self.nodes[i].args {
                if let Operand::Cn(c) = a {
                    self.uses[c.index()].push(CnId(i as u32));
                }
            }
        }
        // Kahn topological order over alive nodes.
        let mut indeg = vec![0usize; n];
        let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, d) in indeg.iter_mut().enumerate() {
            if self.dead.contains(i) {
                continue;
            }
            for p in self.preds(CnId(i as u32)) {
                debug_assert!(
                    !self.dead.contains(p.index()),
                    "dead predecessor {p} of c{i}: {:?} <- {:?}",
                    self.nodes[p.index()].kind,
                    self.nodes[i].kind
                );
                *d += 1;
                succs[p.index()].push(i);
            }
        }
        let mut order: Vec<usize> = Vec::with_capacity(n);
        let mut queue: Vec<usize> = (0..n)
            .filter(|&i| !self.dead.contains(i) && indeg[i] == 0)
            .collect();
        // Deterministic: process smallest id first.
        queue.sort_unstable_by(|a, b| b.cmp(a));
        while let Some(i) = queue.pop() {
            order.push(i);
            for &s in &succs[i] {
                indeg[s] -= 1;
                if indeg[s] == 0 {
                    // Insert keeping the stack roughly id-sorted.
                    let pos = queue.binary_search_by(|&q| s.cmp(&q)).unwrap_or_else(|p| p);
                    queue.insert(pos, s);
                }
            }
        }
        debug_assert_eq!(
            order.len(),
            n - self.dead.count(),
            "cover graph must stay acyclic"
        );

        self.desc = BitMatrix::new(n, n);
        for &i in &order {
            // Predecessors come earlier in `order`, so their rows are
            // final; accumulate them into row `i` in place.
            for p in self.preds(CnId(i as u32)) {
                self.desc.set(i, p.index());
                self.desc.or_row_from(i, p.index());
            }
        }
        self.levels_bottom = vec![0; n];
        for &i in &order {
            let l = self
                .preds(CnId(i as u32))
                .iter()
                .map(|p| self.levels_bottom[p.index()] + 1)
                .max()
                .unwrap_or(0);
            self.levels_bottom[i] = l;
        }
        self.levels_top = vec![0; n];
        for &i in order.iter().rev() {
            let l = self.levels_top[i];
            for p in self.preds(CnId(i as u32)) {
                let pl = &mut self.levels_top[p.index()];
                *pl = (*pl).max(l + 1);
            }
        }
    }

    /// Relieve register pressure by evicting `victim`: either a true
    /// spill (store to a fresh slot + reloads, Fig. 9) or — when the
    /// victim is itself a load whose memory source is still intact — a
    /// *rematerialization*: unscheduled consumers simply reload the
    /// original location, no store needed. Rematerialization is what
    /// keeps the spill loop convergent: evicting a reload never creates
    /// new slots.
    ///
    /// # Errors
    ///
    /// A structured `C004` diagnostic when `victim` produces no value (a
    /// store), or `C003` when its bank has no path to memory — defects
    /// of the covering engine's victim selection, reported instead of
    /// panicking so the driver can degrade.
    pub fn relieve_pressure(
        &mut self,
        target: &Target,
        syms: &mut SymbolTable,
        victim: CnId,
        covered: &BitSet,
    ) -> Result<(Sym, SpillOutcome), Diagnostic> {
        if let CnKind::LoadVar { sym, .. } = self.nodes[victim.index()].kind {
            // The variable's memory cell is intact unless a write-back of
            // the same variable has already executed.
            let overwritten = (0..self.nodes.len()).any(|i| {
                !self.dead.contains(i)
                    && covered.contains(i)
                    && matches!(self.nodes[i].kind, CnKind::StoreVar { sym: s, .. } if s == sym)
            });
            if !overwritten {
                return Ok((sym, self.remat_load(target, victim, sym, covered)));
            }
        }
        self.spill_value(target, syms, victim, covered)
    }

    /// Spill `victim`'s value to `slot`: appends the spill store, replaces
    /// every *unscheduled* use with loads from the slot, and removes
    /// transfers that only existed to ferry the victim (Fig. 9).
    ///
    /// `covered` marks already-scheduled nodes; their operands are left
    /// untouched. The victim must produce a register value.
    ///
    /// # Errors
    ///
    /// A structured `C004` diagnostic when `victim` produces no value (a
    /// store), or `C003` when its bank has no path to memory.
    pub fn spill_value(
        &mut self,
        target: &Target,
        syms: &mut SymbolTable,
        victim: CnId,
        covered: &BitSet,
    ) -> Result<(Sym, SpillOutcome), Diagnostic> {
        let Some(vbank) = self.nodes[victim.index()].dest_bank(target) else {
            return Err(Diagnostic::new(
                Code::C004,
                format!("node {victim}"),
                "spill victim produces no register value",
            ));
        };
        let Some(path) = target
            .xfers
            .paths(Location::Bank(vbank), Location::Mem)
            .first()
            .cloned()
        else {
            return Err(Diagnostic::new(
                Code::C003,
                format!("bank {}", target.machine.bank(vbank).name),
                "no transfer path from the victim's bank to memory",
            ));
        };
        let slot = syms.fresh("__spill");

        let mut new_nodes = Vec::new();
        let mut removed = Vec::new();
        let mut cur = Operand::Cn(victim);
        let mut cur_dep: Option<CnId> = None;
        for (hi, hop) in path.hops.iter().enumerate() {
            let is_last = hi + 1 == path.hops.len();
            let kind = if is_last {
                let from = match hop.from {
                    Location::Bank(b) => b,
                    Location::Mem => unreachable!("store hop starts in a bank"),
                };
                CnKind::StoreVar {
                    sym: slot,
                    bus: hop.bus,
                    from: Some(from),
                }
            } else {
                let (Location::Bank(from), Location::Bank(to)) = (hop.from, hop.to) else {
                    unreachable!("memory is never an intermediate hop")
                };
                CnKind::Move {
                    bus: hop.bus,
                    from,
                    to,
                }
            };
            let id = CnId(self.nodes.len() as u32);
            self.nodes.push(CoverNode {
                kind,
                args: vec![cur],
                deps: cur_dep.into_iter().collect(),
            });
            self.dead.grow(self.nodes.len());
            new_nodes.push(id);
            cur = Operand::Cn(id);
            cur_dep = None;
        }
        let spill = *new_nodes.last().expect("path has at least one hop");

        // 2. Redirect unscheduled consumers to loads from the slot. The
        //    spill chain itself must keep reading the victim, so its
        //    nodes are protected from redirection.
        let protected: std::collections::HashSet<usize> =
            new_nodes.iter().map(|n| n.index()).collect();
        let jit = self.redirect_to_reloads(
            target,
            victim,
            covered,
            &protected,
            slot,
            Some(spill),
            &mut new_nodes,
            &mut removed,
        );
        self.prune_dead_deps();
        self.add_jit_deps(&jit, covered);

        self.rebuild_indexes();
        Ok((
            slot,
            SpillOutcome {
                spill: Some(spill),
                new_nodes,
                removed,
            },
        ))
    }

    /// Rematerialize a load victim: unscheduled consumers get fresh loads
    /// of the same memory location; no store, no new slot. Write-backs of
    /// the variable that are still pending gain ordering edges after the
    /// new loads (the entry value must be read first).
    fn remat_load(
        &mut self,
        target: &Target,
        victim: CnId,
        sym: Sym,
        covered: &BitSet,
    ) -> SpillOutcome {
        let mut new_nodes = Vec::new();
        let mut removed = Vec::new();
        let jit = self.redirect_to_reloads(
            target,
            victim,
            covered,
            &std::collections::HashSet::new(),
            sym,
            None,
            &mut new_nodes,
            &mut removed,
        );
        self.prune_dead_deps();
        self.add_jit_deps(&jit, covered);
        // Write-after-read: pending write-backs of `sym` wait for the new
        // loads (fresh loads have no predecessors, so no cycles).
        let loads: Vec<CnId> = new_nodes
            .iter()
            .copied()
            .filter(|&n| matches!(self.nodes[n.index()].kind, CnKind::LoadVar { .. }))
            .collect();
        for i in 0..self.nodes.len() {
            if self.dead.contains(i) || covered.contains(i) {
                continue;
            }
            if matches!(self.nodes[i].kind, CnKind::StoreVar { sym: s, .. } if s == sym) {
                for &l in &loads {
                    if !self.nodes[i].deps.contains(&l) {
                        self.nodes[i].deps.push(l);
                    }
                }
            }
        }
        self.rebuild_indexes();
        SpillOutcome {
            spill: None,
            new_nodes,
            removed,
        }
    }

    /// Shared spill/remat rewiring: every unscheduled consumer of
    /// `victim` is redirected to a reload chain of `slot_sym` into the
    /// bank it needs; pending moves that only ferried the victim die and
    /// their consumers chase the replacement transitively. Returns
    /// `(chain head, consumer)` pairs for the just-in-time ordering pass.
    #[allow(clippy::too_many_arguments)]
    fn redirect_to_reloads(
        &mut self,
        target: &Target,
        victim: CnId,
        covered: &BitSet,
        protected: &std::collections::HashSet<usize>,
        slot_sym: Sym,
        after: Option<CnId>,
        new_nodes: &mut Vec<CnId>,
        removed: &mut Vec<CnId>,
    ) -> Vec<(CnId, CnId)> {
        let mut jit: Vec<(CnId, CnId)> = Vec::new();
        let mut worklist: Vec<(CnId, CnId)> = Vec::new(); // (value node, consumer)
        for i in 0..self.nodes.len() {
            if self.dead.contains(i) || covered.contains(i) || protected.contains(&i) {
                continue;
            }
            if self.nodes[i].args.contains(&Operand::Cn(victim)) {
                worklist.push((victim, CnId(i as u32)));
            }
        }
        while let Some((value, consumer)) = worklist.pop() {
            let c = consumer.index();
            if self.dead.contains(c) || covered.contains(c) || protected.contains(&c) {
                continue;
            }
            // A pending move that only ferried this value dies; its
            // consumers chase the replacement instead.
            let is_ferry_move = matches!(self.nodes[c].kind, CnKind::Move { .. })
                && self.nodes[c].args == vec![Operand::Cn(value)];
            if is_ferry_move {
                self.dead.insert(c);
                removed.push(consumer);
                for i in 0..self.nodes.len() {
                    if self.dead.contains(i) || covered.contains(i) {
                        continue;
                    }
                    if self.nodes[i].args.contains(&Operand::Cn(consumer)) {
                        worklist.push((consumer, CnId(i as u32)));
                    }
                }
                continue;
            }
            // Replace the operand with a load chain into the bank the
            // consumer needs. Each consumer gets its *own* reload (the
            // paper counts "the number of parent nodes that would later
            // require the spilled value to be reloaded"): sharing one
            // reload across consumers would recreate the long live range
            // the spill was meant to break.
            let need_bank = self.operand_bank(target, consumer);
            let (head, tail) = {
                let first_new = new_nodes.len();
                let t = self.build_load_chain(target, slot_sym, need_bank, after, new_nodes);
                (new_nodes[first_new], t)
            };
            for a in &mut self.nodes[c].args {
                if *a == Operand::Cn(value) {
                    *a = Operand::Cn(tail);
                }
            }
            jit.push((head, consumer));
        }
        jit
    }

    /// Drop ordering edges that point at killed nodes. Only *advisory*
    /// deps (just-in-time reload ordering) can reference transfer moves —
    /// the correctness-bearing deps (memory serialization, write-after-
    /// read, spill-store ordering) all point at loads/stores, which are
    /// never killed — so dropping them is sound.
    pub(crate) fn prune_dead_deps(&mut self) {
        let dead = self.dead.clone();
        for i in 0..self.nodes.len() {
            if dead.contains(i) {
                continue;
            }
            self.nodes[i].deps.retain(|d| !dead.contains(d.index()));
        }
    }

    /// Just-in-time ordering for reload chains: a reload may only be
    /// scheduled once its consumer's *other* predecessors are done, so the
    /// reloaded register is consumed immediately instead of parking in a
    /// scarce bank (where the next pressure crisis would evict it again —
    /// the livelock this pass prevents). Each edge is checked against the
    /// current graph to keep it acyclic.
    fn add_jit_deps(&mut self, jit: &[(CnId, CnId)], covered: &BitSet) {
        for &(head, consumer) in jit {
            if self.dead.contains(head.index()) || self.dead.contains(consumer.index()) {
                continue;
            }
            for p in self.preds(consumer) {
                if p == head
                    || self.dead.contains(p.index())
                    || covered.contains(p.index())
                    || self.nodes[head.index()].deps.contains(&p)
                {
                    continue;
                }
                // Safe only if p does not (now) depend on head.
                if self.reaches_via_preds(p, head) {
                    continue;
                }
                self.nodes[head.index()].deps.push(p);
            }
        }
    }

    /// Whether `to` is in `from`'s predecessor closure (on the current,
    /// possibly unindexed graph).
    fn reaches_via_preds(&self, from: CnId, to: CnId) -> bool {
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![from];
        while let Some(n) = stack.pop() {
            if n == to {
                return true;
            }
            if !seen.insert(n) {
                continue;
            }
            for p in self.preds(n) {
                stack.push(p);
            }
        }
        false
    }

    /// The bank a consumer reads its register operands from.
    fn operand_bank(&self, target: &Target, consumer: CnId) -> BankId {
        match self.nodes[consumer.index()].kind {
            CnKind::Op { unit, .. } | CnKind::Complex { unit, .. } => target.machine.bank_of(unit),
            CnKind::Move { from, .. } => from,
            CnKind::StoreVar { from, .. } => from.expect("store of a register value"),
            CnKind::LoadDyn { bank, .. } | CnKind::StoreDyn { bank, .. } => bank,
            CnKind::LoadVar { .. } => unreachable!("loads have no register operands"),
        }
    }

    /// Build a load chain `slot`(memory) → `bank`, optionally ordered
    /// after a spill store.
    fn build_load_chain(
        &mut self,
        target: &Target,
        slot: Sym,
        bank: BankId,
        after: Option<CnId>,
        new_nodes: &mut Vec<CnId>,
    ) -> CnId {
        let path = target
            .xfers
            .paths(Location::Mem, Location::Bank(bank))
            .first()
            .expect("validated machines reach every bank from memory")
            .clone();
        let mut cur: Option<CnId> = None;
        for hop in &path.hops {
            let kind = match (hop.from, hop.to) {
                (Location::Mem, Location::Bank(t)) => CnKind::LoadVar {
                    sym: slot,
                    bus: hop.bus,
                    to: t,
                },
                (Location::Bank(f), Location::Bank(t)) => CnKind::Move {
                    bus: hop.bus,
                    from: f,
                    to: t,
                },
                _ => unreachable!("memory is never an intermediate hop"),
            };
            let id = CnId(self.nodes.len() as u32);
            let (args, deps) = match cur {
                None => (Vec::new(), after.into_iter().collect()),
                Some(prev) => (vec![Operand::Cn(prev)], Vec::new()),
            };
            self.nodes.push(CoverNode { kind, args, deps });
            self.dead.grow(self.nodes.len());
            new_nodes.push(id);
            cur = Some(id);
        }
        cur.expect("path has at least one hop")
    }

    /// Current per-bus usage counts (path-choice heuristic state).
    pub fn bus_usage(&self) -> &[usize] {
        &self.bus_usage
    }

    /// Replace every alive reference to `from` with `to` (peephole spill
    /// undo). Call [`CoverGraph::rebuild_indexes`] when done mutating.
    pub fn rewire_all(&mut self, from: CnId, to: CnId) {
        for i in 0..self.nodes.len() {
            if self.dead.contains(i) {
                continue;
            }
            for a in &mut self.nodes[i].args {
                if *a == Operand::Cn(from) {
                    *a = Operand::Cn(to);
                }
            }
            for d in &mut self.nodes[i].deps {
                if *d == from {
                    *d = to;
                }
            }
        }
        for (_, op) in &mut self.live_out {
            if *op == Operand::Cn(from) {
                *op = Operand::Cn(to);
            }
        }
    }

    /// Mark a node dead (peephole removal). The caller must have rewired
    /// or removed all its consumers first; call
    /// [`CoverGraph::rebuild_indexes`] when done mutating.
    pub fn kill(&mut self, id: CnId) {
        self.dead.insert(id.index());
    }

    /// Structural invariants; used by tests and debug assertions.
    pub fn verify(&self, target: &Target) -> Result<(), String> {
        for (i, n) in self.nodes.iter().enumerate() {
            if self.dead.contains(i) {
                continue;
            }
            let id = CnId(i as u32);
            for a in &n.args {
                if let Operand::Cn(c) = a {
                    if c.index() >= self.nodes.len() {
                        return Err(format!("{id}: operand {c} out of range"));
                    }
                    if self.dead.contains(c.index()) {
                        return Err(format!("{id}: operand {c} is dead"));
                    }
                    let pb = self.nodes[c.index()].dest_bank(target);
                    if pb.is_none() {
                        return Err(format!("{id}: operand {c} produces no value"));
                    }
                    // Register operands must reside in the consumer bank
                    // (loads take no register operand).
                    if !matches!(n.kind, CnKind::LoadVar { .. }) {
                        let need = self.operand_bank(target, id);
                        if pb != Some(need) {
                            return Err(format!("{id}: operand {c} in {pb:?}, needs {need:?}"));
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Alive node ids in topological (ascending) order.
    pub fn alive(&self) -> Vec<CnId> {
        (0..self.nodes.len())
            .filter(|&i| !self.dead.contains(i))
            .map(|i| CnId(i as u32))
            .collect()
    }

    /// Rewrite every variable reference according to `map` (symbols not
    /// in the map are untouched). Used by the merge stage of parallel
    /// compilation: a block planned against a symbol-table snapshot names
    /// its spill slots locally, and the merge renames them to their final
    /// function-wide symbols before emission.
    pub fn remap_syms(&mut self, map: &HashMap<Sym, Sym>) {
        for n in &mut self.nodes {
            match &mut n.kind {
                CnKind::LoadVar { sym, .. } | CnKind::StoreVar { sym, .. } => {
                    if let Some(&m) = map.get(sym) {
                        *sym = m;
                    }
                }
                _ => {}
            }
        }
    }
}

struct GraphBuilder<'a> {
    dag: &'a BlockDag,
    sndag: &'a SplitNodeDag,
    target: &'a Target,
    assignment: &'a Assignment,
    nodes: Vec<CoverNode>,
    value_of_orig: Vec<Option<CnId>>,
    /// Bank count — the row stride of the two flat transfer caches.
    n_banks: usize,
    /// `producer.index() * n_banks + bank.index()` → chain tail. Flat and
    /// index-keyed: the builder probes it once per operand it resolves,
    /// so it must be a plain array lookup, not a hash probe. Grown on
    /// demand as nodes are appended.
    move_cache: Vec<Option<CnId>>,
    /// `sym.index() * n_banks + bank.index()` → chain tail; grown on
    /// demand (the builder never sees the symbol table's size).
    loadvar_cache: Vec<Option<CnId>>,
    /// Original memory node → cover node (for serialization edges),
    /// indexed by `NodeId`.
    mem_cn: Vec<Option<CnId>>,
    /// Entry-value loads per variable (LoadVar nodes only, not the moves
    /// behind them) — write-backs of the same variable must follow them.
    /// Indexed by `Sym`, grown on demand.
    loads_by_sym: Vec<Vec<CnId>>,
    /// Write-backs per variable.
    stores_by_sym: Vec<(Sym, CnId)>,
    bus_usage: Vec<usize>,
}

impl<'a> GraphBuilder<'a> {
    /// Cached transfer-chain tail ferrying `producer` into `bank`.
    fn move_cached(&self, producer: CnId, bank: BankId) -> Option<CnId> {
        let idx = producer.index() * self.n_banks + bank.index();
        self.move_cache.get(idx).copied().flatten()
    }

    fn cache_move(&mut self, producer: CnId, bank: BankId, tail: CnId) {
        let idx = producer.index() * self.n_banks + bank.index();
        if idx >= self.move_cache.len() {
            self.move_cache.resize(idx + 1, None);
        }
        self.move_cache[idx] = Some(tail);
    }

    /// Cached load-chain tail delivering `sym`'s entry value into `bank`.
    fn loadvar_cached(&self, sym: Sym, bank: BankId) -> Option<CnId> {
        let idx = sym.index() * self.n_banks + bank.index();
        self.loadvar_cache.get(idx).copied().flatten()
    }

    fn cache_loadvar(&mut self, sym: Sym, bank: BankId, tail: CnId) {
        let idx = sym.index() * self.n_banks + bank.index();
        if idx >= self.loadvar_cache.len() {
            self.loadvar_cache.resize(idx + 1, None);
        }
        self.loadvar_cache[idx] = Some(tail);
    }

    fn record_load(&mut self, sym: Sym, load: CnId) {
        if sym.index() >= self.loads_by_sym.len() {
            self.loads_by_sym.resize(sym.index() + 1, Vec::new());
        }
        self.loads_by_sym[sym.index()].push(load);
    }

    fn push(&mut self, kind: CnKind, args: Vec<Operand>) -> CnId {
        if let Resource::Bus(b) = (CoverNode {
            kind: kind.clone(),
            args: vec![],
            deps: vec![],
        })
        .resource()
        {
            self.bus_usage[b.index()] += 1;
        }
        let id = CnId(self.nodes.len() as u32);
        self.nodes.push(CoverNode {
            kind,
            args,
            deps: Vec::new(),
        });
        id
    }

    /// Choose among equal-cost transfer paths by current bus pressure
    /// (§IV-B: "the cost function is based solely on parallelism").
    fn choose_path(&self, from: Location, to: Location) -> aviv_isdl::TransferPath {
        let paths = self.target.xfers.paths(from, to);
        assert!(!paths.is_empty(), "no transfer path {from} -> {to}");
        paths
            .iter()
            .min_by_key(|p| {
                (
                    p.hops
                        .iter()
                        .map(|h| self.bus_usage[h.bus.index()])
                        .sum::<usize>(),
                    p.hops.first().map_or(0, |h| h.bus.0),
                )
            })
            .expect("nonempty")
            .clone()
    }

    /// Produce `orig`'s value in `bank`, inserting transfer chains.
    fn resolve(&mut self, orig: NodeId, bank: BankId) -> Operand {
        let n = self.dag.node(orig);
        match n.op {
            Op::Const => Operand::Imm(n.imm.expect("validated: const has imm")),
            Op::Input => {
                let sym = n.sym.expect("validated: input has sym");
                if let Some(t) = self.loadvar_cached(sym, bank) {
                    return Operand::Cn(t);
                }
                let path = self.choose_path(Location::Mem, Location::Bank(bank));
                let mut cur: Option<CnId> = None;
                for hop in &path.hops {
                    let id = match (hop.from, hop.to) {
                        (Location::Mem, Location::Bank(t)) => {
                            // Intermediate banks are cacheable too.
                            if let Some(c) = self.loadvar_cached(sym, t) {
                                c
                            } else {
                                let c = self.push(
                                    CnKind::LoadVar {
                                        sym,
                                        bus: hop.bus,
                                        to: t,
                                    },
                                    Vec::new(),
                                );
                                self.cache_loadvar(sym, t, c);
                                self.record_load(sym, c);
                                c
                            }
                        }
                        (Location::Bank(f), Location::Bank(t)) => {
                            let prev = cur.expect("bank hop follows the memory hop");
                            if let Some(c) = self.loadvar_cached(sym, t) {
                                c
                            } else {
                                let c = self.push(
                                    CnKind::Move {
                                        bus: hop.bus,
                                        from: f,
                                        to: t,
                                    },
                                    vec![Operand::Cn(prev)],
                                );
                                self.cache_loadvar(sym, t, c);
                                c
                            }
                        }
                        _ => unreachable!("memory is never an intermediate hop"),
                    };
                    cur = Some(id);
                }
                Operand::Cn(cur.expect("path nonempty"))
            }
            _ => {
                let producer = self.value_of_orig[orig.index()]
                    .expect("operands are materialized before consumers");
                let pbank = self.nodes[producer.index()]
                    .dest_bank(self.target)
                    .expect("value-producing node");
                if pbank == bank {
                    return Operand::Cn(producer);
                }
                if let Some(t) = self.move_cached(producer, bank) {
                    return Operand::Cn(t);
                }
                let path = self.choose_path(Location::Bank(pbank), Location::Bank(bank));
                let mut cur = producer;
                for hop in &path.hops {
                    let (Location::Bank(f), Location::Bank(t)) = (hop.from, hop.to) else {
                        unreachable!("memory is never an intermediate hop")
                    };
                    cur = if let Some(c) = self.move_cached(producer, t) {
                        c
                    } else {
                        let c = self.push(
                            CnKind::Move {
                                bus: hop.bus,
                                from: f,
                                to: t,
                            },
                            vec![Operand::Cn(cur)],
                        );
                        self.cache_move(producer, t, c);
                        c
                    };
                }
                Operand::Cn(cur)
            }
        }
    }

    fn run(&mut self) {
        for (orig, n) in self.dag.iter() {
            // Skipped: leaves (lazy), and nodes swallowed by a chosen
            // complex (their value comes from the complex node, assigned
            // when the root is processed — roots have larger ids).
            if n.op.is_leaf() || self.assignment.complex_covered[orig.index()] {
                continue;
            }
            match n.op {
                Op::StoreVar => {
                    let sym = n.sym.expect("validated: store-var has sym");
                    let vnode = n.args[0];
                    let vop = self.dag.node(vnode).op;
                    if vop == Op::Const {
                        // Immediate store straight to memory.
                        let path = self.choose_path(
                            // Any bank with a memory bus works; route from
                            // the first bank on a memory path. Immediates
                            // ride the bus directly.
                            Location::Bank(BankId(0)),
                            Location::Mem,
                        );
                        let bus = path.hops.last().expect("nonempty").bus;
                        let cn = self.push(
                            CnKind::StoreVar {
                                sym,
                                bus,
                                from: None,
                            },
                            vec![Operand::Imm(
                                self.dag.node(vnode).imm.expect("validated: const has imm"),
                            )],
                        );
                        self.mem_cn[orig.index()] = Some(cn);
                        self.stores_by_sym.push((sym, cn));
                        continue;
                    }
                    // Route the value to memory: intermediate hops are
                    // moves, the final hop is the store itself.
                    let producer_bank = if vop == Op::Input {
                        // Storing an unmodified input: load it somewhere
                        // first (degenerate but legal).
                        None
                    } else {
                        let p = self.value_of_orig[vnode.index()].expect("value materialized");
                        Some(
                            self.nodes[p.index()]
                                .dest_bank(self.target)
                                .expect("value-producing node"),
                        )
                    };
                    let src_bank = match producer_bank {
                        Some(b) => b,
                        None => self.target.round_trip_bank.expect("machine has banks"),
                    };
                    let value = self.resolve(vnode, src_bank);
                    let path = self.choose_path(Location::Bank(src_bank), Location::Mem);
                    let mut cur = value;
                    let mut store_cn = None;
                    for (hi, hop) in path.hops.iter().enumerate() {
                        let is_last = hi + 1 == path.hops.len();
                        if is_last {
                            let from = match hop.from {
                                Location::Bank(b) => b,
                                Location::Mem => unreachable!(),
                            };
                            let cn = self.push(
                                CnKind::StoreVar {
                                    sym,
                                    bus: hop.bus,
                                    from: Some(from),
                                },
                                vec![cur],
                            );
                            self.stores_by_sym.push((sym, cn));
                            store_cn = Some(cn);
                        } else {
                            let (Location::Bank(f), Location::Bank(t)) = (hop.from, hop.to) else {
                                unreachable!()
                            };
                            let cn = self.push(
                                CnKind::Move {
                                    bus: hop.bus,
                                    from: f,
                                    to: t,
                                },
                                vec![cur],
                            );
                            cur = Operand::Cn(cn);
                        }
                    }
                    self.mem_cn[orig.index()] = Some(store_cn.expect("store path nonempty"));
                }
                Op::Store | Op::Load => {
                    let ai = self.assignment.choice[orig.index()]
                        .expect("memory ops have chosen alternatives");
                    let alt = &self.sndag.alts(orig)[ai];
                    let (bus, bank) = match alt.exec {
                        aviv_splitdag::Exec::MemPort { bus, bank } => (bus, bank),
                        aviv_splitdag::Exec::Unit(_) => {
                            unreachable!("memory ops use memory ports")
                        }
                    };
                    if n.op == Op::Load {
                        let addr = self.resolve(n.args[0], bank);
                        let cn = self.push(CnKind::LoadDyn { orig, bus, bank }, vec![addr]);
                        self.value_of_orig[orig.index()] = Some(cn);
                        self.mem_cn[orig.index()] = Some(cn);
                    } else {
                        let addr = self.resolve(n.args[0], bank);
                        let val = self.resolve(n.args[1], bank);
                        let cn = self.push(CnKind::StoreDyn { orig, bus, bank }, vec![addr, val]);
                        self.mem_cn[orig.index()] = Some(cn);
                    }
                }
                _ => {
                    let ai = self.assignment.choice[orig.index()]
                        .expect("operations have chosen alternatives");
                    let alt = &self.sndag.alts(orig)[ai];
                    let unit = match alt.exec {
                        aviv_splitdag::Exec::Unit(u) => u,
                        aviv_splitdag::Exec::MemPort { .. } => {
                            unreachable!("pure ops execute on units")
                        }
                    };
                    let bank = self.target.machine.bank_of(unit);
                    match &alt.kind {
                        AltKind::Simple(op) => {
                            let args: Vec<Operand> = n
                                .args
                                .clone()
                                .into_iter()
                                .map(|a| self.resolve(a, bank))
                                .collect();
                            let cn = self.push(
                                CnKind::Op {
                                    orig,
                                    unit,
                                    op: *op,
                                },
                                args,
                            );
                            self.value_of_orig[orig.index()] = Some(cn);
                        }
                        AltKind::Complex {
                            index,
                            covers,
                            operands,
                        } => {
                            let args: Vec<Operand> = operands
                                .clone()
                                .into_iter()
                                .map(|a| self.resolve(a, bank))
                                .collect();
                            let cn = self.push(
                                CnKind::Complex {
                                    orig,
                                    index: *index,
                                    unit,
                                },
                                args,
                            );
                            for &c in covers {
                                self.value_of_orig[c.index()] = Some(cn);
                            }
                        }
                        AltKind::DynLoad | AltKind::DynStore => {
                            unreachable!("handled above")
                        }
                    }
                }
            }
        }
        // A variable's write-back must not overtake any same-block read
        // of its entry value (write-after-read on the variable's memory
        // cell). Loads have no inputs, so these edges cannot form cycles.
        for (sym, store_cn) in self.stores_by_sym.clone() {
            for &load_cn in self.loads_by_sym.get(sym.index()).into_iter().flatten() {
                if !self.nodes[store_cn.index()].deps.contains(&load_cn) {
                    self.nodes[store_cn.index()].deps.push(load_cn);
                }
            }
        }
        // Memory serialization edges.
        for &(earlier, later) in self.dag.mem_deps() {
            if let (Some(a), Some(b)) = (self.mem_cn[earlier.index()], self.mem_cn[later.index()]) {
                if a != b && !self.nodes[b.index()].deps.contains(&a) {
                    self.nodes[b.index()].deps.push(a);
                }
            }
        }
    }
}

/// Check every precondition the graph builder otherwise only `expect`s:
/// the exact set of properties whose violation would panic inside
/// [`CoverGraph::build`]. Kept in sync with the builder by construction —
/// each check cites the builder expectation it discharges.
fn validate_build_inputs(
    dag: &BlockDag,
    sndag: &SplitNodeDag,
    target: &Target,
    assignment: &Assignment,
) -> Result<(), Diagnostic> {
    let c003 = |element: String, message: String| Diagnostic::new(Code::C003, element, message);
    if assignment.choice.len() != dag.len() || assignment.complex_covered.len() != dag.len() {
        return Err(c003(
            "assignment".to_string(),
            format!(
                "assignment covers {} nodes but the DAG has {}",
                assignment.choice.len(),
                dag.len()
            ),
        ));
    }
    // "machine has banks" / "validated machines reach memory from every
    // bank" (spill stores, input loads, round trips).
    if target.load_bank.is_none() || target.round_trip_bank.is_none() {
        return Err(c003(
            "machine".to_string(),
            "machine has no register bank connected to memory".to_string(),
        ));
    }
    for (bi, bank) in target.machine.banks().iter().enumerate() {
        let b = BankId(bi as u32);
        if target
            .xfers
            .paths(Location::Bank(b), Location::Mem)
            .is_empty()
            || target
                .xfers
                .paths(Location::Mem, Location::Bank(b))
                .is_empty()
        {
            return Err(c003(
                format!("bank {}", bank.name),
                "no transfer path between this bank and memory".to_string(),
            ));
        }
    }
    for (orig, n) in dag.iter() {
        // Leaves are resolved lazily; `resolve` unwraps their payloads.
        match n.op {
            Op::Const if n.imm.is_none() => {
                return Err(c003(
                    format!("node {orig}"),
                    "constant node carries no immediate".to_string(),
                ));
            }
            Op::Input if n.sym.is_none() => {
                return Err(c003(
                    format!("node {orig}"),
                    "input node names no variable".to_string(),
                ));
            }
            _ => {}
        }
        if n.op.is_leaf() || assignment.complex_covered[orig.index()] {
            continue;
        }
        match n.op {
            Op::StoreVar => {
                // Needs a symbol; takes no alternative.
                if n.sym.is_none() {
                    return Err(c003(
                        format!("node {orig}"),
                        "variable store names no variable".to_string(),
                    ));
                }
            }
            Op::Store | Op::Load => {
                // "memory ops have chosen alternatives" on a memory port.
                let Some(ai) = assignment.choice[orig.index()] else {
                    return Err(c003(
                        format!("node {orig}"),
                        "memory operation has no chosen alternative".to_string(),
                    ));
                };
                match sndag.alts(orig).get(ai).map(|a| a.exec) {
                    Some(Exec::MemPort { .. }) => {}
                    Some(Exec::Unit(_)) | None => {
                        return Err(c003(
                            format!("node {orig}"),
                            format!("alternative {ai} is not a memory port"),
                        ));
                    }
                }
            }
            _ => {
                // "operations have chosen alternatives" on a functional
                // unit, and never a dynamic-memory alternative kind.
                let Some(ai) = assignment.choice[orig.index()] else {
                    return Err(c003(
                        format!("node {orig}"),
                        "operation has no chosen alternative".to_string(),
                    ));
                };
                match sndag.alts(orig).get(ai) {
                    Some(alt) => {
                        if !matches!(alt.exec, Exec::Unit(_))
                            || matches!(alt.kind, AltKind::DynLoad | AltKind::DynStore)
                        {
                            return Err(c003(
                                format!("node {orig}"),
                                format!("alternative {ai} cannot execute a pure operation"),
                            ));
                        }
                    }
                    None => {
                        return Err(c003(
                            format!("node {orig}"),
                            format!("alternative {ai} is out of range"),
                        ));
                    }
                }
            }
        }
    }
    Ok(())
}
