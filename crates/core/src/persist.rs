//! Crash-safe plan-cache persistence.
//!
//! `avivd` restarts lose the warm [`PlanCache`](crate::PlanCache) this
//! module exists to keep: the cache is spilled to a single snapshot file
//! and restored on startup, so a restarted server serves warm hits
//! instead of recompiling its whole working set (the
//! `BENCH_serving.json` `:restart` rows measure the win).
//!
//! # File format
//!
//! ```text
//! magic    8 bytes  b"AVIVPLNC"
//! version  u32      bumped on any codec change; older/newer is stale
//! count    u64      number of (key, plan) entries
//! length   u64      payload byte length
//! checksum u64      FNV-1a of the payload bytes
//! payload  ...      count × (CacheKey, BlockPlan), see crate::wire
//! ```
//!
//! Each entry is the cache triple `(block_dag_hash, target fingerprint,
//! options fingerprint)` followed by the encoded [`BlockPlan`]: the
//! cover graph's essential fields (derived indexes are rebuilt on load),
//! the schedule, the register allocation, the appended spill-slot names,
//! and the completed block report. Only *complete* plans live in the
//! cache, so everything restored is byte-identical to a cold recompile
//! by the same invariant that makes cache hits sound.
//!
//! # Crash safety and recovery
//!
//! [`save_snapshot`] writes a temp file in the same directory, fsyncs
//! it, renames it over the target, and fsyncs the directory — a reader
//! sees either the old snapshot or the new one, never a torn mix. A
//! `kill -9` mid-write leaves at worst a stale temp file and the intact
//! previous snapshot.
//!
//! [`load_snapshot`] trusts nothing: bad magic, unknown version, short
//! file, length mismatch, checksum mismatch, or any structural decode
//! error (out-of-range node ids, oversized lengths, trailing garbage)
//! quarantines the file — renames it to `<path>.quarantined` so the
//! evidence survives for inspection — and the server rebuilds from cold.
//! Restored entries are additionally flagged so `avivd
//! --validate-on-load` can re-prove them through the translation
//! validator on first use.

use crate::cache::{CacheKey, PlanCache};
use crate::codegen::{BlockPlan, BlockReport, CoverMode, StageTimes};
use crate::cover::{Schedule, SpillRecord};
use crate::covergraph::{CnId, CnKind, CoverGraph, CoverNode, Operand};
use crate::regalloc::{Allocation, Reg};
use crate::wire::{fnv64, Dec, Enc, WireError};
use aviv_ir::{BitSet, NodeId, Op, Sym};
use aviv_isdl::{BankId, BusId, UnitId};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::time::Duration;

/// Snapshot file magic.
pub const MAGIC: [u8; 8] = *b"AVIVPLNC";

/// Snapshot format version; bump on any codec change so stale files are
/// quarantined instead of misread.
pub const VERSION: u32 = 1;

const HEADER_LEN: usize = 8 + 4 + 8 + 8 + 8;

/// What [`load_snapshot`] found on disk.
#[derive(Debug)]
pub enum LoadOutcome {
    /// No snapshot file exists — a cold start.
    Missing,
    /// The snapshot verified and its entries were absorbed.
    Loaded {
        /// Entries in the file.
        entries: usize,
        /// Entries actually absorbed (resident keys are never
        /// overwritten, and capacity may evict).
        absorbed: usize,
    },
    /// The file failed verification and was quarantined; the cache is
    /// untouched and the server proceeds from cold.
    Quarantined {
        /// Why the file was rejected.
        reason: String,
        /// Where the evidence was moved (`None` if the rename itself
        /// failed — the file is left in place in that case).
        moved_to: Option<PathBuf>,
    },
}

// ---------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------

fn put_operand(e: &mut Enc, op: &Operand) {
    match op {
        Operand::Cn(c) => {
            e.put_u8(0);
            e.put_u32(c.0);
        }
        Operand::Imm(v) => {
            e.put_u8(1);
            e.put_i64(*v);
        }
    }
}

fn put_kind(e: &mut Enc, kind: &CnKind) {
    match kind {
        CnKind::Op { orig, unit, op } => {
            e.put_u8(0);
            e.put_u32(orig.0);
            e.put_u32(unit.0);
            e.put_str(op.mnemonic());
        }
        CnKind::Complex { orig, index, unit } => {
            e.put_u8(1);
            e.put_u32(orig.0);
            e.put_usize(*index);
            e.put_u32(unit.0);
        }
        CnKind::Move { bus, from, to } => {
            e.put_u8(2);
            e.put_u32(bus.0);
            e.put_u32(from.0);
            e.put_u32(to.0);
        }
        CnKind::LoadVar { sym, bus, to } => {
            e.put_u8(3);
            e.put_u32(sym.0);
            e.put_u32(bus.0);
            e.put_u32(to.0);
        }
        CnKind::StoreVar { sym, bus, from } => {
            e.put_u8(4);
            e.put_u32(sym.0);
            e.put_u32(bus.0);
            match from {
                Some(b) => {
                    e.put_u8(1);
                    e.put_u32(b.0);
                }
                None => e.put_u8(0),
            }
        }
        CnKind::LoadDyn { orig, bus, bank } => {
            e.put_u8(5);
            e.put_u32(orig.0);
            e.put_u32(bus.0);
            e.put_u32(bank.0);
        }
        CnKind::StoreDyn { orig, bus, bank } => {
            e.put_u8(6);
            e.put_u32(orig.0);
            e.put_u32(bus.0);
            e.put_u32(bank.0);
        }
    }
}

fn put_cn_list(e: &mut Enc, list: &[CnId]) {
    e.put_u32(list.len() as u32);
    for c in list {
        e.put_u32(c.0);
    }
}

fn put_duration(e: &mut Enc, d: Duration) {
    e.put_u64(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
}

fn put_plan(e: &mut Enc, plan: &BlockPlan) {
    let (graph, schedule, alloc, appended_syms, snapshot_len, report) = plan.wire_parts();

    // Cover graph: essential fields only; indexes rebuild on decode.
    let (nodes, dead, value_of_orig, live_out, bus_usage) = graph.wire_parts();
    e.put_u32(nodes.len() as u32);
    for node in nodes {
        put_kind(e, &node.kind);
        e.put_u32(node.args.len() as u32);
        for a in &node.args {
            put_operand(e, a);
        }
        put_cn_list(e, &node.deps);
    }
    e.put_u32(dead.count() as u32);
    for i in dead.iter() {
        e.put_u32(i as u32);
    }
    e.put_u32(value_of_orig.len() as u32);
    for v in value_of_orig {
        match v {
            Some(c) => {
                e.put_u8(1);
                e.put_u32(c.0);
            }
            None => e.put_u8(0),
        }
    }
    e.put_u32(live_out.len() as u32);
    for (orig, op) in live_out {
        e.put_u32(orig.0);
        put_operand(e, op);
    }
    e.put_u32(bus_usage.len() as u32);
    for &u in bus_usage {
        e.put_usize(u);
    }

    // Schedule.
    e.put_u32(schedule.steps.len() as u32);
    for step in &schedule.steps {
        put_cn_list(e, step);
    }
    e.put_u32(schedule.spills.len() as u32);
    for s in &schedule.spills {
        e.put_u32(s.slot.0);
        e.put_u32(s.victim.0);
        match s.spill {
            Some(c) => {
                e.put_u8(1);
                e.put_u32(c.0);
            }
            None => e.put_u8(0),
        }
        e.put_u32(s.loads.len() as u32);
        for (bank, c) in &s.loads {
            e.put_u32(bank.0);
            e.put_u32(c.0);
        }
        put_cn_list(e, &s.nodes);
    }

    // Allocation, in deterministic (sorted) order.
    let entries = alloc.entries_sorted();
    e.put_u32(entries.len() as u32);
    for (c, reg) in entries {
        e.put_u32(c.0);
        e.put_u32(reg.bank.0);
        e.put_u32(reg.index);
    }

    e.put_u32(appended_syms.len() as u32);
    for s in appended_syms {
        e.put_str(s);
    }
    e.put_usize(snapshot_len);

    // Report. Only complete plans are cached, so the ladder fields
    // (mode, downgrades, exhausted, truncated) are constants on decode.
    e.put_usize(report.orig_nodes);
    e.put_usize(report.sndag_nodes);
    e.put_u128(report.assignment_space);
    e.put_usize(report.assignments_enumerated);
    e.put_usize(report.assignments_explored);
    e.put_usize(report.spills);
    e.put_usize(report.instructions);
    e.put_usize(report.peephole_removed);
    put_duration(e, report.time);
    put_duration(e, report.stages.sndag);
    put_duration(e, report.stages.explore);
    put_duration(e, report.stages.cover);
    put_duration(e, report.stages.alloc);
    put_duration(e, report.stages.peephole);
    put_duration(e, report.stages.verify);
    e.put_u64(report.node_expansions);
    e.put_usize(report.peak_pressure);
    e.put_usize(report.min_instructions_bound);
    e.put_usize(report.min_pressure_bound);
}

/// Encode `(key, plan)` entries into a complete snapshot file image
/// (header + checksummed payload).
pub fn encode_snapshot(entries: &[(CacheKey, BlockPlan)]) -> Vec<u8> {
    let mut payload = Enc::new();
    for (key, plan) in entries {
        payload.put_u64(key.block);
        payload.put_u64(key.target);
        payload.put_u64(key.options);
        put_plan(&mut payload, plan);
    }
    let payload = payload.into_bytes();
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&(entries.len() as u64).to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&fnv64(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

// ---------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------

fn get_cn(d: &mut Dec<'_>, n_nodes: usize, what: &'static str) -> Result<CnId, WireError> {
    let v = d.get_u32(what)?;
    if (v as usize) >= n_nodes {
        return Err(WireError {
            what,
            offset: d.offset(),
        });
    }
    Ok(CnId(v))
}

fn get_operand(d: &mut Dec<'_>, n_nodes: usize) -> Result<Operand, WireError> {
    match d.get_u8("operand tag")? {
        0 => Ok(Operand::Cn(get_cn(d, n_nodes, "operand node")?)),
        1 => Ok(Operand::Imm(d.get_i64("operand imm")?)),
        _ => Err(WireError {
            what: "operand tag",
            offset: d.offset(),
        }),
    }
}

fn get_kind(d: &mut Dec<'_>) -> Result<CnKind, WireError> {
    match d.get_u8("node kind tag")? {
        0 => {
            let orig = NodeId(d.get_u32("op orig")?);
            let unit = UnitId(d.get_u32("op unit")?);
            let m = d.get_str("op mnemonic")?;
            let op = Op::from_mnemonic(&m).ok_or(WireError {
                what: "op mnemonic",
                offset: d.offset(),
            })?;
            Ok(CnKind::Op { orig, unit, op })
        }
        1 => Ok(CnKind::Complex {
            orig: NodeId(d.get_u32("complex orig")?),
            index: d.get_usize("complex index")?,
            unit: UnitId(d.get_u32("complex unit")?),
        }),
        2 => Ok(CnKind::Move {
            bus: BusId(d.get_u32("move bus")?),
            from: BankId(d.get_u32("move from")?),
            to: BankId(d.get_u32("move to")?),
        }),
        3 => Ok(CnKind::LoadVar {
            sym: Sym(d.get_u32("loadvar sym")?),
            bus: BusId(d.get_u32("loadvar bus")?),
            to: BankId(d.get_u32("loadvar to")?),
        }),
        4 => {
            let sym = Sym(d.get_u32("storevar sym")?);
            let bus = BusId(d.get_u32("storevar bus")?);
            let from = match d.get_u8("storevar from tag")? {
                0 => None,
                1 => Some(BankId(d.get_u32("storevar from")?)),
                _ => {
                    return Err(WireError {
                        what: "storevar from tag",
                        offset: d.offset(),
                    })
                }
            };
            Ok(CnKind::StoreVar { sym, bus, from })
        }
        5 => Ok(CnKind::LoadDyn {
            orig: NodeId(d.get_u32("loaddyn orig")?),
            bus: BusId(d.get_u32("loaddyn bus")?),
            bank: BankId(d.get_u32("loaddyn bank")?),
        }),
        6 => Ok(CnKind::StoreDyn {
            orig: NodeId(d.get_u32("storedyn orig")?),
            bus: BusId(d.get_u32("storedyn bus")?),
            bank: BankId(d.get_u32("storedyn bank")?),
        }),
        _ => Err(WireError {
            what: "node kind tag",
            offset: d.offset(),
        }),
    }
}

fn get_cn_list(
    d: &mut Dec<'_>,
    n_nodes: usize,
    what: &'static str,
) -> Result<Vec<CnId>, WireError> {
    let n = d.get_len(what)?;
    let mut v = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        v.push(get_cn(d, n_nodes, what)?);
    }
    Ok(v)
}

fn get_duration(d: &mut Dec<'_>, what: &'static str) -> Result<Duration, WireError> {
    Ok(Duration::from_nanos(d.get_u64(what)?))
}

fn get_plan(d: &mut Dec<'_>) -> Result<BlockPlan, WireError> {
    // Cover graph.
    let n_nodes = d.get_len("node count")?;
    let mut nodes = Vec::with_capacity(n_nodes.min(1024));
    for _ in 0..n_nodes {
        let kind = get_kind(d)?;
        let n_args = d.get_len("arg count")?;
        let mut args = Vec::with_capacity(n_args.min(1024));
        for _ in 0..n_args {
            args.push(get_operand(d, n_nodes)?);
        }
        let deps = get_cn_list(d, n_nodes, "node deps")?;
        nodes.push(CoverNode { kind, args, deps });
    }
    let n_dead = d.get_len("dead count")?;
    let mut dead = BitSet::new(n_nodes);
    for _ in 0..n_dead {
        dead.insert(get_cn(d, n_nodes, "dead index")?.index());
    }
    let n_voo = d.get_len("value_of_orig count")?;
    let mut value_of_orig = Vec::with_capacity(n_voo.min(1024));
    for _ in 0..n_voo {
        value_of_orig.push(match d.get_u8("value_of_orig tag")? {
            0 => None,
            1 => Some(get_cn(d, n_nodes, "value_of_orig node")?),
            _ => {
                return Err(WireError {
                    what: "value_of_orig tag",
                    offset: d.offset(),
                })
            }
        });
    }
    let n_lo = d.get_len("live_out count")?;
    let mut live_out = Vec::with_capacity(n_lo.min(1024));
    for _ in 0..n_lo {
        let orig = NodeId(d.get_u32("live_out orig")?);
        live_out.push((orig, get_operand(d, n_nodes)?));
    }
    let n_bus = d.get_len("bus_usage count")?;
    let mut bus_usage = Vec::with_capacity(n_bus.min(1024));
    for _ in 0..n_bus {
        bus_usage.push(d.get_usize("bus_usage entry")?);
    }
    let graph = CoverGraph::from_wire_parts(nodes, dead, value_of_orig, live_out, bus_usage);

    // Schedule.
    let n_steps = d.get_len("step count")?;
    let mut steps = Vec::with_capacity(n_steps.min(1024));
    for _ in 0..n_steps {
        steps.push(get_cn_list(d, n_nodes, "step")?);
    }
    let n_spills = d.get_len("spill count")?;
    let mut spills = Vec::with_capacity(n_spills.min(1024));
    for _ in 0..n_spills {
        let slot = Sym(d.get_u32("spill slot")?);
        let victim = get_cn(d, n_nodes, "spill victim")?;
        let spill = match d.get_u8("spill store tag")? {
            0 => None,
            1 => Some(get_cn(d, n_nodes, "spill store")?),
            _ => {
                return Err(WireError {
                    what: "spill store tag",
                    offset: d.offset(),
                })
            }
        };
        let n_loads = d.get_len("spill load count")?;
        let mut loads = Vec::with_capacity(n_loads.min(1024));
        for _ in 0..n_loads {
            let bank = BankId(d.get_u32("spill load bank")?);
            loads.push((bank, get_cn(d, n_nodes, "spill load node")?));
        }
        let nodes = get_cn_list(d, n_nodes, "spill nodes")?;
        spills.push(SpillRecord {
            slot,
            victim,
            spill,
            loads,
            nodes,
        });
    }
    let schedule = Schedule { steps, spills };

    // Allocation.
    let n_alloc = d.get_len("alloc count")?;
    let mut entries = Vec::with_capacity(n_alloc.min(1024));
    for _ in 0..n_alloc {
        let c = get_cn(d, n_nodes, "alloc node")?;
        let bank = BankId(d.get_u32("alloc bank")?);
        let index = d.get_u32("alloc index")?;
        entries.push((c, Reg { bank, index }));
    }
    let alloc = Allocation::from_entries(entries);

    let n_syms = d.get_len("appended sym count")?;
    let mut appended_syms = Vec::with_capacity(n_syms.min(1024));
    for _ in 0..n_syms {
        appended_syms.push(d.get_str("appended sym")?);
    }
    let snapshot_len = d.get_usize("snapshot_len")?;

    let report = BlockReport {
        orig_nodes: d.get_usize("orig_nodes")?,
        sndag_nodes: d.get_usize("sndag_nodes")?,
        assignment_space: d.get_u128("assignment_space")?,
        assignments_enumerated: d.get_usize("assignments_enumerated")?,
        assignments_explored: d.get_usize("assignments_explored")?,
        truncated: false,
        spills: d.get_usize("spills")?,
        instructions: d.get_usize("instructions")?,
        peephole_removed: d.get_usize("peephole_removed")?,
        time: get_duration(d, "time")?,
        stages: StageTimes {
            sndag: get_duration(d, "stage sndag")?,
            explore: get_duration(d, "stage explore")?,
            cover: get_duration(d, "stage cover")?,
            alloc: get_duration(d, "stage alloc")?,
            peephole: get_duration(d, "stage peephole")?,
            verify: get_duration(d, "stage verify")?,
        },
        node_expansions: d.get_u64("node_expansions")?,
        peak_pressure: d.get_usize("peak_pressure")?,
        min_instructions_bound: d.get_usize("min_instructions_bound")?,
        min_pressure_bound: d.get_usize("min_pressure_bound")?,
        cached: false,
        restored: false,
        mode: CoverMode::Concurrent,
        downgrades: Vec::new(),
        exhausted: None,
        complete: true,
    };

    Ok(BlockPlan::from_wire_parts(
        graph,
        schedule,
        alloc,
        appended_syms,
        snapshot_len,
        report,
    ))
}

/// Decode and verify a complete snapshot file image.
///
/// # Errors
///
/// A [`WireError`] naming the first header or structural violation: bad
/// magic, unknown version, truncated header/payload, length or checksum
/// mismatch, or any malformed entry.
pub fn decode_snapshot(bytes: &[u8]) -> Result<Vec<(CacheKey, BlockPlan)>, WireError> {
    if bytes.len() < HEADER_LEN {
        return Err(WireError {
            what: "truncated header",
            offset: bytes.len(),
        });
    }
    if bytes[..8] != MAGIC {
        return Err(WireError {
            what: "bad magic",
            offset: 0,
        });
    }
    let version = u32::from_le_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]);
    if version != VERSION {
        return Err(WireError {
            what: "unsupported snapshot version",
            offset: 8,
        });
    }
    let u64_at = |off: usize| {
        let mut a = [0u8; 8];
        a.copy_from_slice(&bytes[off..off + 8]);
        u64::from_le_bytes(a)
    };
    let count = u64_at(12);
    let payload_len = u64_at(20);
    let checksum = u64_at(28);
    let payload = &bytes[HEADER_LEN..];
    if payload.len() as u64 != payload_len {
        return Err(WireError {
            what: "payload length mismatch",
            offset: 20,
        });
    }
    if fnv64(payload) != checksum {
        return Err(WireError {
            what: "payload checksum mismatch",
            offset: 28,
        });
    }
    if count > crate::wire::MAX_SEQ_LEN as u64 {
        return Err(WireError {
            what: "entry count",
            offset: 12,
        });
    }
    let mut d = Dec::new(payload);
    let mut entries = Vec::with_capacity((count as usize).min(1024));
    for _ in 0..count {
        let key = CacheKey {
            block: d.get_u64("key block")?,
            target: d.get_u64("key target")?,
            options: d.get_u64("key options")?,
        };
        entries.push((key, get_plan(&mut d)?));
    }
    d.finish("trailing bytes")?;
    Ok(entries)
}

// ---------------------------------------------------------------------
// File I/O
// ---------------------------------------------------------------------

/// Atomically write `cache`'s resident entries to `path`:
/// write-temp → fsync → rename → fsync-directory, so a crash at any
/// point leaves either the previous snapshot or the new one intact.
/// Counts the save in [`CacheStats::persist_saves`](crate::CacheStats).
///
/// # Errors
///
/// Any I/O failure from the filesystem; the target file is never left
/// half-written.
pub fn save_snapshot(path: &Path, cache: &PlanCache) -> io::Result<usize> {
    let entries = cache.snapshot_entries();
    let bytes = encode_snapshot(&entries);
    let file_name = path
        .file_name()
        .and_then(|n| n.to_str())
        .unwrap_or("plans.avivcache");
    let tmp = path.with_file_name(format!(".{file_name}.tmp.{}", std::process::id()));
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(&bytes)?;
        f.sync_all()?;
    }
    if let Err(e) = std::fs::rename(&tmp, path) {
        let _ = std::fs::remove_file(&tmp);
        return Err(e);
    }
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        // Persist the rename itself; failure here is not worth failing
        // the save over (the data is durable, the directory entry almost
        // certainly is too).
        if let Ok(d) = std::fs::File::open(dir) {
            let _ = d.sync_all();
        }
    }
    cache.record_save();
    Ok(entries.len())
}

/// Load a snapshot from `path` into `cache`.
///
/// A missing file is a normal cold start ([`LoadOutcome::Missing`]). A
/// file that fails *any* verification step is renamed to
/// `<path>.quarantined` — counted in
/// [`CacheStats::quarantines`](crate::CacheStats) — and the cache is
/// left untouched ([`LoadOutcome::Quarantined`]). A valid snapshot is
/// absorbed with every entry flagged as restored (see
/// [`PlanCache::lookup_flagged`]).
///
/// # Errors
///
/// Only genuine I/O failures reading the file; corruption is not an
/// error, it is a [`LoadOutcome::Quarantined`].
pub fn load_snapshot(path: &Path, cache: &PlanCache) -> io::Result<LoadOutcome> {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(LoadOutcome::Missing),
        Err(e) => return Err(e),
    };
    match decode_snapshot(&bytes) {
        Ok(entries) => {
            let total = entries.len();
            let absorbed = cache.absorb(entries);
            Ok(LoadOutcome::Loaded {
                entries: total,
                absorbed,
            })
        }
        Err(werr) => {
            let file_name = path
                .file_name()
                .and_then(|n| n.to_str())
                .unwrap_or("plans.avivcache");
            let qpath = path.with_file_name(format!("{file_name}.quarantined"));
            let moved_to = match std::fs::rename(path, &qpath) {
                Ok(()) => Some(qpath),
                Err(_) => None,
            };
            cache.record_quarantine();
            Ok(LoadOutcome::Quarantined {
                reason: werr.to_string(),
                moved_to,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CodeGenerator, CodegenOptions, PlanCache};
    use aviv_ir::parse_function;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    fn temp_path(tag: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let n = SEQ.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "aviv_persist_test_{}_{tag}_{n}.avivcache",
            std::process::id()
        ))
    }

    const PROGRAM: &str = "func f(a, b) {
        x = a * b + a;
        y = x - b;
        if (y > 0) goto big;
        return y;
    big:
        t = x + 1;
        r = t * 2;
        return r;
    }";

    fn compile_with_cache(cache: &Arc<PlanCache>) -> (String, usize, usize) {
        let f = parse_function(PROGRAM).unwrap();
        let target = Arc::new(aviv_isdl::Target::new(aviv_isdl::archs::example_arch(4)));
        let gen = CodeGenerator::with_shared_target(Arc::clone(&target))
            .options(CodegenOptions::default())
            .with_cache(Arc::clone(cache));
        let (program, report) = gen.compile_function(&f).unwrap();
        (
            program.render(&target),
            report.cache_hits,
            report.restored_hits,
        )
    }

    #[test]
    fn snapshot_round_trips_byte_identically() {
        let warm = Arc::new(PlanCache::new(64));
        let (cold_asm, hits, _) = compile_with_cache(&warm);
        assert_eq!(hits, 0);
        assert!(!warm.is_empty());

        let path = temp_path("roundtrip");
        let saved = save_snapshot(&path, &warm).unwrap();
        assert_eq!(saved, warm.len());
        assert_eq!(warm.stats().persist_saves, 1);

        let fresh = Arc::new(PlanCache::new(64));
        match load_snapshot(&path, &fresh).unwrap() {
            LoadOutcome::Loaded { entries, absorbed } => {
                assert_eq!(entries, saved);
                assert_eq!(absorbed, saved);
            }
            other => panic!("expected Loaded, got {other:?}"),
        }
        assert_eq!(fresh.stats().persist_loads, saved as u64);

        let (restored_asm, hits, restored_hits) = compile_with_cache(&fresh);
        assert_eq!(
            restored_asm, cold_asm,
            "restored plans must replay byte-identically"
        );
        assert!(hits > 0, "every block should hit the restored cache");
        assert_eq!(restored_hits, hits, "every hit came from the snapshot");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn reencoding_a_decoded_snapshot_is_stable() {
        let warm = Arc::new(PlanCache::new(64));
        compile_with_cache(&warm);
        let entries = warm.snapshot_entries();
        let bytes = encode_snapshot(&entries);
        let decoded = decode_snapshot(&bytes).unwrap();
        assert_eq!(encode_snapshot(&decoded), bytes);
    }

    #[test]
    fn missing_file_is_a_cold_start() {
        let cache = PlanCache::new(8);
        let path = temp_path("missing");
        assert!(matches!(
            load_snapshot(&path, &cache).unwrap(),
            LoadOutcome::Missing
        ));
        assert_eq!(cache.stats().quarantines, 0);
    }

    #[test]
    fn every_truncation_is_quarantined_never_a_panic() {
        let warm = Arc::new(PlanCache::new(64));
        compile_with_cache(&warm);
        let bytes = encode_snapshot(&warm.snapshot_entries());
        // Cut at a spread of points including inside the header and at
        // every tail byte of the payload.
        let mut cuts: Vec<usize> = (0..bytes.len().min(64)).collect();
        cuts.extend((bytes.len().saturating_sub(16)..bytes.len()).collect::<Vec<_>>());
        cuts.push(bytes.len() / 2);
        for cut in cuts {
            let cache = PlanCache::new(8);
            let path = temp_path("trunc");
            std::fs::write(&path, &bytes[..cut]).unwrap();
            match load_snapshot(&path, &cache).unwrap() {
                LoadOutcome::Quarantined { moved_to, .. } => {
                    assert!(cache.is_empty(), "quarantine must not absorb entries");
                    assert_eq!(cache.stats().quarantines, 1);
                    let q = moved_to.expect("quarantine rename succeeds");
                    assert!(q.exists());
                    assert!(!path.exists(), "original removed by quarantine rename");
                    let _ = std::fs::remove_file(&q);
                }
                other => panic!("cut at {cut}: expected Quarantined, got {other:?}"),
            }
        }
    }

    #[test]
    fn every_single_bit_flip_in_payload_is_detected() {
        let warm = Arc::new(PlanCache::new(64));
        compile_with_cache(&warm);
        let bytes = encode_snapshot(&warm.snapshot_entries());
        // Flip one bit in each of a spread of payload bytes: the
        // checksum catches all of them.
        let step = (bytes.len() - HEADER_LEN).max(1) / 37 + 1;
        for i in (HEADER_LEN..bytes.len()).step_by(step) {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= 1 << (i % 8);
            assert!(
                decode_snapshot(&corrupt).is_err(),
                "bit flip at byte {i} went undetected"
            );
        }
    }

    #[test]
    fn stale_version_and_bad_magic_are_rejected() {
        let warm = Arc::new(PlanCache::new(64));
        compile_with_cache(&warm);
        let bytes = encode_snapshot(&warm.snapshot_entries());

        let mut stale = bytes.clone();
        stale[8] = stale[8].wrapping_add(1); // version
        assert!(decode_snapshot(&stale).is_err());

        let mut magic = bytes.clone();
        magic[0] = b'X';
        assert!(decode_snapshot(&magic).is_err());

        let mut trailing = bytes.clone();
        trailing.push(0); // payload length mismatch
        assert!(decode_snapshot(&trailing).is_err());
    }

    #[test]
    fn absorb_never_overwrites_a_live_entry() {
        let warm = Arc::new(PlanCache::new(64));
        compile_with_cache(&warm);
        let entries = warm.snapshot_entries();
        // Re-absorbing into the same cache: every key is resident, so
        // nothing is absorbed and nothing is marked restored.
        assert_eq!(warm.absorb(entries), 0);
        let (_, hits, restored_hits) = compile_with_cache(&warm);
        assert!(hits > 0);
        assert_eq!(restored_hits, 0, "live entries stayed live");
    }

    #[test]
    fn save_is_atomic_under_concurrent_readers() {
        // A reader never sees a torn file: either the snapshot is absent
        // (Missing) or it verifies. Simulated by interleaving saves and
        // loads of the same path.
        let warm = Arc::new(PlanCache::new(64));
        compile_with_cache(&warm);
        let path = temp_path("atomic");
        for _ in 0..5 {
            save_snapshot(&path, &warm).unwrap();
            let fresh = PlanCache::new(64);
            match load_snapshot(&path, &fresh).unwrap() {
                LoadOutcome::Loaded { .. } => {}
                other => panic!("expected Loaded, got {other:?}"),
            }
        }
        let _ = std::fs::remove_file(&path);
    }
}
