//! Stage-by-stage pipeline invariant verification.
//!
//! The paper states properties the implementation otherwise only
//! assumes: every split-node alternative maps to a capable functional
//! unit (§III), covering selects exactly one implementation per IR
//! operation and inserts a transfer on every cross-bank edge (§IV-B),
//! scheduled cliques are pairwise parallel (§IV-C), covering bounds
//! per-bank register pressure so detailed allocation "is guaranteed to
//! succeed" (§IV-F), and the emitted VLIW program defines every
//! register before reading it. [`verify_stage`] checks one stage's
//! slice of those properties and reports violations as structured
//! [`Diagnostic`]s (codes `V001`–`V008`, see `docs/diagnostics.md`).
//!
//! The verifier runs after split-node DAG construction, covering,
//! clique scheduling, register allocation, and emission when
//! [`crate::CodegenOptions::verify`] is set — on by default in debug
//! builds, opt-in via `avivc --verify` in release.

use crate::cover::Schedule;
use crate::covergraph::{CnKind, CoverGraph, Operand, Resource};
use crate::emit::{AsmOperand, ControlOp, SlotOpcode, TransferKind, VliwInstruction, VliwProgram};
use crate::regalloc::{verify_allocation, Allocation, Reg};
use aviv_ir::BlockDag;
use aviv_isdl::{Location, SlotPattern, Target};
use aviv_splitdag::{AltKind, Exec, SplitNodeDag};
use aviv_verify::{Code, Diagnostic};
use std::collections::HashSet;
use std::fmt;

/// A pipeline stage the verifier can check.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// After Split-Node DAG construction (§III).
    SplitDag,
    /// After covering produced a cover graph and schedule (§IV-B/D/E).
    Cover,
    /// The clique-parallelism slice of the schedule check (§IV-C).
    Cliques,
    /// After detailed register allocation (§IV-F).
    RegAlloc,
    /// After VLIW emission.
    Emit,
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Stage::SplitDag => write!(f, "split-node DAG"),
            Stage::Cover => write!(f, "covering"),
            Stage::Cliques => write!(f, "clique scheduling"),
            Stage::RegAlloc => write!(f, "register allocation"),
            Stage::Emit => write!(f, "emission"),
        }
    }
}

/// Everything the verifier may look at, populated as far as the
/// pipeline has run. Checks whose inputs are absent are skipped.
#[derive(Clone, Copy)]
pub struct StageState<'a> {
    /// The compilation target.
    pub target: &'a Target,
    /// The block's expression DAG.
    pub dag: Option<&'a BlockDag>,
    /// The Split-Node DAG built from it.
    pub sndag: Option<&'a SplitNodeDag>,
    /// The cover graph of the chosen assignment.
    pub graph: Option<&'a CoverGraph>,
    /// The covering schedule.
    pub schedule: Option<&'a Schedule>,
    /// The detailed register allocation.
    pub alloc: Option<&'a Allocation>,
    /// The emitted program (function level).
    pub program: Option<&'a VliwProgram>,
}

impl<'a> StageState<'a> {
    /// A state with every pipeline artifact absent.
    pub fn new(target: &'a Target) -> StageState<'a> {
        StageState {
            target,
            dag: None,
            sndag: None,
            graph: None,
            schedule: None,
            alloc: None,
            program: None,
        }
    }
}

/// Verify one stage's invariants, returning every violation found.
/// An empty result means the stage upheld its contract.
pub fn verify_stage(stage: Stage, state: &StageState<'_>) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    match stage {
        Stage::SplitDag => {
            if let (Some(dag), Some(sndag)) = (state.dag, state.sndag) {
                check_splitdag(state.target, dag, sndag, &mut out);
            }
        }
        Stage::Cover => {
            if let (Some(graph), Some(schedule)) = (state.graph, state.schedule) {
                check_cover(state.target, state.dag, graph, schedule, &mut out);
            }
        }
        Stage::Cliques => {
            if let (Some(graph), Some(schedule)) = (state.graph, state.schedule) {
                check_cliques(state.target, graph, schedule, &mut out);
            }
        }
        Stage::RegAlloc => {
            if let (Some(graph), Some(schedule), Some(alloc)) =
                (state.graph, state.schedule, state.alloc)
            {
                if let Err(msg) = verify_allocation(graph, state.target, schedule, alloc) {
                    out.push(Diagnostic::new(Code::V006, "register allocation", msg));
                }
            }
        }
        Stage::Emit => {
            if let Some(program) = state.program {
                check_emit(state.target, program, &mut out);
            }
        }
    }
    out
}

/// Run every block-level stage (everything but [`Stage::Emit`]) over a
/// fully planned block.
pub fn verify_block(
    target: &Target,
    dag: &BlockDag,
    sndag: &SplitNodeDag,
    graph: &CoverGraph,
    schedule: &Schedule,
    alloc: &Allocation,
) -> Vec<Diagnostic> {
    let state = StageState {
        dag: Some(dag),
        sndag: Some(sndag),
        graph: Some(graph),
        schedule: Some(schedule),
        alloc: Some(alloc),
        ..StageState::new(target)
    };
    let mut out = verify_stage(Stage::SplitDag, &state);
    out.extend(verify_stage(Stage::Cover, &state));
    out.extend(verify_stage(Stage::Cliques, &state));
    out.extend(verify_stage(Stage::RegAlloc, &state));
    out
}

/// Run the [`Stage::Emit`] checks over an assembled program.
pub fn verify_program(target: &Target, program: &VliwProgram) -> Vec<Diagnostic> {
    let state = StageState {
        program: Some(program),
        ..StageState::new(target)
    };
    verify_stage(Stage::Emit, &state)
}

/// V007: every alternative names an execution resource actually capable
/// of the operation, and no computational node is left without an
/// implementation.
fn check_splitdag(
    target: &Target,
    dag: &BlockDag,
    sndag: &SplitNodeDag,
    out: &mut Vec<Diagnostic>,
) {
    let machine = &target.machine;
    let bus_touches = |bus: aviv_isdl::BusId, loc: Location| -> bool {
        machine.bus(bus).endpoints.contains(&loc)
    };
    for (id, node) in dag.iter() {
        let element = format!("node n{}", id.index());
        if !node.op.is_leaf()
            && !node.op.is_store()
            && sndag.alts(id).is_empty()
            && sndag.covering_matches(id).is_empty()
        {
            out.push(Diagnostic::new(
                Code::V007,
                element.clone(),
                format!(
                    "operation {} has no alternative and is not swallowed by any complex match",
                    node.op
                ),
            ));
        }
        for alt in sndag.alts(id) {
            match (&alt.kind, &alt.exec) {
                (AltKind::Simple(op), Exec::Unit(u)) => {
                    if !machine.unit(*u).can_do(*op) {
                        out.push(Diagnostic::new(
                            Code::V007,
                            element.clone(),
                            format!(
                                "alternative maps {op} to unit {}, which does not implement it",
                                machine.unit(*u).name
                            ),
                        ));
                    }
                }
                (AltKind::Simple(op), Exec::MemPort { bus, bank }) => {
                    if !op.is_leaf()
                        || !bus_touches(*bus, Location::Mem)
                        || !bus_touches(*bus, Location::Bank(*bank))
                    {
                        out.push(Diagnostic::new(
                            Code::V007,
                            element.clone(),
                            format!("memory-port alternative for {op} uses a bus that does not connect memory to its bank"),
                        ));
                    }
                }
                (AltKind::Complex { index, .. }, exec) => {
                    let cx = &machine.complexes()[*index];
                    if !matches!(exec, Exec::Unit(u) if *u == cx.unit) {
                        out.push(Diagnostic::new(
                            Code::V007,
                            element.clone(),
                            format!(
                                "complex {} alternative not placed on its declared unit {}",
                                cx.name,
                                machine.unit(cx.unit).name
                            ),
                        ));
                    }
                }
                (AltKind::DynLoad | AltKind::DynStore, Exec::MemPort { bus, bank }) => {
                    if !bus_touches(*bus, Location::Mem)
                        || !bus_touches(*bus, Location::Bank(*bank))
                    {
                        out.push(Diagnostic::new(
                            Code::V007,
                            element.clone(),
                            "dynamic memory alternative uses a bus that does not connect memory to its bank",
                        ));
                    }
                }
                (AltKind::DynLoad | AltKind::DynStore, Exec::Unit(u)) => {
                    out.push(Diagnostic::new(
                        Code::V007,
                        element.clone(),
                        format!(
                            "dynamic memory alternative placed on functional unit {}",
                            machine.unit(*u).name
                        ),
                    ));
                }
            }
        }
    }
}

/// V001 / V002 / V004: exactly-once covering, explicit transfers on
/// every cross-bank edge, and the per-bank pressure bound.
fn check_cover(
    target: &Target,
    dag: Option<&BlockDag>,
    graph: &CoverGraph,
    schedule: &Schedule,
    out: &mut Vec<Diagnostic>,
) {
    let n = graph.len();
    let step_of = schedule.step_of(n);

    // Exactly-once: every alive node scheduled once, nothing dead or
    // duplicated, dependencies strictly preceding.
    for id in graph.alive() {
        if step_of[id.index()].is_none() {
            out.push(Diagnostic::new(
                Code::V001,
                format!("cover node {id}"),
                "live cover node never scheduled",
            ));
        }
    }
    let mut seen = vec![false; n];
    for step in &schedule.steps {
        for &id in step {
            if graph.is_dead(id) {
                out.push(Diagnostic::new(
                    Code::V001,
                    format!("cover node {id}"),
                    "dead cover node appears in the schedule",
                ));
            }
            if seen[id.index()] {
                out.push(Diagnostic::new(
                    Code::V001,
                    format!("cover node {id}"),
                    "cover node scheduled more than once",
                ));
            }
            seen[id.index()] = true;
        }
    }
    for id in graph.alive() {
        let Some(t) = step_of[id.index()] else {
            continue;
        };
        for p in graph.preds(id) {
            match step_of[p.index()] {
                Some(pt) if pt < t => {}
                Some(pt) => out.push(Diagnostic::new(
                    Code::V001,
                    format!("cover node {id}"),
                    format!("dependency {p} at step {pt} does not strictly precede step {t}"),
                )),
                None => out.push(Diagnostic::new(
                    Code::V001,
                    format!("cover node {id}"),
                    format!("dependency {p} is unscheduled"),
                )),
            }
        }
    }

    // Exactly-once per IR operation: every value-producing DAG node
    // must resolve to exactly one live implementation.
    if let Some(dag) = dag {
        for (id, node) in dag.iter() {
            if !node.op.produces_value() || node.op.is_leaf() {
                continue;
            }
            match graph.value_of_orig(id) {
                Some(c) if !graph.is_dead(c) => {}
                Some(c) => out.push(Diagnostic::new(
                    Code::V001,
                    format!("node n{}", id.index()),
                    format!("operation {} is covered only by dead node {c}", node.op),
                )),
                None => out.push(Diagnostic::new(
                    Code::V001,
                    format!("node n{}", id.index()),
                    format!("operation {} was never covered", node.op),
                )),
            }
        }
        let mut covered_by: Vec<Option<crate::covergraph::CnId>> = vec![None; dag.len()];
        for id in graph.alive() {
            let (CnKind::Op { orig, .. }
            | CnKind::Complex { orig, .. }
            | CnKind::LoadDyn { orig, .. }
            | CnKind::StoreDyn { orig, .. }) = graph.node(id).kind
            else {
                continue;
            };
            if let Some(prev) = covered_by[orig.index()] {
                out.push(Diagnostic::new(
                    Code::V001,
                    format!("node n{}", orig.index()),
                    format!("operation covered twice, by {prev} and {id}"),
                ));
            }
            covered_by[orig.index()] = Some(id);
        }
    }

    // Transfers: operand-bank residency (the cover graph's own oracle
    // checks that every operand is consumed from the consumer's bank,
    // i.e. that a transfer node sits on every cross-bank edge).
    if let Err(msg) = graph.verify(target) {
        out.push(Diagnostic::new(Code::V002, "cover graph", msg));
    }

    // Per-bank register pressure at every schedule step.
    let mut pinned = vec![false; n];
    for &(_, operand) in graph.live_out() {
        if let Operand::Cn(c) = operand {
            pinned[c.index()] = true;
        }
    }
    for t in 0..schedule.steps.len() {
        let mut pressure = vec![0usize; target.machine.banks().len()];
        for id in graph.alive() {
            let Some(def_t) = step_of[id.index()] else {
                continue;
            };
            if def_t > t {
                continue;
            }
            let Some(bank) = graph.node(id).dest_bank(target) else {
                continue;
            };
            let live = pinned[id.index()]
                || graph
                    .uses(id)
                    .iter()
                    .any(|u| step_of[u.index()].is_some_and(|ut| ut > t));
            if live {
                pressure[bank.index()] += 1;
            }
        }
        for (bi, &load) in pressure.iter().enumerate() {
            let bank = &target.machine.banks()[bi];
            if load > bank.size as usize {
                out.push(Diagnostic::new(
                    Code::V004,
                    format!("step {t}, bank {}", bank.name),
                    format!(
                        "{load} simultaneously live values exceed the bank's {} registers",
                        bank.size
                    ),
                ));
            }
        }
    }
}

/// V003: every schedule step must be a clique of pairwise-parallel
/// operations — independent, on distinct units, within bus capacity,
/// and within every ISDL `at_most` constraint.
fn check_cliques(
    target: &Target,
    graph: &CoverGraph,
    schedule: &Schedule,
    out: &mut Vec<Diagnostic>,
) {
    let machine = &target.machine;
    for (t, step) in schedule.steps.iter().enumerate() {
        for (i, &a) in step.iter().enumerate() {
            for &b in &step[i + 1..] {
                if graph.dependent(a, b) {
                    out.push(Diagnostic::new(
                        Code::V003,
                        format!("step {t}"),
                        format!("{a} and {b} are data-dependent but scheduled together"),
                    ));
                }
            }
        }
        let mut unit_used = vec![false; machine.units().len()];
        let mut bus_used = vec![0u32; machine.buses().len()];
        for &id in step {
            match graph.node(id).resource() {
                Resource::Unit(u) => {
                    if unit_used[u.index()] {
                        out.push(Diagnostic::new(
                            Code::V003,
                            format!("step {t}"),
                            format!(
                                "unit {} issues two operations in one instruction",
                                machine.unit(u).name
                            ),
                        ));
                    }
                    unit_used[u.index()] = true;
                }
                Resource::Bus(b) => {
                    bus_used[b.index()] += 1;
                    if bus_used[b.index()] == machine.bus(b).capacity + 1 {
                        out.push(Diagnostic::new(
                            Code::V003,
                            format!("step {t}"),
                            format!(
                                "bus {} carries more transfers than its capacity {}",
                                machine.bus(b).name,
                                machine.bus(b).capacity
                            ),
                        ));
                    }
                }
            }
        }
        for (ci, con) in machine.constraints().iter().enumerate() {
            let mut count = 0u32;
            for &id in step {
                let node = graph.node(id);
                let matched = con.members.iter().any(|pat| match *pat {
                    SlotPattern::UnitOp { unit, op } => match &node.kind {
                        CnKind::Op { unit: u, op: o, .. } => {
                            *u == unit && op.is_none_or(|want| *o == want)
                        }
                        CnKind::Complex { unit: u, .. } => *u == unit && op.is_none(),
                        _ => false,
                    },
                    SlotPattern::BusUse { bus } => {
                        matches!(node.resource(), Resource::Bus(b) if b == bus)
                    }
                });
                if matched {
                    count += 1;
                }
            }
            if count > con.at_most {
                let name = con.name.clone().unwrap_or_else(|| format!("#{ci}"));
                out.push(Diagnostic::new(
                    Code::V003,
                    format!("step {t}"),
                    format!(
                        "constraint {name} allows {} concurrent members but {count} are scheduled",
                        con.at_most
                    ),
                ));
            }
        }
    }
}

/// V005 / V008: the emitted program defines every register before
/// reading it (the simulator reads pre-write state, so the defining
/// write must be strictly earlier), and is structurally well-formed.
fn check_emit(target: &Target, program: &VliwProgram, out: &mut Vec<Diagnostic>) {
    let machine = &target.machine;
    let n_units = machine.units().len();
    let starts: HashSet<usize> = program.block_starts.iter().copied().collect();

    for (i, instr) in program.instructions.iter().enumerate() {
        let element = format!("instruction {i}");
        if instr.slots.len() != n_units {
            out.push(Diagnostic::new(
                Code::V008,
                element.clone(),
                format!("{} slots for a {n_units}-unit machine", instr.slots.len()),
            ));
        }
        for (si, slot) in instr.slots.iter().enumerate() {
            let Some(op) = slot else { continue };
            if si >= n_units {
                continue; // already reported above
            }
            match op.opcode {
                SlotOpcode::Basic(o) => {
                    if !machine.units()[si].can_do(o) {
                        out.push(Diagnostic::new(
                            Code::V008,
                            element.clone(),
                            format!(
                                "slot {si} issues {o}, which unit {} does not implement",
                                machine.units()[si].name
                            ),
                        ));
                    }
                }
                SlotOpcode::Complex(ci) => {
                    if ci >= machine.complexes().len() || machine.complexes()[ci].unit.index() != si
                    {
                        out.push(Diagnostic::new(
                            Code::V008,
                            element.clone(),
                            format!(
                                "slot {si} issues a complex instruction not declared on that unit"
                            ),
                        ));
                    }
                }
            }
        }
        let mut bus_used = vec![0u32; machine.buses().len()];
        for xfer in &instr.xfers {
            bus_used[xfer.bus.index()] += 1;
            if bus_used[xfer.bus.index()] == machine.bus(xfer.bus).capacity + 1 {
                out.push(Diagnostic::new(
                    Code::V008,
                    element.clone(),
                    format!(
                        "bus {} carries more transfers than its capacity {}",
                        machine.bus(xfer.bus).name,
                        machine.bus(xfer.bus).capacity
                    ),
                ));
            }
        }
        match instr.control {
            Some(ControlOp::Jump(t)) | Some(ControlOp::BranchNz { target: t, .. })
                if !starts.contains(&t) =>
            {
                out.push(Diagnostic::new(
                    Code::V008,
                    element,
                    format!("control transfer targets instruction {t}, which is not a block start"),
                ));
            }
            _ => {}
        }
    }

    // Def-before-use, per block. Blocks only communicate through
    // memory (variables) — registers never carry values across block
    // boundaries — so each block must define every register it reads.
    let mut bounds: Vec<(usize, usize)> = Vec::new();
    for (bi, &start) in program.block_starts.iter().enumerate() {
        let end = program
            .block_starts
            .get(bi + 1)
            .copied()
            .unwrap_or(program.instructions.len());
        bounds.push((start, end));
    }
    for (bi, &(start, end)) in bounds.iter().enumerate() {
        let mut defined: HashSet<Reg> = HashSet::new();
        for i in start..end.min(program.instructions.len()) {
            let instr = &program.instructions[i];
            for r in instr_reads(instr) {
                if !defined.contains(&r) {
                    out.push(Diagnostic::new(
                        Code::V005,
                        format!("block {bi}, instruction {i}"),
                        format!("reads {r} before any write in the block defines it"),
                    ));
                }
            }
            for r in instr_writes(instr) {
                defined.insert(r);
            }
        }
    }
}

/// Every register an instruction reads (pre-write state).
fn instr_reads(instr: &VliwInstruction) -> Vec<Reg> {
    fn operand(reads: &mut Vec<Reg>, a: &AsmOperand) {
        if let AsmOperand::Reg(r) = a {
            reads.push(*r);
        }
    }
    let mut reads = Vec::new();
    for slot in instr.slots.iter().flatten() {
        for a in &slot.args {
            operand(&mut reads, a);
        }
    }
    for xfer in &instr.xfers {
        match &xfer.kind {
            TransferKind::Move { from, .. } => reads.push(*from),
            TransferKind::StoreVar { value, .. } => operand(&mut reads, value),
            TransferKind::LoadDyn { addr, .. } => reads.push(*addr),
            TransferKind::StoreDyn { addr, value } => {
                reads.push(*addr);
                reads.push(*value);
            }
            TransferKind::LoadVar { .. } => {}
        }
    }
    match &instr.control {
        Some(ControlOp::BranchNz { cond, .. }) => operand(&mut reads, cond),
        Some(ControlOp::Return(Some(v))) => operand(&mut reads, v),
        _ => {}
    }
    reads
}

/// Every register an instruction writes.
fn instr_writes(instr: &VliwInstruction) -> Vec<Reg> {
    let mut writes = Vec::new();
    for slot in instr.slots.iter().flatten() {
        writes.push(slot.dst);
    }
    for xfer in &instr.xfers {
        match &xfer.kind {
            TransferKind::Move { to, .. }
            | TransferKind::LoadVar { to, .. }
            | TransferKind::LoadDyn { to, .. } => writes.push(*to),
            TransferKind::StoreVar { .. } | TransferKind::StoreDyn { .. } => {}
        }
    }
    writes
}
