//! Exploring split-node functional-unit assignments (paper §IV-A).
//!
//! "The first step of our algorithm is to prune the search space by
//! selecting only a few of the split-node functional unit assignments to
//! explore in depth. ... we prune the search space of possible
//! assignments by calculating an incremental cost for each split-node
//! encountered and continue the search only for split-node assignments
//! with minimum incremental cost. The split-nodes are tested in order of
//! increasing level from the top of the Split-Node DAG."
//!
//! The incremental cost of assigning node *n* to alternative *a* counts:
//!
//! * one per hop for every data transfer to an already-assigned consumer,
//! * one per hop for loading each named-variable leaf operand,
//! * one for every already-assigned node that could have executed in
//!   parallel with *n* (no dependency path) but now shares *n*'s resource
//!   — the "parallelism foregone",
//! * minus one per extra original node swallowed by a complex
//!   alternative.

use crate::options::CodegenOptions;
use aviv_ir::{BitSet, BlockDag, NodeId, Op};
use aviv_isdl::{Location, Target};
use aviv_splitdag::{AltKind, Exec, SplitNodeDag};

/// One complete functional-unit assignment: per original node, the chosen
/// alternative index into [`SplitNodeDag::alts`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Assignment {
    /// `choice[n]` is `Some(i)` when original node `n` executes as its
    /// `i`-th alternative; `None` for leaves, stores without alternatives,
    /// and nodes swallowed by a chosen complex instruction.
    pub choice: Vec<Option<usize>>,
    /// Original nodes covered by a complex chosen at another node.
    pub complex_covered: Vec<bool>,
    /// Accumulated incremental cost (the pruning estimate, not the final
    /// instruction count).
    pub est_cost: i64,
}

/// Result of assignment exploration.
#[derive(Debug, Clone)]
pub struct ExploreResult {
    /// The selected assignments, lowest estimated cost first.
    pub assignments: Vec<Assignment>,
    /// Total assignments enumerated before selection.
    pub enumerated: usize,
    /// True when enumeration hit [`CodegenOptions::max_assignments`].
    pub truncated: bool,
}

/// Per-alternative record in an exploration trace (regenerates the
/// paper's Fig. 6).
#[derive(Debug, Clone)]
pub struct TraceEntry {
    /// The original node being assigned.
    pub node: NodeId,
    /// Alternative index.
    pub alt: usize,
    /// Human-readable alternative description.
    pub desc: String,
    /// Its incremental cost in this branch.
    pub incremental_cost: i64,
    /// Whether the branch was pruned (cost above the minimum).
    pub pruned: bool,
}

/// Exploration trace: one entry per (branch, node, alternative) probe.
#[derive(Debug, Clone, Default)]
pub struct ExploreTrace {
    /// All probes in exploration order.
    pub entries: Vec<TraceEntry>,
}

#[derive(Clone)]
struct Branch {
    choice: Vec<Option<usize>>,
    covered: Vec<bool>,
    /// Execution resource of every assigned or complex-covered node.
    home: Vec<Option<Exec>>,
    cost: i64,
}

/// Enumerate functional-unit assignments for `dag` on `target`.
///
/// With [`CodegenOptions::prune_assignments`] set, branches keep only the
/// minimum-incremental-cost alternatives at each node; otherwise every
/// combination is generated (up to `max_assignments`). The returned list
/// is truncated to [`CodegenOptions::assignments_to_explore`].
pub fn explore(
    dag: &BlockDag,
    sndag: &SplitNodeDag,
    target: &Target,
    options: &CodegenOptions,
) -> ExploreResult {
    explore_traced(dag, sndag, target, options, None)
}

/// [`explore`] with an optional trace sink for the figures harness.
pub fn explore_traced(
    dag: &BlockDag,
    sndag: &SplitNodeDag,
    target: &Target,
    options: &CodegenOptions,
    mut trace: Option<&mut ExploreTrace>,
) -> ExploreResult {
    let n = dag.len();
    let desc_sets = dag.descendants();
    let uses = dag.uses();

    // Nodes with alternatives, in increasing level from the top.
    let levels_top = dag.levels_from_top();
    let mut order: Vec<NodeId> = dag
        .iter()
        .filter(|(id, _)| !sndag.alts(*id).is_empty())
        .map(|(id, _)| id)
        .collect();
    order.sort_by_key(|id| (levels_top[id.index()], id.0));

    let mut branches = vec![Branch {
        choice: vec![None; n],
        covered: vec![false; n],
        home: vec![None; n],
        cost: 0,
    }];
    let mut truncated = false;

    for &node in &order {
        let alts = sndag.alts(node);
        let mut next: Vec<Branch> = Vec::new();
        for br in &branches {
            if br.covered[node.index()] {
                // Swallowed by a complex chosen at an ancestor.
                next.push(br.clone());
                continue;
            }
            // Incremental cost of each alternative in this branch.
            let mut costs: Vec<i64> = Vec::with_capacity(alts.len());
            for alt in alts {
                let mut cost = incremental_cost(dag, target, &desc_sets, &uses, br, node, alt);
                if options.pressure_aware_assignment {
                    cost += pressure_penalty(dag, target, br, node, alt);
                }
                costs.push(cost);
            }
            let min = costs.iter().copied().min().unwrap_or(0);
            for (ai, alt) in alts.iter().enumerate() {
                let pruned = options.prune_assignments && costs[ai] > min + options.prune_slack;
                if let Some(t) = trace.as_deref_mut() {
                    t.entries.push(TraceEntry {
                        node,
                        alt: ai,
                        desc: describe_alt(target, alt),
                        incremental_cost: costs[ai],
                        pruned,
                    });
                }
                if pruned {
                    continue;
                }
                let mut nb = br.clone();
                nb.choice[node.index()] = Some(ai);
                nb.home[node.index()] = Some(alt.exec);
                nb.cost += costs[ai];
                if let AltKind::Complex { covers, .. } = &alt.kind {
                    let mut overlap = false;
                    for &c in covers {
                        if c != node && (nb.covered[c.index()] || nb.choice[c.index()].is_some()) {
                            overlap = true;
                            break;
                        }
                    }
                    if overlap {
                        continue;
                    }
                    for &c in covers {
                        if c != node {
                            nb.covered[c.index()] = true;
                            nb.home[c.index()] = Some(alt.exec);
                        }
                    }
                }
                next.push(nb);
                if next.len() + 1 >= options.max_assignments {
                    truncated = true;
                    break;
                }
            }
            if truncated {
                break;
            }
        }
        // Beam trim by accumulated cost (stable: keeps exploration order
        // among equals).
        if next.len() > options.assignment_beam {
            let mut idx: Vec<usize> = (0..next.len()).collect();
            idx.sort_by_key(|&i| (next[i].cost, i));
            idx.truncate(options.assignment_beam);
            idx.sort_unstable();
            let mut trimmed = Vec::with_capacity(idx.len());
            for i in idx {
                trimmed.push(next[i].clone());
            }
            next = trimmed;
        }
        branches = next;
        if branches.is_empty() {
            break;
        }
    }

    let enumerated = branches.len();
    let assignments: Vec<Assignment> = branches
        .into_iter()
        .map(|b| Assignment {
            choice: b.choice,
            complex_covered: b.covered,
            est_cost: b.cost,
        })
        .collect();
    let mut idx: Vec<usize> = (0..assignments.len()).collect();
    idx.sort_by_key(|&i| (assignments[i].est_cost, i));
    idx.truncate(options.assignments_to_explore.min(assignments.len()));
    let mut selected = Vec::with_capacity(idx.len());
    for i in idx {
        selected.push(assignments[i].clone());
    }
    ExploreResult {
        assignments: selected,
        enumerated,
        truncated,
    }
}

/// The §IV-A incremental cost of assigning `node` to `alt` given the
/// partial assignment in `br`.
fn incremental_cost(
    dag: &BlockDag,
    target: &Target,
    desc: &[BitSet],
    uses: &[Vec<NodeId>],
    br: &Branch,
    node: NodeId,
    alt: &aviv_splitdag::AltInfo,
) -> i64 {
    let my_bank = alt.home_bank(target);
    let my_loc = Location::Bank(my_bank);
    let mut cost: i64 = 0;

    // Transfers to already-assigned consumers (parents sit above, so they
    // are assigned before `node` in top-down order). Stores and dynamic
    // stores consume into memory / their chosen bank.
    for &p in &uses[node.index()] {
        let pn = dag.node(p);
        let dest = match pn.op {
            Op::StoreVar => Some(Location::Mem),
            _ => br.home[p.index()].map(|exec| match exec {
                Exec::Unit(u) => Location::Bank(target.machine.bank_of(u)),
                Exec::MemPort { bank, .. } => Location::Bank(bank),
            }),
        };
        if let Some(dest) = dest {
            if let Some(hops) = target.xfers.cost(my_loc, dest) {
                cost += hops as i64;
            }
        }
    }

    // Loading leaf operands: named variables live in memory; constants
    // are immediates and cost nothing. For a complex alternative only the
    // root's own direct operands are charged — the swallowed interiors'
    // operand loads would be deferred to those nodes under the simple
    // alternative, so charging them here would bias the comparison
    // against the complex at this node.
    let operand_list: Vec<NodeId> = match &alt.kind {
        AltKind::Complex { operands, .. } => {
            let root_args = &dag.node(node).args;
            operands
                .iter()
                .copied()
                .filter(|o| root_args.contains(o))
                .collect()
        }
        _ => dag.node(node).args.clone(),
    };
    for o in operand_list {
        if dag.node(o).op == Op::Input {
            if let Some(hops) = target.xfers.cost(Location::Mem, my_loc) {
                cost += hops as i64;
            }
        }
    }

    // Parallelism foregone: previously assigned nodes with no dependency
    // path that now share this alternative's resource.
    for (qi, home) in br.home.iter().enumerate() {
        let Some(q_exec) = home else { continue };
        let q = NodeId(qi as u32);
        if q == node || dag.dependent(desc, q, node) {
            continue;
        }
        let conflict = match (alt.exec, *q_exec) {
            (Exec::Unit(a), Exec::Unit(b)) => a == b,
            (Exec::MemPort { bus: a, .. }, Exec::MemPort { bus: b, .. }) => {
                a == b && target.machine.bus(a).capacity == 1
            }
            _ => false,
        };
        if conflict {
            cost += 1;
        }
    }

    // Complex instructions save one instruction slot per extra node they
    // swallow.
    if let AltKind::Complex { covers, .. } = &alt.kind {
        cost -= covers.len() as i64 - 1;
    }
    cost
}

/// The §VI "ongoing work" term: penalize concentrating values that are
/// still awaiting consumers into one register bank beyond its size — such
/// assignments are the ones "likely to require spills to memory".
fn pressure_penalty(
    dag: &BlockDag,
    target: &Target,
    br: &Branch,
    _node: NodeId,
    alt: &aviv_splitdag::AltInfo,
) -> i64 {
    let bank = alt.home_bank(target);
    let uses = dag.uses();
    // Values already assigned to this bank whose consumers are not yet
    // all assigned — a static proxy for "simultaneously live here".
    let mut live_here = 0i64;
    for (qi, home) in br.home.iter().enumerate() {
        let Some(exec) = home else { continue };
        let q_bank = match exec {
            Exec::Unit(u) => target.machine.bank_of(*u),
            Exec::MemPort { bank, .. } => *bank,
        };
        if q_bank != bank {
            continue;
        }
        let pending = uses[qi]
            .iter()
            .any(|c| br.choice[c.index()].is_none() && !br.covered[c.index()]);
        if pending {
            live_here += 1;
        }
    }
    let size = target.machine.bank(bank).size as i64;
    let excess = (live_here + 1) - size;
    if excess > 0 {
        2 * excess
    } else {
        0
    }
}

fn describe_alt(target: &Target, alt: &aviv_splitdag::AltInfo) -> String {
    match (&alt.kind, alt.exec) {
        (AltKind::Simple(op), Exec::Unit(u)) => {
            format!("{} on {}", op, target.machine.unit(u).name)
        }
        (AltKind::Complex { index, .. }, Exec::Unit(u)) => format!(
            "{} on {}",
            target.machine.complexes()[*index].name,
            target.machine.unit(u).name
        ),
        (AltKind::DynLoad, Exec::MemPort { bus, bank }) => format!(
            "load via {} into {}",
            target.machine.bus(bus).name,
            target.machine.bank(bank).name
        ),
        (AltKind::DynStore, Exec::MemPort { bus, bank }) => format!(
            "store via {} from {}",
            target.machine.bus(bus).name,
            target.machine.bank(bank).name
        ),
        _ => "alt".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aviv_ir::parse_function;
    use aviv_isdl::archs;

    fn setup(src: &str, machine: aviv_isdl::Machine) -> (aviv_ir::Function, Target, SplitNodeDag) {
        let f = parse_function(src).unwrap();
        let target = Target::new(machine);
        let sn = SplitNodeDag::build(&f.blocks[0].dag, &target).unwrap();
        (f, target, sn)
    }

    #[test]
    fn exhaustive_mode_enumerates_the_whole_space() {
        let (f, target, sn) = setup(
            "func f(a, b, d, e) { out = (d * e) - (a + b); }",
            archs::example_arch(4),
        );
        let res = explore(
            &f.blocks[0].dag,
            &sn,
            &target,
            &CodegenOptions::heuristics_off(),
        );
        // 2 (SUB) x 2 (MUL) x 3 (ADD) = 12, the paper's count.
        assert_eq!(res.enumerated, 12);
        assert_eq!(res.assignments.len(), 12);
        assert!(!res.truncated);
        // Lowest cost first.
        for w in res.assignments.windows(2) {
            assert!(w[0].est_cost <= w[1].est_cost);
        }
    }

    #[test]
    fn pruned_mode_returns_fewer_assignments() {
        let (f, target, sn) = setup(
            "func f(a, b, d, e) { out = (d * e) - (a + b); }",
            archs::example_arch(4),
        );
        let mut opts = CodegenOptions::heuristics_on();
        opts.prune_slack = 0;
        opts.assignments_to_explore = 4;
        let on = explore(&f.blocks[0].dag, &sn, &target, &opts);
        assert!(on.enumerated <= 12);
        assert!(on.assignments.len() <= 4);
        assert!(!on.assignments.is_empty());
    }

    /// The paper's Fig. 6 worked example: SUB feeds a COMPL that only U1
    /// can execute. SUB-on-U1 has incremental cost 0; SUB-on-U2 costs 1
    /// (a transfer to U1) and is pruned.
    #[test]
    fn fig6_sub_costs_and_pruning() {
        let (f, target, sn) = setup(
            "func f(a, b, d, e) { out = ~((d * e) - (a + b)); }",
            archs::example_arch(4),
        );
        let mut trace = ExploreTrace::default();
        let mut opts = CodegenOptions::heuristics_on();
        opts.prune_slack = 0; // the paper's prune-to-minimum rule
        let _ = explore_traced(&f.blocks[0].dag, &sn, &target, &opts, Some(&mut trace));
        // Find the SUB probes.
        let dag = &f.blocks[0].dag;
        let sub = dag
            .iter()
            .find(|(_, n)| n.op == aviv_ir::Op::Sub)
            .map(|(id, _)| id)
            .unwrap();
        let sub_probes: Vec<&TraceEntry> = trace.entries.iter().filter(|e| e.node == sub).collect();
        assert_eq!(sub_probes.len(), 2, "SUB has two alternatives");
        let on_u1 = sub_probes.iter().find(|e| e.desc.contains("U1")).unwrap();
        let on_u2 = sub_probes.iter().find(|e| e.desc.contains("U2")).unwrap();
        assert_eq!(on_u1.incremental_cost, 0, "no transfer to COMPL on U1");
        assert_eq!(on_u2.incremental_cost, 1, "one transfer to COMPL on U1");
        assert!(!on_u1.pruned);
        assert!(on_u2.pruned);
    }

    /// Continuing Fig. 6: with SUB on U1 and MUL on U2, ADD-on-U1 costs 2
    /// (two leaf loads), ADD-on-U2 costs 4 (two loads + transfer to SUB +
    /// merging with MUL foregone).
    #[test]
    fn fig6_add_costs() {
        let (f, target, sn) = setup(
            "func f(a, b, d, e) { out = ~((d * e) - (a + b)); }",
            archs::example_arch(4),
        );
        let mut trace = ExploreTrace::default();
        let mut opts = CodegenOptions::heuristics_on();
        opts.prune_slack = 0; // the paper's prune-to-minimum rule
        let _ = explore_traced(&f.blocks[0].dag, &sn, &target, &opts, Some(&mut trace));
        let dag = &f.blocks[0].dag;
        let add = dag
            .iter()
            .find(|(_, n)| n.op == aviv_ir::Op::Add)
            .map(|(id, _)| id)
            .unwrap();
        let probes: Vec<&TraceEntry> = trace
            .entries
            .iter()
            .filter(|e| e.node == add && !e.desc.is_empty())
            .collect();
        // Branches where MUL went to U2 probe the ADD with these costs:
        let u1_costs: Vec<i64> = probes
            .iter()
            .filter(|e| e.desc.contains("U1"))
            .map(|e| e.incremental_cost)
            .collect();
        let u2_costs: Vec<i64> = probes
            .iter()
            .filter(|e| e.desc.contains("U2"))
            .map(|e| e.incremental_cost)
            .collect();
        assert!(u1_costs.contains(&2), "ADD on U1 = 2 loads: {u1_costs:?}");
        assert!(
            u2_costs.contains(&4),
            "ADD on U2 = 2 loads + xfer + lost merge: {u2_costs:?}"
        );
    }

    #[test]
    fn complex_alternatives_win_when_available() {
        let (f, target, sn) = setup("func f(a, b, c) { y = a * b + c; }", archs::dsp_arch(4));
        let res = explore(
            &f.blocks[0].dag,
            &sn,
            &target,
            &CodegenOptions::heuristics_on(),
        );
        // The best assignment should use the MAC (it saves a slot).
        let best = &res.assignments[0];
        let dag = &f.blocks[0].dag;
        let add = dag
            .iter()
            .find(|(_, n)| n.op == aviv_ir::Op::Add)
            .map(|(id, _)| id)
            .unwrap();
        let ai = best.choice[add.index()].unwrap();
        assert!(matches!(sn.alts(add)[ai].kind, AltKind::Complex { .. }));
        // The swallowed MUL has no choice of its own.
        let mul = dag
            .iter()
            .find(|(_, n)| n.op == aviv_ir::Op::Mul)
            .map(|(id, _)| id)
            .unwrap();
        assert!(best.complex_covered[mul.index()]);
        assert_eq!(best.choice[mul.index()], None);
    }

    #[test]
    fn beam_caps_branch_count() {
        let (f, target, sn) = setup(
            "func f(a,b,c,d,e,g,h,i) { x = (a+b)*(c+d); y = (e+g)*(h+i); z = x - y; }",
            archs::example_arch(4),
        );
        let mut opts = CodegenOptions::heuristics_on();
        opts.assignment_beam = 2;
        opts.assignments_to_explore = 2;
        let res = explore(&f.blocks[0].dag, &sn, &target, &opts);
        assert!(res.assignments.len() <= 2);
        assert!(res.enumerated <= 2);
    }
}
