//! Deterministic, seeded fault injection at pipeline stage boundaries.
//!
//! The degradation ladder and panic isolation in [`crate::codegen`] only
//! earn trust if their failure paths are exercised. This module injects
//! three kinds of faults — panics, budget exhaustion, and malformed
//! intermediate state — at every stage boundary of the per-block planner
//! (split-node DAG → clique formation → covering → register allocation →
//! emission), driven entirely by a seed so every run, and every `--jobs`
//! worker count, sees exactly the same faults.
//!
//! Whether a fault fires at a given point is a pure function of
//! `(seed, block index, stage)`; each `(block, stage)` point fires **at
//! most once per plan**, so a rung that trips over an injected fault can
//! actually recover on the next rung instead of tripping over the same
//! deterministic fault forever. The property tests in
//! `crates/core/tests/faults.rs` assert that under injection no panic
//! escapes [`crate::CodeGenerator::compile_function`], every fault
//! yields a stable diagnostic or a recorded downgrade, and every
//! degraded compile still passes the differential oracle.

use crate::invariants::Stage;
use std::cell::RefCell;
use std::collections::HashSet;

/// What kind of fault to inject at a stage boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// `panic!` at the boundary — exercises `catch_unwind` isolation.
    Panic,
    /// Force the block's [`crate::Budget`] into the exhausted state —
    /// exercises the budget plumbing and the degradation ladder.
    Exhaust,
    /// Corrupt the stage's intermediate result (kill a cover node, drop
    /// a schedule step, delete a register assignment, …) — exercises the
    /// invariant verifier and structured-error paths.
    Malform,
}

impl FaultKind {
    fn from_hash(h: u64) -> FaultKind {
        match h % 3 {
            0 => FaultKind::Panic,
            1 => FaultKind::Exhaust,
            _ => FaultKind::Malform,
        }
    }
}

/// Configuration of the deterministic fault harness, carried on
/// [`crate::CodegenOptions::faults`]. `None` there (the default)
/// compiles with no injection overhead beyond one branch per stage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultConfig {
    /// Seed mixing into every fire decision.
    pub seed: u64,
    /// Fire roughly one in `rate` of the `(block, stage)` points
    /// (`1` fires everywhere). `0` is treated as `1`.
    pub rate: u64,
    /// Restrict injection to one stage (`None` = all stages).
    pub stage: Option<Stage>,
    /// Force the fault kind (`None` = derived from the hash).
    pub kind: Option<FaultKind>,
}

impl FaultConfig {
    /// Faults at roughly half of all stage boundaries.
    pub fn seeded(seed: u64) -> FaultConfig {
        FaultConfig {
            seed,
            rate: 2,
            stage: None,
            kind: None,
        }
    }

    /// Set the firing rate (one in `rate` points).
    pub fn every(mut self, rate: u64) -> FaultConfig {
        self.rate = rate;
        self
    }

    /// Restrict injection to `stage`.
    pub fn at_stage(mut self, stage: Stage) -> FaultConfig {
        self.stage = Some(stage);
        self
    }

    /// Force every injected fault to be `kind`.
    pub fn of_kind(mut self, kind: FaultKind) -> FaultConfig {
        self.kind = Some(kind);
        self
    }
}

/// SplitMix64 — the standard 64-bit finalizer; a pure function of its
/// input, so fault decisions are reproducible everywhere.
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn stage_salt(stage: Stage) -> u64 {
    match stage {
        Stage::SplitDag => 0x51,
        Stage::Cover => 0xC0,
        Stage::Cliques => 0xC1,
        Stage::RegAlloc => 0x4A,
        Stage::Emit => 0xE7,
    }
}

/// Per-plan fault decider. One injector lives for the whole ladder of a
/// block's plan (and a separate one for its emission), tracking which
/// stages already fired so each `(block, stage)` point trips at most
/// once.
#[derive(Debug)]
pub(crate) struct FaultInjector<'a> {
    config: Option<&'a FaultConfig>,
    block: usize,
    fired: RefCell<HashSet<Stage>>,
}

impl<'a> FaultInjector<'a> {
    pub(crate) fn new(config: Option<&'a FaultConfig>, block: usize) -> FaultInjector<'a> {
        FaultInjector {
            config,
            block,
            fired: RefCell::new(HashSet::new()),
        }
    }

    /// Decide whether a fault fires at `stage` for this block. Marks the
    /// stage as fired so the ladder's retry rungs run clean.
    pub(crate) fn arm(&self, stage: Stage) -> Option<FaultKind> {
        let config = self.config?;
        if config.stage.is_some_and(|s| s != stage) {
            return None;
        }
        if !self.fired.borrow_mut().insert(stage) {
            return None;
        }
        let h = splitmix64(
            config.seed
                ^ (self.block as u64 + 1).wrapping_mul(0xD1B5_4A32_D192_ED03)
                ^ stage_salt(stage).wrapping_mul(0x2545_F491_4F6C_DD1D),
        );
        if !h.is_multiple_of(config.rate.max(1)) {
            return None;
        }
        Some(config.kind.unwrap_or(FaultKind::from_hash(h >> 33)))
    }
}

/// The panic message used by injected [`FaultKind::Panic`] faults; tests
/// and panic-hook filters match on it.
pub const INJECTED_PANIC: &str = "injected fault";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_deterministic() {
        let cfg = FaultConfig::seeded(42);
        for block in 0..8 {
            let a = FaultInjector::new(Some(&cfg), block);
            let b = FaultInjector::new(Some(&cfg), block);
            for stage in [
                Stage::SplitDag,
                Stage::Cliques,
                Stage::Cover,
                Stage::RegAlloc,
                Stage::Emit,
            ] {
                assert_eq!(a.arm(stage), b.arm(stage));
            }
        }
    }

    #[test]
    fn each_stage_fires_at_most_once() {
        let cfg = FaultConfig::seeded(7).every(1);
        let inj = FaultInjector::new(Some(&cfg), 0);
        assert!(inj.arm(Stage::Cover).is_some());
        assert_eq!(inj.arm(Stage::Cover), None);
    }

    #[test]
    fn stage_and_kind_filters_apply() {
        let cfg = FaultConfig::seeded(1)
            .every(1)
            .at_stage(Stage::RegAlloc)
            .of_kind(FaultKind::Panic);
        let inj = FaultInjector::new(Some(&cfg), 3);
        assert_eq!(inj.arm(Stage::Cover), None);
        assert_eq!(inj.arm(Stage::RegAlloc), Some(FaultKind::Panic));
    }

    #[test]
    fn no_config_never_fires() {
        let inj = FaultInjector::new(None, 0);
        assert_eq!(inj.arm(Stage::Cover), None);
    }

    #[test]
    fn rate_thins_firing() {
        let cfg = FaultConfig::seeded(99).every(4);
        let fired = (0..400)
            .filter(|&b| {
                let inj = FaultInjector::new(Some(&cfg), b);
                inj.arm(Stage::Cover).is_some()
            })
            .count();
        assert!(fired > 40 && fired < 220, "fired {fired}/400");
    }
}
