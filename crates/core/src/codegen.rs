//! The top-level code generator: Fig. 5's overall algorithm.
//!
//! ```text
//! Explore possible split-node functional unit assignments
//!   - Estimate cost of assignment
//!   - Select several lowest cost assignments to explore in further detail
//! Foreach selected assignment
//!   - Insert required data transfers
//!   - Generate all maximal groupings of nodes executable in parallel
//!   - Select a minimal-cost set of maximal groupings covering all nodes
//! Final solution is the lowest-cost solution found above
//! ```
//!
//! followed by detailed register allocation (§IV-F), peephole
//! optimization (§IV-G), and conventional lowering of control flow
//! (§III-C).
//!
//! # Robustness
//!
//! The driver is hardened against the search blowing up or a stage
//! misbehaving (see `docs/robustness.md`):
//!
//! - Every block is planned under a cooperative [`Budget`]
//!   ([`CodegenOptions::fuel`] / [`CodegenOptions::deadline_ms`]).
//! - On budget exhaustion or a stage error, the block steps down a
//!   **degradation ladder** ([`CoverMode`]) — full concurrent covering,
//!   then sequential covering, then a minimal spill-everything mode —
//!   recording each step as a [`Downgrade`] in the [`CompileReport`].
//! - Each rung runs under `catch_unwind`, so a panic anywhere in the
//!   per-block pipeline degrades the block (or surfaces as
//!   [`CodegenError::BlockFailed`] on the last rung) instead of
//!   unwinding through — or poisoning — the parallel planner.
//! - A deterministic fault-injection harness ([`crate::faults`])
//!   exercises all of the above from property tests.

use crate::assign::{explore, ExploreResult};
use crate::budget::{self, Budget, Exhaustion};
use crate::cache::{CacheKey, PlanCache};
use crate::cover::{cover_budgeted, cover_sequential_budgeted, CoverError, Schedule};
use crate::covergraph::{CoverGraph, Operand};
use crate::emit::{
    emit_block, live_out_operands, AsmOperand, ControlOp, VliwInstruction, VliwProgram,
};
use crate::faults::{FaultInjector, FaultKind, INJECTED_PANIC};
use crate::invariants::Stage;
use crate::options::CodegenOptions;
use crate::peephole;
use crate::regalloc::{allocate_budgeted, AllocFailure, Allocation, RegAllocError};
use aviv_ir::{BlockDag, Function, MemLayout, NodeId, Sym, SymbolTable, Terminator};
use aviv_isdl::{Machine, Target};
use aviv_splitdag::{SplitDagError, SplitNodeDag};
use aviv_verify::{Code, Diagnostic};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Code-generation failure.
#[derive(Debug, Clone)]
pub enum CodegenError {
    /// The block cannot be implemented on the machine at all.
    Unsupported(SplitDagError),
    /// Covering failed on every explored assignment.
    Cover(CoverError),
    /// Detailed allocation failed (indicates a covering bug; surfaced for
    /// property tests rather than panicking).
    RegAlloc(RegAllocError),
    /// The pipeline invariant verifier ([`crate::invariants`]) found a
    /// violation; only raised when [`CodegenOptions::verify`] is set.
    Invariant(Vec<aviv_verify::Diagnostic>),
    /// An internal defect the generator used to panic on, reported as a
    /// structured diagnostic (C-family codes) instead.
    Internal(Diagnostic),
    /// A panic escaped every rung of the degradation ladder for `block`;
    /// it was caught at the block boundary instead of unwinding out of
    /// [`CodeGenerator::compile_function`].
    BlockFailed {
        /// Index of the failing block.
        block: usize,
        /// The panic message.
        cause: String,
    },
    /// The compile budget ran out and no rung of the degradation ladder
    /// could salvage the block.
    Budget(Exhaustion),
    /// The compile was cancelled cooperatively (diagnostic code `C007`):
    /// the [`crate::CancelToken`] in [`CodegenOptions::cancel`] fired and
    /// the in-flight search aborted at its next budget check. Unlike
    /// [`CodegenError::Budget`], cancellation never walks the degradation
    /// ladder or salvages a partial plan — the caller asked for the work
    /// to stop, not for cheaper code — and nothing is cached or emitted.
    Cancelled,
}

impl fmt::Display for CodegenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodegenError::Unsupported(e) => write!(f, "unsupported: {e}"),
            CodegenError::Cover(e) => write!(f, "covering failed: {e}"),
            CodegenError::RegAlloc(e) => write!(f, "register allocation failed: {e}"),
            CodegenError::Invariant(diags) => {
                write!(f, "pipeline invariant violated: {}", diags[0])?;
                if diags.len() > 1 {
                    write!(f, " (+{} more)", diags.len() - 1)?;
                }
                Ok(())
            }
            CodegenError::Internal(d) => write!(f, "internal defect: {d}"),
            CodegenError::BlockFailed { block, cause } => {
                write!(f, "block {block} failed: {cause}")
            }
            CodegenError::Budget(why) => write!(f, "compile budget ran out: {why}"),
            CodegenError::Cancelled => write!(f, "compile cancelled (C007)"),
        }
    }
}

impl Error for CodegenError {}

impl From<SplitDagError> for CodegenError {
    fn from(e: SplitDagError) -> Self {
        CodegenError::Unsupported(e)
    }
}

/// The rung of the degradation ladder a block was compiled on.
///
/// Rung 0 reproduces the paper's algorithm exactly; each step down trades
/// code quality for a stronger termination guarantee. The last rung
/// always terminates on a machine that can execute the block at all.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CoverMode {
    /// Full branch-and-bound covering over the explored assignments —
    /// the paper's algorithm, with the per-assignment sequential retry.
    Concurrent,
    /// Guaranteed-progress sequential covering over the explored
    /// assignments (one node group per instruction, eager spilling under
    /// pressure).
    Sequential,
    /// Last resort: a single assignment, sequential covering, no
    /// lookahead, no peephole — run *unbudgeted*, because its register
    /// demand is bounded by operation arity and so it terminates.
    SpillAll,
}

impl CoverMode {
    /// The next rung down the ladder, or `None` at the bottom.
    pub fn next(self) -> Option<CoverMode> {
        match self {
            CoverMode::Concurrent => Some(CoverMode::Sequential),
            CoverMode::Sequential => Some(CoverMode::SpillAll),
            CoverMode::SpillAll => None,
        }
    }
}

impl fmt::Display for CoverMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoverMode::Concurrent => write!(f, "concurrent"),
            CoverMode::Sequential => write!(f, "sequential"),
            CoverMode::SpillAll => write!(f, "spill-all"),
        }
    }
}

/// Why a block stepped down the degradation ladder.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DowngradeReason {
    /// The rung's [`Budget`] ran out.
    Budget(Exhaustion),
    /// The rung failed with a structured error.
    Error(String),
    /// The rung panicked; the panic was caught by the rung boundary.
    Panic(String),
}

impl fmt::Display for DowngradeReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DowngradeReason::Budget(why) => write!(f, "budget: {why}"),
            DowngradeReason::Error(e) => write!(f, "error: {e}"),
            DowngradeReason::Panic(p) => write!(f, "panic: {p}"),
        }
    }
}

/// One recorded step down the degradation ladder, kept in the
/// [`BlockReport`] (and aggregated into the [`CompileReport`]) so a
/// degraded compile is always observable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Downgrade {
    /// Index of the block that degraded.
    pub block: usize,
    /// The rung that failed.
    pub from: CoverMode,
    /// The rung the block fell back to.
    pub to: CoverMode,
    /// Why the rung failed.
    pub reason: DowngradeReason,
}

impl fmt::Display for Downgrade {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "block {}: {} -> {} ({})",
            self.block, self.from, self.to, self.reason
        )
    }
}

/// Wall-clock time spent in each stage of one block's winning rung.
/// Feeds the per-stage breakdown of the `BENCH_*.json` snapshots.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageTimes {
    /// Split-node DAG construction.
    pub sndag: Duration,
    /// Functional-unit assignment exploration.
    pub explore: Duration,
    /// Cover-graph construction + clique covering over all explored
    /// assignments.
    pub cover: Duration,
    /// Detailed register allocation.
    pub alloc: Duration,
    /// Peephole optimization.
    pub peephole: Duration,
    /// Pipeline invariant verification (zero when disabled).
    pub verify: Duration,
}

/// Statistics from compiling one basic block (feeds the paper's tables).
#[derive(Debug, Clone)]
pub struct BlockReport {
    /// Original DAG node count (Table column 2).
    pub orig_nodes: usize,
    /// Split-Node DAG node count (Table column 3).
    pub sndag_nodes: usize,
    /// Size of the full assignment space.
    pub assignment_space: u128,
    /// Assignments that survived enumeration.
    pub assignments_enumerated: usize,
    /// Assignments explored in detail.
    pub assignments_explored: usize,
    /// Whether enumeration was truncated by the safety cap.
    pub truncated: bool,
    /// Spills inserted in the winning solution (Table column 5).
    pub spills: usize,
    /// Final instruction count for the block body (Table column 7).
    pub instructions: usize,
    /// Instructions removed by the peephole pass.
    pub peephole_removed: usize,
    /// Wall-clock compile time (Table column 8).
    pub time: Duration,
    /// Per-stage wall-clock breakdown of the winning rung.
    pub stages: StageTimes,
    /// Node expansions charged to the winning rung's budget (the fuel
    /// unit of [`CodegenOptions::fuel`]).
    pub node_expansions: u64,
    /// Peak simultaneous register occupancy of any one bank over the
    /// final schedule (see [`crate::cover::peak_pressure`]).
    pub peak_pressure: usize,
    /// Admissible static lower bound on the block's instruction count,
    /// from [`aviv_verify::analyze::block_bounds`]. The gap to
    /// [`instructions`](BlockReport::instructions) bounds how far the
    /// block is from provably optimal (`avivc --report` prints it).
    pub min_instructions_bound: usize,
    /// Admissible static lower bound on peak single-bank register
    /// pressure, from the same analysis; compare
    /// [`peak_pressure`](BlockReport::peak_pressure).
    pub min_pressure_bound: usize,
    /// `true` when this block's plan was served from the
    /// [`PlanCache`](crate::PlanCache) instead of being computed.
    pub cached: bool,
    /// `true` when the cache entry that served this block was restored
    /// from a persisted snapshot ([`crate::persist`]) rather than computed
    /// in this process — `avivd --validate-on-load` forces translation
    /// validation on such compiles.
    pub restored: bool,
    /// The degradation-ladder rung that produced the block's code.
    pub mode: CoverMode,
    /// Every ladder step the block took, in order.
    pub downgrades: Vec<Downgrade>,
    /// Why the winning rung's budget ran out, when the block was
    /// salvaged from a partially-explored assignment space.
    pub exhausted: Option<Exhaustion>,
    /// `true` when the block compiled on the first rung with nothing
    /// truncated or exhausted — i.e. the output is what an unbudgeted
    /// run would have produced.
    pub complete: bool,
}

/// Everything produced for one basic block.
#[derive(Debug, Clone)]
pub struct BlockResult {
    /// The block body (control flow not included).
    pub instructions: Vec<VliwInstruction>,
    /// The winning cover graph.
    pub graph: CoverGraph,
    /// The winning schedule.
    pub schedule: Schedule,
    /// The register allocation.
    pub alloc: Allocation,
    /// Where live-out values (branch conditions, return values) reside.
    pub live_out: HashMap<NodeId, AsmOperand>,
    /// Statistics.
    pub report: BlockReport,
}

/// The pure result of planning one basic block against an immutable
/// snapshot of the symbol table: everything up to (but not including)
/// emission, with the spill slots the block wants recorded as appended
/// *names* rather than as mutations of shared state.
///
/// Plans for different blocks are independent, so a function's blocks can
/// be planned concurrently ([`CodegenOptions::jobs`]) and then applied in
/// block order by [`CodeGenerator::apply_plan`], which renames each
/// plan-local spill slot to its final function-wide symbol. The merge
/// reproduces exactly the symbol ids and names a sequential run picks, so
/// the emitted program is byte-identical for any worker count.
#[derive(Debug, Clone)]
pub struct BlockPlan {
    graph: CoverGraph,
    schedule: Schedule,
    alloc: Allocation,
    /// Names interned beyond the snapshot during covering, in creation
    /// order; their plan-local ids are `snapshot_len..`.
    appended_syms: Vec<String>,
    snapshot_len: usize,
    /// Partial report; `instructions` and final `time` are filled in by
    /// [`CodeGenerator::apply_plan`].
    report: BlockReport,
}

impl BlockPlan {
    /// Spill-slot names this block wants appended to the symbol table.
    pub fn appended_syms(&self) -> &[String] {
        &self.appended_syms
    }

    /// Decompose into the parts the snapshot codec ([`crate::persist`])
    /// writes to disk.
    #[allow(clippy::type_complexity)]
    pub(crate) fn wire_parts(
        &self,
    ) -> (
        &CoverGraph,
        &Schedule,
        &Allocation,
        &[String],
        usize,
        &BlockReport,
    ) {
        (
            &self.graph,
            &self.schedule,
            &self.alloc,
            &self.appended_syms,
            self.snapshot_len,
            &self.report,
        )
    }

    /// Reassemble from decoded snapshot parts ([`crate::persist`]).
    pub(crate) fn from_wire_parts(
        graph: CoverGraph,
        schedule: Schedule,
        alloc: Allocation,
        appended_syms: Vec<String>,
        snapshot_len: usize,
        report: BlockReport,
    ) -> BlockPlan {
        BlockPlan {
            graph,
            schedule,
            alloc,
            appended_syms,
            snapshot_len,
            report,
        }
    }
}

/// Statistics — and the robustness record — from compiling a whole
/// function: per-block reports plus every degradation-ladder step taken.
#[derive(Debug, Clone)]
pub struct CompileReport {
    /// Per-block reports in block order.
    pub blocks: Vec<BlockReport>,
    /// Total instructions including control flow.
    pub total_instructions: usize,
    /// Every ladder step taken by any block, in block order.
    pub downgrades: Vec<Downgrade>,
    /// `true` when every block compiled complete (see
    /// [`BlockReport::complete`]): no downgrades, no truncation, no
    /// budget exhaustion — the output matches an unbudgeted run.
    pub complete: bool,
    /// Blocks whose plans were served from the attached
    /// [`PlanCache`](crate::PlanCache) (0 when no cache is attached).
    pub cache_hits: usize,
    /// Blocks planned from scratch while a cache was attached (0 when no
    /// cache is attached).
    pub cache_misses: usize,
    /// Cache hits served by entries restored from a persisted snapshot
    /// (a subset of [`cache_hits`](CompileReport::cache_hits)).
    pub restored_hits: usize,
}

impl Default for CompileReport {
    fn default() -> CompileReport {
        CompileReport {
            blocks: Vec::new(),
            total_instructions: 0,
            downgrades: Vec::new(),
            complete: true,
            cache_hits: 0,
            cache_misses: 0,
            restored_hits: 0,
        }
    }
}

/// Former name of [`CompileReport`], kept for source compatibility.
pub type FunctionReport = CompileReport;

/// Why one rung of the degradation ladder failed.
enum RungFailure {
    /// The rung's budget ran out before any solution was found.
    Budget(Exhaustion),
    /// The rung failed with a structured error.
    Error(CodegenError),
}

/// Extract a readable message from a caught panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// The retargetable code generator: construct once per machine, compile
/// any number of blocks or functions.
///
/// ```
/// use aviv::CodeGenerator;
/// use aviv_ir::parse_function;
/// use aviv_isdl::archs;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let f = parse_function("func f(a, b) { x = a * b + 1; return x; }")?;
/// let generator = CodeGenerator::new(archs::example_arch(4));
/// let (program, report) = generator.compile_function(&f)?;
/// assert!(report.total_instructions > 0);
/// println!("{}", program.render(generator.target()));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct CodeGenerator {
    target: Arc<Target>,
    options: CodegenOptions,
    /// Shared plan cache; `None` (the default) plans every block fresh.
    cache: Option<Arc<PlanCache>>,
    /// [`Target::fingerprint`] of `target`, computed once when the cache
    /// is attached (it is only ever read on cache paths).
    target_fp: u64,
}

impl CodeGenerator {
    /// Create a generator for `machine` with default options.
    pub fn new(machine: Machine) -> Self {
        Self::with_shared_target(Arc::new(Target::new(machine)))
    }

    /// Create a generator from a prebuilt [`Target`].
    pub fn with_target(target: Target) -> Self {
        Self::with_shared_target(Arc::new(target))
    }

    /// Create a generator from a shared [`Target`]: the derived
    /// correlation databases are immutable, so any number of generators
    /// (one per server request, say) can retarget against one `Arc`
    /// without rebuilding them.
    pub fn with_shared_target(target: Arc<Target>) -> Self {
        CodeGenerator {
            target,
            options: CodegenOptions::default(),
            cache: None,
            target_fp: 0,
        }
    }

    /// Set the heuristic options.
    pub fn options(mut self, options: CodegenOptions) -> Self {
        self.options = options;
        self
    }

    /// Attach a shared [`PlanCache`]: [`CodeGenerator::compile_function`]
    /// and [`CodeGenerator::compile_batch`] will serve block plans from
    /// it and insert the complete plans they compute. The cache can be
    /// shared across generators, targets, and threads — keys incorporate
    /// the target and options fingerprints, so mixed use is sound.
    ///
    /// Caching changes wall-clock only, never bytes: a cache hit replays
    /// a plan that is byte-identical to what planning would produce (see
    /// the [`crate::cache`] module docs for the argument).
    pub fn with_cache(mut self, cache: Arc<PlanCache>) -> Self {
        self.target_fp = self.target.fingerprint();
        self.cache = Some(cache);
        self
    }

    /// The attached plan cache, if any.
    pub fn cache_ref(&self) -> Option<&Arc<PlanCache>> {
        self.cache.as_ref()
    }

    /// The target in use.
    pub fn target(&self) -> &Target {
        &self.target
    }

    /// The target in use, as the shareable handle
    /// ([`CodeGenerator::with_shared_target`] of another generator).
    pub fn shared_target(&self) -> Arc<Target> {
        Arc::clone(&self.target)
    }

    /// The options in use.
    pub fn options_ref(&self) -> &CodegenOptions {
        &self.options
    }

    /// Compile one basic block. `syms` and `layout` may gain spill slots.
    ///
    /// Equivalent to [`CodeGenerator::plan_block`] against the current
    /// table followed by [`CodeGenerator::apply_plan`].
    ///
    /// # Errors
    ///
    /// See [`CodegenError`].
    pub fn compile_block(
        &self,
        dag: &BlockDag,
        syms: &mut SymbolTable,
        layout: &mut MemLayout,
    ) -> Result<BlockResult, CodegenError> {
        let plan = self.plan_block(dag, syms)?;
        self.apply_plan(plan, syms, layout)
    }

    /// Plan one basic block against an immutable `snapshot` of the symbol
    /// table: assignment exploration, covering, register allocation, and
    /// peephole — everything except emission. Mutates nothing, so any
    /// number of blocks can be planned concurrently from one snapshot.
    ///
    /// # Errors
    ///
    /// See [`CodegenError`].
    pub fn plan_block(
        &self,
        dag: &BlockDag,
        snapshot: &SymbolTable,
    ) -> Result<BlockPlan, CodegenError> {
        self.plan_block_at(dag, snapshot, 0, budget::deadline(self.options.deadline_ms))
    }

    /// Plan `block` by walking the degradation ladder: try each
    /// [`CoverMode`] rung in order under a fresh fuel allotment (the
    /// wall-clock `deadline` is shared — a block that blew the deadline
    /// falls straight through to the unbudgeted last rung), catching
    /// panics at the rung boundary and recording every step down as a
    /// [`Downgrade`].
    fn plan_block_at(
        &self,
        dag: &BlockDag,
        snapshot: &SymbolTable,
        block: usize,
        deadline: Option<Instant>,
    ) -> Result<BlockPlan, CodegenError> {
        let injector = FaultInjector::new(self.options.faults.as_ref(), block);
        let mut downgrades: Vec<Downgrade> = Vec::new();
        let mut mode = CoverMode::Concurrent;
        loop {
            let rung_budget = if mode == CoverMode::SpillAll {
                // The last rung is unbudgeted but still cancellable: a
                // caller that fired the token wants the work to stop even
                // where fuel and deadlines no longer apply.
                Budget::unlimited().with_cancel(self.options.cancel.clone())
            } else {
                Budget::new(self.options.fuel, deadline).with_cancel(self.options.cancel.clone())
            };
            let attempt = catch_unwind(AssertUnwindSafe(|| {
                self.plan_block_once(dag, snapshot, mode, &rung_budget, &injector)
            }));
            let reason = match attempt {
                Ok(Ok(mut plan)) => {
                    plan.report.mode = mode;
                    plan.report.complete = mode == CoverMode::Concurrent
                        && downgrades.is_empty()
                        && !plan.report.truncated
                        && plan.report.exhausted.is_none();
                    plan.report.downgrades = downgrades;
                    return Ok(plan);
                }
                Ok(Err(RungFailure::Budget(Exhaustion::Cancelled))) => {
                    // Cancellation is not exhaustion: the caller asked for
                    // the work to stop, so no lower rung may run.
                    return Err(CodegenError::Cancelled);
                }
                Ok(Err(RungFailure::Budget(why))) => match mode.next() {
                    Some(_) => DowngradeReason::Budget(why),
                    None => return Err(CodegenError::Budget(why)),
                },
                Ok(Err(RungFailure::Error(e))) => {
                    // A machine that cannot implement the block at all
                    // will not start implementing it on a lower rung.
                    if matches!(e, CodegenError::Unsupported(_)) || mode.next().is_none() {
                        return Err(e);
                    }
                    DowngradeReason::Error(e.to_string())
                }
                Err(payload) => {
                    let cause = panic_message(payload.as_ref());
                    match mode.next() {
                        Some(_) => DowngradeReason::Panic(cause),
                        None => return Err(CodegenError::BlockFailed { block, cause }),
                    }
                }
            };
            // `reason` only exists when there is a next rung.
            let next = mode.next().unwrap_or(CoverMode::SpillAll);
            downgrades.push(Downgrade {
                block,
                from: mode,
                to: next,
                reason,
            });
            mode = next;
        }
    }

    /// The effective options for one ladder rung: the last rung shrinks
    /// exploration to a single assignment and disables lookahead and
    /// peephole so that nothing about it can blow up.
    fn rung_options(&self, mode: CoverMode) -> CodegenOptions {
        match mode {
            CoverMode::Concurrent | CoverMode::Sequential => self.options.clone(),
            CoverMode::SpillAll => CodegenOptions {
                prune_assignments: true,
                prune_slack: 0,
                assignment_beam: 1,
                assignments_to_explore: 1,
                max_assignments: 1,
                lookahead: false,
                peephole: false,
                ..self.options.clone()
            },
        }
    }

    /// One rung of the ladder: explore assignments, cover each under
    /// `budget`, allocate, peephole, verify. Injected faults fire at the
    /// stage boundaries (each at most once per plan, so a later rung
    /// recovers from them).
    fn plan_block_once(
        &self,
        dag: &BlockDag,
        snapshot: &SymbolTable,
        mode: CoverMode,
        rung_budget: &Budget,
        injector: &FaultInjector<'_>,
    ) -> Result<BlockPlan, RungFailure> {
        let start = Instant::now();
        let mut stages = StageTimes::default();
        let sndag = SplitNodeDag::build(dag, &self.target)
            .map_err(|e| RungFailure::Error(CodegenError::Unsupported(e)))?;
        stages.sndag = start.elapsed();

        // Fault points for the two front-end stages. A malform fault
        // corrupts every cover graph built this rung (so it is visible as
        // a structured failure rather than masked by the next
        // assignment's fresh graph).
        let mut corrupt_graph = false;
        for (stage, what) in [
            (Stage::SplitDag, "split-node DAG construction"),
            (Stage::Cliques, "clique formation"),
        ] {
            if let Some(kind) = injector.arm(stage) {
                match kind {
                    FaultKind::Panic => panic!("{INJECTED_PANIC} at {what}"),
                    FaultKind::Exhaust => rung_budget.exhaust(Exhaustion::Injected),
                    FaultKind::Malform => corrupt_graph = true,
                }
            }
        }

        let stats = sndag.stats(dag);
        let options = self.rung_options(mode);
        let explore_start = Instant::now();
        let ExploreResult {
            assignments,
            enumerated,
            truncated,
        } = explore(dag, &sndag, &self.target, &options);
        stages.explore = explore_start.elapsed();

        // Explore each selected assignment in depth; keep the cheapest.
        let cover_start = Instant::now();
        let mut best: Option<(CoverGraph, Schedule, SymbolTable)> = None;
        let mut last_err: Option<CoverError> = None;
        let mut exhausted: Option<Exhaustion> = None;
        for assignment in &assignments {
            if let (Err(why), Some(_)) = (rung_budget.check(), &best) {
                if why == Exhaustion::Cancelled {
                    return Err(RungFailure::Budget(why));
                }
                // The budget ran out between assignments but an earlier
                // one already produced code: salvage it.
                exhausted = Some(why);
                break;
            }
            let mut scratch_syms = snapshot.clone();
            let mut graph = CoverGraph::try_build(dag, &sndag, &self.target, assignment)
                .map_err(|d| RungFailure::Error(CodegenError::Internal(d)))?;
            debug_assert!(graph.verify(&self.target).is_ok());
            if corrupt_graph {
                corrupt_cover_graph(&mut graph);
            }
            let result = match mode {
                CoverMode::Concurrent => cover_budgeted(
                    &mut graph,
                    &self.target,
                    &mut scratch_syms,
                    &options,
                    rung_budget,
                )
                .map(|s| (graph, s))
                .or_else(|e| {
                    if matches!(e, CoverError::Budget(_) | CoverError::Internal(_)) {
                        // Budget exhaustion and engine defects are the
                        // ladder's job, not the inline retry's.
                        return Err(e);
                    }
                    // Extreme register pressure can wedge the concurrent
                    // engine; retry with the guaranteed-progress
                    // sequential fallback on a fresh graph.
                    let mut scratch = snapshot.clone();
                    let mut g = CoverGraph::try_build(dag, &sndag, &self.target, assignment)
                        .map_err(CoverError::Internal)?;
                    if corrupt_graph {
                        corrupt_cover_graph(&mut g);
                    }
                    let s =
                        cover_sequential_budgeted(&mut g, &self.target, &mut scratch, rung_budget)?;
                    scratch_syms = scratch;
                    Ok::<_, CoverError>((g, s))
                }),
                CoverMode::Sequential | CoverMode::SpillAll => cover_sequential_budgeted(
                    &mut graph,
                    &self.target,
                    &mut scratch_syms,
                    rung_budget,
                )
                .map(|s| (graph, s)),
            };
            match result {
                Ok((graph, schedule)) => {
                    let better = match &best {
                        None => true,
                        Some((_, s, _)) => schedule.len() < s.len(),
                    };
                    if better {
                        best = Some((graph, schedule, scratch_syms));
                    }
                }
                Err(CoverError::Budget(why)) => match &best {
                    Some(_) if why != Exhaustion::Cancelled => {
                        exhausted = Some(why);
                        break;
                    }
                    _ => return Err(RungFailure::Budget(why)),
                },
                Err(e) => last_err = Some(e),
            }
        }
        stages.cover = cover_start.elapsed();
        let (mut graph, mut schedule, winner_syms) = best.ok_or_else(|| {
            RungFailure::Error(CodegenError::Cover(
                last_err.unwrap_or(CoverError::SpillLimit),
            ))
        })?;

        // A salvaged block finishes its tail stages unbudgeted — but still
        // cancellable: the schedule exists, and allocation for it is cheap
        // and bounded.
        let tail;
        let tail_budget: &Budget = if exhausted.is_some() {
            tail = Budget::unlimited().with_cancel(self.options.cancel.clone());
            &tail
        } else {
            rung_budget
        };

        if let Some(kind) = injector.arm(Stage::Cover) {
            match kind {
                FaultKind::Panic => panic!("{INJECTED_PANIC} at covering"),
                FaultKind::Exhaust => tail_budget.exhaust(Exhaustion::Injected),
                FaultKind::Malform => {
                    schedule.steps.pop();
                }
            }
        }

        // Every live-out value (branch condition, return value) must have
        // been scheduled; a miss here means the schedule lost a value the
        // terminator needs (C002) — catch it structurally instead of
        // panicking at emission.
        let step_of = schedule.step_of(graph.len());
        for &(orig, op) in graph.live_out() {
            if let Operand::Cn(c) = op {
                if step_of.get(c.index()).copied().flatten().is_none() {
                    return Err(RungFailure::Error(CodegenError::Internal(Diagnostic::new(
                        Code::C002,
                        orig.to_string(),
                        "live-out value was never scheduled",
                    ))));
                }
            }
        }

        let alloc_start = Instant::now();
        let mut alloc = allocate_budgeted(&graph, &self.target, &schedule, tail_budget).map_err(
            |e| match e {
                AllocFailure::Uncolorable(e) => RungFailure::Error(CodegenError::RegAlloc(e)),
                AllocFailure::Budget(why) => RungFailure::Budget(why),
            },
        )?;
        stages.alloc = alloc_start.elapsed();

        if let Some(kind) = injector.arm(Stage::RegAlloc) {
            match kind {
                FaultKind::Panic => panic!("{INJECTED_PANIC} at register allocation"),
                FaultKind::Exhaust => tail_budget.exhaust(Exhaustion::Injected),
                FaultKind::Malform => {
                    alloc.corrupt_one();
                }
            }
        }
        tail_budget.check().map_err(RungFailure::Budget)?;

        // Peephole: try to undo pessimistic spills and recompact.
        let before_peephole = schedule.len();
        let peephole_start = Instant::now();
        if options.peephole {
            peephole::optimize(&mut graph, &self.target, &mut schedule, &mut alloc);
        }
        stages.peephole = peephole_start.elapsed();
        let peephole_removed = before_peephole - schedule.len();

        if self.options.verify {
            let verify_start = Instant::now();
            let diags = crate::invariants::verify_block(
                &self.target,
                dag,
                &sndag,
                &graph,
                &schedule,
                &alloc,
            );
            stages.verify = verify_start.elapsed();
            if !diags.is_empty() {
                return Err(RungFailure::Error(CodegenError::Invariant(diags)));
            }
        }

        // Static lower bounds for the optimality-gap columns — a pure
        // function of (dag, target), so cached-plan replays agree.
        let bounds = aviv_verify::analyze::block_bounds(dag, &self.target);

        // The only table mutation covering performs is appending fresh
        // spill slots; record the names so the merge can replay them.
        let appended_syms = winner_syms
            .iter()
            .skip(snapshot.len())
            .map(|(_, name)| name.to_string())
            .collect();

        let report = BlockReport {
            orig_nodes: stats.orig_nodes,
            sndag_nodes: stats.sn_nodes,
            assignment_space: stats.assignment_space,
            assignments_enumerated: enumerated,
            assignments_explored: assignments.len(),
            truncated,
            spills: schedule.spills.len(),
            instructions: 0, // filled in by apply_plan
            peephole_removed,
            time: start.elapsed(),
            stages,
            node_expansions: rung_budget.spent(),
            peak_pressure: crate::cover::peak_pressure(&graph, &self.target, &schedule),
            min_instructions_bound: bounds.0,
            min_pressure_bound: bounds.1,
            cached: false,
            restored: false,
            mode,
            downgrades: Vec::new(), // filled in by plan_block_at
            exhausted,
            complete: true, // recomputed by plan_block_at
        };
        Ok(BlockPlan {
            graph,
            schedule,
            alloc,
            appended_syms,
            snapshot_len: snapshot.len(),
            report,
        })
    }

    /// Apply a [`BlockPlan`] to the function-wide symbol table and memory
    /// layout, then emit the block. Plan-local spill symbols are renamed
    /// into `syms` in creation order — reproducing exactly the names and
    /// ids a sequential run picks — and their slots reserved in `layout`.
    ///
    /// Plans must be applied in block order, against the same table their
    /// snapshots were taken from (plus earlier blocks' applications).
    ///
    /// # Errors
    ///
    /// Returns [`CodegenError::Internal`] wrapping a `C006` diagnostic if
    /// the plan's schedule or allocation is malformed (emission refuses
    /// to lower it — see `docs/diagnostics.md`).
    pub fn apply_plan(
        &self,
        mut plan: BlockPlan,
        syms: &mut SymbolTable,
        layout: &mut MemLayout,
    ) -> Result<BlockResult, CodegenError> {
        let start = Instant::now();
        if !plan.appended_syms.is_empty() {
            let mut remap: HashMap<Sym, Sym> = HashMap::new();
            for (i, name) in plan.appended_syms.iter().enumerate() {
                let local = Sym((plan.snapshot_len + i) as u32);
                let merged = syms.fresh_like(name);
                if merged != local {
                    remap.insert(local, merged);
                }
            }
            if !remap.is_empty() {
                plan.graph.remap_syms(&remap);
                for r in &mut plan.schedule.spills {
                    if let Some(&m) = remap.get(&r.slot) {
                        r.slot = m;
                    }
                }
            }
        }

        // Register any new spill slots with the layout.
        for (sym, _) in syms.iter() {
            if sym.index() >= layout.known_symbols() {
                layout.reserve_slot(sym);
            }
        }

        let instructions = emit_block(
            &plan.graph,
            &self.target,
            &plan.schedule,
            &plan.alloc,
            syms,
            layout,
        )
        .map_err(CodegenError::Internal)?;
        let live_out =
            live_out_operands(&plan.graph, &plan.alloc).map_err(CodegenError::Internal)?;
        let mut report = plan.report;
        report.instructions = instructions.len();
        report.time += start.elapsed();
        Ok(BlockResult {
            instructions,
            graph: plan.graph,
            schedule: plan.schedule,
            alloc: plan.alloc,
            live_out,
            report,
        })
    }

    /// Compile a whole function, lowering control flow conventionally
    /// (§III-C) and resolving branch targets.
    ///
    /// Blocks are planned independently against a snapshot of the symbol
    /// table — concurrently when [`CodegenOptions::jobs`] is not 1 — and
    /// merged in block order, so the output is byte-identical for every
    /// worker count.
    ///
    /// No panic escapes this function for any input: per-block planning
    /// and emission run under `catch_unwind`, and an escaping panic is
    /// reported as [`CodegenError::BlockFailed`] after the degradation
    /// ladder ([`CoverMode`]) has been exhausted.
    ///
    /// # Errors
    ///
    /// See [`CodegenError`]. With several failing blocks, the error
    /// reported is the first in block order regardless of worker count.
    pub fn compile_function(
        &self,
        f: &Function,
    ) -> Result<(VliwProgram, CompileReport), CodegenError> {
        // A pre-cancelled compile does no work at all — not even the
        // liveness pass or a cache probe.
        if self
            .options
            .cancel
            .as_ref()
            .is_some_and(crate::CancelToken::is_cancelled)
        {
            return Err(CodegenError::Cancelled);
        }
        // Exact global liveness: drop stores shadowed on every path (and
        // the nodes only they kept alive) before covering, so dead
        // values never occupy registers. Every named variable is treated
        // as observable at exit, which keeps the memory image — and
        // therefore the differential oracle — bit-identical.
        let pruned;
        let f = if self.options.exact_liveness {
            let mut g = f.clone();
            let observable: Vec<Sym> = f.syms.iter().map(|(s, _)| s).collect();
            if aviv_ir::opt::eliminate_dead_code(&mut g, &observable) > 0 {
                pruned = g;
                &pruned
            } else {
                f
            }
        } else {
            f
        };
        let snapshot = f.syms.clone();
        let deadline = budget::deadline(self.options.deadline_ms);
        let dags: Vec<&BlockDag> = f.iter().map(|(_, b)| &b.dag).collect();
        // Cache keys are computed on the post-DCE dags (what is actually
        // planned), so toggling `exact_liveness` cannot alias entries.
        let keys = self.plan_cache_keys(f);
        let jobs = effective_jobs(self.options.jobs, dags.len());
        let plans: Vec<Result<BlockPlan, CodegenError>> = if jobs <= 1 {
            dags.iter()
                .enumerate()
                .map(|(i, d)| {
                    self.plan_block_keyed(d, &snapshot, i, deadline, keys.as_ref().map(|k| k[i]))
                })
                .collect()
        } else {
            self.plan_blocks_parallel(&dags, &snapshot, jobs, deadline, keys.as_deref())
        };

        let mut syms = snapshot;
        let mut layout = MemLayout::for_function(f);
        let n_units = self.target.machine.units().len();

        let mut instructions: Vec<VliwInstruction> = Vec::new();
        let mut block_starts: Vec<usize> = Vec::new();
        // Control targets encoded as block ids; fixed up afterwards.
        let mut pending_targets: Vec<(usize, usize)> = Vec::new(); // (instr, block)
        let mut report = CompileReport::default();

        for ((bid, block), plan) in f.iter().zip(plans) {
            let plan = plan?;
            block_starts.push(instructions.len());

            // Emission-side fault point (plan-side injectors never arm
            // `Stage::Emit`, so the two cannot double-fire).
            let injector = FaultInjector::new(self.options.faults.as_ref(), bid.index());
            let emit_fault = injector.arm(Stage::Emit);
            if emit_fault == Some(FaultKind::Exhaust) {
                return Err(CodegenError::Budget(Exhaustion::Injected));
            }

            // Emission and terminator lowering run under `catch_unwind`
            // so a defect here (or an injected fault) fails the compile
            // with a structured error instead of unwinding out.
            let lowered = catch_unwind(AssertUnwindSafe(|| -> Result<(), CodegenError> {
                if emit_fault == Some(FaultKind::Panic) {
                    panic!("{INJECTED_PANIC} at emission");
                }
                let mut plan = plan;
                if emit_fault == Some(FaultKind::Malform) {
                    plan.alloc.corrupt_one();
                }
                let result = self.apply_plan(plan, &mut syms, &mut layout)?;
                report.blocks.push(result.report.clone());
                instructions.extend(result.instructions.iter().cloned());

                let next = bid.index() + 1;
                match &block.term {
                    Terminator::Jump(t) => {
                        if t.index() != next {
                            let mut inst = VliwInstruction::nop(n_units);
                            inst.control = Some(ControlOp::Jump(t.index()));
                            pending_targets.push((instructions.len(), t.index()));
                            instructions.push(inst);
                        }
                    }
                    Terminator::Branch {
                        cond,
                        if_true,
                        if_false,
                    } => {
                        let cond_op = *result
                            .live_out
                            .get(cond)
                            .ok_or_else(|| missing_live_out(bid.index(), "branch condition"))?;
                        let mut inst = VliwInstruction::nop(n_units);
                        inst.control = Some(ControlOp::BranchNz {
                            cond: cond_op,
                            target: if_true.index(),
                        });
                        pending_targets.push((instructions.len(), if_true.index()));
                        instructions.push(inst);
                        if if_false.index() != next {
                            let mut j = VliwInstruction::nop(n_units);
                            j.control = Some(ControlOp::Jump(if_false.index()));
                            pending_targets.push((instructions.len(), if_false.index()));
                            instructions.push(j);
                        }
                    }
                    Terminator::Return(v) => {
                        let val =
                            match v {
                                Some(n) => Some(*result.live_out.get(n).ok_or_else(|| {
                                    missing_live_out(bid.index(), "return value")
                                })?),
                                None => None,
                            };
                        let mut inst = VliwInstruction::nop(n_units);
                        inst.control = Some(ControlOp::Return(val));
                        instructions.push(inst);
                    }
                }
                Ok(())
            }));
            match lowered {
                Ok(Ok(())) => {}
                Ok(Err(e)) => return Err(e),
                Err(payload) => {
                    return Err(CodegenError::BlockFailed {
                        block: bid.index(),
                        cause: panic_message(payload.as_ref()),
                    })
                }
            }
        }

        // Resolve block-id targets to instruction indices.
        for (ii, bid) in pending_targets {
            let Some(&target) = block_starts.get(bid) else {
                return Err(CodegenError::Internal(Diagnostic::new(
                    Code::C001,
                    format!("block{bid}"),
                    "branch target refers to a block that was never emitted",
                )));
            };
            match &mut instructions[ii].control {
                Some(ControlOp::Jump(t)) => *t = target,
                Some(ControlOp::BranchNz { target: t, .. }) => *t = target,
                other => {
                    return Err(CodegenError::Internal(Diagnostic::new(
                        Code::C001,
                        format!("instr{ii}"),
                        format!("pending branch target attached to a non-control op ({other:?})"),
                    )))
                }
            }
        }

        report.total_instructions = instructions.len();
        for b in &report.blocks {
            report.downgrades.extend(b.downgrades.iter().cloned());
        }
        report.complete = report.blocks.iter().all(|b| b.complete);
        if keys.is_some() {
            report.cache_hits = report.blocks.iter().filter(|b| b.cached).count();
            report.cache_misses = report.blocks.len() - report.cache_hits;
            report.restored_hits = report.blocks.iter().filter(|b| b.restored).count();
        }
        let var_addrs = syms
            .iter()
            .map(|(s, name)| (name.to_string(), layout.addr(s)))
            .collect();
        let program = VliwProgram {
            machine_name: self.target.machine.name.clone(),
            instructions,
            block_starts,
            var_addrs,
        };
        if self.options.verify {
            let diags = crate::invariants::verify_program(&self.target, &program);
            if !diags.is_empty() {
                return Err(CodegenError::Invariant(diags));
            }
        }
        Ok((program, report))
    }

    /// Compile a batch of functions — a whole program or several — across
    /// a worker pool, sharing this generator's read-only [`Target`]
    /// tables. Results are returned in input order.
    ///
    /// The pool width comes from [`CodegenOptions::jobs`] exactly like
    /// the per-block pool (`1` = compile in the calling thread, `0` = one
    /// worker per core, otherwise a cap), and workers steal function
    /// indices from a shared counter. Each function's compilation is
    /// independent and deterministic, so the batch output is
    /// byte-identical at any worker count. Workers register their pool
    /// width in a thread-local, which `jobs = 0` block planning inside
    /// them divides by — nesting the two pools never oversubscribes the
    /// machine.
    pub fn compile_batch(
        &self,
        functions: &[Function],
    ) -> Vec<Result<(VliwProgram, CompileReport), CodegenError>> {
        let jobs = effective_jobs(self.options.jobs, functions.len());
        if jobs <= 1 {
            return functions.iter().map(|f| self.compile_function(f)).collect();
        }
        // Nested-pool accounting: this batch may itself run inside an
        // enclosing pool (a server worker that called
        // `register_outer_pool`, or an outer batch). Workers are fresh
        // threads whose thread-local resets to 1, so the enclosing width
        // must be captured here, on the calling thread, and multiplied
        // in — otherwise `jobs = 0` block planning inside a worker would
        // divide by this batch's width alone and oversubscribe.
        let outer = OUTER_POOL_WIDTH.with(std::cell::Cell::get).max(1);
        let nested = outer.saturating_mul(jobs);
        let next = AtomicUsize::new(0);
        let mut slots: Vec<Option<Result<(VliwProgram, CompileReport), CodegenError>>> = Vec::new();
        slots.resize_with(functions.len(), || None);
        std::thread::scope(|s| {
            let next = &next;
            let handles: Vec<_> = (0..jobs)
                .map(|_| {
                    s.spawn(move || {
                        OUTER_POOL_WIDTH.with(|w| w.set(nested));
                        let mut done = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= functions.len() {
                                break;
                            }
                            done.push((i, self.compile_function(&functions[i])));
                        }
                        done
                    })
                })
                .collect();
            for h in handles {
                for (i, result) in h
                    .join()
                    .expect("batch workers never panic: compile_function catches everything")
                {
                    slots[i] = Some(result);
                }
            }
        });
        slots
            .into_iter()
            .map(|r| r.expect("every function compiled exactly once"))
            .collect()
    }

    /// Cache keys for every block of `f` (post-DCE), or `None` when
    /// caching is off: no cache attached, or fault injection configured —
    /// the injector fires by block *position*, which a content-addressed
    /// cache would short-circuit nondeterministically.
    fn plan_cache_keys(&self, f: &Function) -> Option<Vec<CacheKey>> {
        if self.cache.is_none() || self.options.faults.is_some() {
            return None;
        }
        let options_fp = self.options.planning_fingerprint();
        Some(
            f.iter()
                .map(|(_, b)| CacheKey {
                    block: aviv_ir::block_dag_hash(&b.dag, &f.syms),
                    target: self.target_fp,
                    options: options_fp,
                })
                .collect(),
        )
    }

    /// [`CodeGenerator::plan_block_guarded`] behind the plan cache: serve
    /// a hit as a clone of the resident plan (marking the report
    /// `cached`), or plan from scratch and — if the result is *complete*,
    /// i.e. byte-identical to an unbudgeted run — insert it. Incomplete
    /// (degraded/truncated) plans depend on budgets and wall-clock, so
    /// they are recomputed every time.
    fn plan_block_keyed(
        &self,
        dag: &BlockDag,
        snapshot: &SymbolTable,
        block: usize,
        deadline: Option<Instant>,
        key: Option<CacheKey>,
    ) -> Result<BlockPlan, CodegenError> {
        let (Some(key), Some(cache)) = (key, self.cache.as_deref()) else {
            return self.plan_block_guarded(dag, snapshot, block, deadline);
        };
        if let Some((mut plan, restored)) = cache.lookup_flagged(&key) {
            plan.report.cached = true;
            plan.report.restored = restored;
            return Ok(plan);
        }
        let plan = self.plan_block_guarded(dag, snapshot, block, deadline)?;
        if plan.report.complete {
            cache.insert(key, plan.clone());
        }
        Ok(plan)
    }

    /// [`CodeGenerator::plan_block_at`] with a last-resort panic guard:
    /// the ladder already catches panics per rung, but anything that
    /// slips between rungs (or inside the ladder bookkeeping itself) is
    /// converted here rather than unwinding into the caller or across a
    /// worker thread boundary.
    fn plan_block_guarded(
        &self,
        dag: &BlockDag,
        snapshot: &SymbolTable,
        block: usize,
        deadline: Option<Instant>,
    ) -> Result<BlockPlan, CodegenError> {
        catch_unwind(AssertUnwindSafe(|| {
            self.plan_block_at(dag, snapshot, block, deadline)
        }))
        .unwrap_or_else(|payload| {
            Err(CodegenError::BlockFailed {
                block,
                cause: panic_message(payload.as_ref()),
            })
        })
    }

    /// Plan all blocks on a scoped worker pool. Workers steal block
    /// indices from a shared counter (blocks vary wildly in cost, so a
    /// static partition would idle half the pool); results land in their
    /// block's slot, keeping the outcome independent of worker timing.
    fn plan_blocks_parallel(
        &self,
        dags: &[&BlockDag],
        snapshot: &SymbolTable,
        jobs: usize,
        deadline: Option<Instant>,
        keys: Option<&[CacheKey]>,
    ) -> Vec<Result<BlockPlan, CodegenError>> {
        let next = AtomicUsize::new(0);
        let mut slots: Vec<Option<Result<BlockPlan, CodegenError>>> = Vec::new();
        slots.resize_with(dags.len(), || None);
        std::thread::scope(|s| {
            let next = &next;
            let handles: Vec<_> = (0..jobs)
                .map(|_| {
                    s.spawn(move || {
                        let mut done = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= dags.len() {
                                break;
                            }
                            let key = keys.map(|k| k[i]);
                            done.push((
                                i,
                                self.plan_block_keyed(dags[i], snapshot, i, deadline, key),
                            ));
                        }
                        done
                    })
                })
                .collect();
            for h in handles {
                for (i, plan) in h
                    .join()
                    .expect("planner workers never panic: plan_block_guarded catches everything")
                {
                    slots[i] = Some(plan);
                }
            }
        });
        slots
            .into_iter()
            .map(|p| p.expect("every block planned exactly once"))
            .collect()
    }
}

/// Fault-harness corruption of a cover graph: kill the highest-numbered
/// alive node without rewiring its consumers — exactly the kind of
/// malformed intermediate state a buggy stage would hand downstream. The
/// covering engine reports it as a C004 wedge, or the invariant verifier
/// flags the uncovered operation.
fn corrupt_cover_graph(graph: &mut CoverGraph) {
    if let Some(&victim) = graph.alive().last() {
        graph.kill(victim);
        graph.rebuild_indexes();
    }
}

/// A terminator needed a value the block did not expose (C002).
fn missing_live_out(block: usize, what: &str) -> CodegenError {
    CodegenError::Internal(Diagnostic::new(
        Code::C002,
        format!("block{block}"),
        format!("{what} was never materialized as a live-out value"),
    ))
}

std::thread_local! {
    /// Total multiplicity of the enclosing pools — set by
    /// [`CodeGenerator::compile_batch`] workers (enclosing width × batch
    /// width) and by [`register_outer_pool`], 1 everywhere else. When
    /// `jobs = 0` resolves against the core count, it divides by this so
    /// that nested pools — server workers running batches running
    /// per-core block planning — share the machine instead of
    /// oversubscribing it multiplicatively.
    static OUTER_POOL_WIDTH: std::cell::Cell<usize> = const { std::cell::Cell::new(1) };
}

/// Declare that the current thread is one worker of a pool of `width`
/// (clamped to ≥ 1), so that `jobs = 0` compiles on this thread claim
/// `cores / width` workers instead of the whole machine.
///
/// Call this once from each worker thread of a request-serving pool
/// (`avivd` does). The registration is thread-local and compounds
/// correctly with [`CodeGenerator::compile_batch`], whose workers
/// multiply their own width on top; it is *not* inherited by unrelated
/// threads the caller spawns itself.
pub fn register_outer_pool(width: usize) {
    OUTER_POOL_WIDTH.with(|w| w.set(width.max(1)));
}

/// Resolve the `jobs` option against the machine and the work: `0` means
/// one worker per available core, and the pool never exceeds the work
/// item count.
///
/// Never panics: a failing [`std::thread::available_parallelism`] (some
/// platforms, restricted containers) falls back to one core, cgroup-style
/// quotas are whatever the standard library reports, and the result is
/// always clamped to at least 1.
fn effective_jobs(requested: usize, items: usize) -> usize {
    let j = if requested == 0 {
        let cores = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
        let outer = OUTER_POOL_WIDTH.with(std::cell::Cell::get).max(1);
        cores.div_ceil(outer)
    } else {
        requested
    };
    j.min(items).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effective_jobs_never_zero_and_caps_at_items() {
        assert_eq!(effective_jobs(1, 10), 1);
        assert_eq!(effective_jobs(8, 3), 3);
        assert_eq!(effective_jobs(8, 0), 1);
        assert_eq!(effective_jobs(0, 0), 1);
        assert!(effective_jobs(0, 1000) >= 1);
    }

    /// Regression test for nested-pool oversubscription: `compile_batch`
    /// workers used to install the batch width alone, discarding any
    /// enclosing pool's width — so a server worker pool of N running
    /// batches of width J would let inner `jobs = 0` planning resolve to
    /// `cores / J` instead of `cores / (N * J)`, oversubscribing the
    /// machine N-fold. The fix captures the caller's width before
    /// spawning and installs the product in each worker; this pins both
    /// the capture and the multiplication.
    #[test]
    fn batch_workers_compose_with_registered_server_pool() {
        std::thread::scope(|s| {
            s.spawn(|| {
                // Simulate an avivd worker: one of 3 server threads.
                register_outer_pool(3);
                // What compile_batch does before spawning its workers...
                let outer = OUTER_POOL_WIDTH.with(std::cell::Cell::get).max(1);
                assert_eq!(outer, 3, "caller width must be captured, not reset");
                let jobs = 2;
                let nested = outer.saturating_mul(jobs);
                // ...and what each worker thread must observe.
                s.spawn(move || {
                    OUTER_POOL_WIDTH.with(|w| w.set(nested));
                    assert_eq!(OUTER_POOL_WIDTH.with(std::cell::Cell::get), 6);
                    // Inner per-block pools divide the cores by the full
                    // nested width, so server × batch × blocks can never
                    // exceed the machine.
                    let cores =
                        std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
                    assert_eq!(effective_jobs(0, 1000), cores.div_ceil(6).max(1));
                });
            });
        });
    }

    /// A fresh thread never inherits a pool registration — which is why
    /// `compile_batch` must propagate it explicitly (the bug above).
    #[test]
    fn pool_registration_is_thread_local() {
        register_outer_pool(5);
        let seen = std::thread::spawn(|| OUTER_POOL_WIDTH.with(std::cell::Cell::get))
            .join()
            .expect("probe thread");
        assert_eq!(seen, 1);
        register_outer_pool(1);
    }

    #[test]
    fn effective_jobs_divides_by_outer_pool_width() {
        let cores = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
        OUTER_POOL_WIDTH.with(|w| w.set(cores));
        let inner = effective_jobs(0, 1000);
        OUTER_POOL_WIDTH.with(|w| w.set(1));
        // With the whole machine claimed by the outer pool, each worker
        // gets a single-threaded inner pool.
        assert_eq!(inner, 1);
        assert_eq!(effective_jobs(0, 1000), cores.min(1000));
    }
}
