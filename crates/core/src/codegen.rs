//! The top-level code generator: Fig. 5's overall algorithm.
//!
//! ```text
//! Explore possible split-node functional unit assignments
//!   - Estimate cost of assignment
//!   - Select several lowest cost assignments to explore in further detail
//! Foreach selected assignment
//!   - Insert required data transfers
//!   - Generate all maximal groupings of nodes executable in parallel
//!   - Select a minimal-cost set of maximal groupings covering all nodes
//! Final solution is the lowest-cost solution found above
//! ```
//!
//! followed by detailed register allocation (§IV-F), peephole
//! optimization (§IV-G), and conventional lowering of control flow
//! (§III-C).

use crate::assign::{explore, ExploreResult};
use crate::cover::{cover, CoverError, Schedule};
use crate::covergraph::CoverGraph;
use crate::emit::{
    emit_block, live_out_operands, AsmOperand, ControlOp, VliwInstruction, VliwProgram,
};
use crate::options::CodegenOptions;
use crate::peephole;
use crate::regalloc::{allocate, Allocation, RegAllocError};
use aviv_ir::{BlockDag, Function, MemLayout, NodeId, Sym, SymbolTable, Terminator};
use aviv_isdl::{Machine, Target};
use aviv_splitdag::{SplitDagError, SplitNodeDag};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Code-generation failure.
#[derive(Debug, Clone)]
pub enum CodegenError {
    /// The block cannot be implemented on the machine at all.
    Unsupported(SplitDagError),
    /// Covering failed on every explored assignment.
    Cover(CoverError),
    /// Detailed allocation failed (indicates a covering bug; surfaced for
    /// property tests rather than panicking).
    RegAlloc(RegAllocError),
    /// The pipeline invariant verifier ([`crate::invariants`]) found a
    /// violation; only raised when [`CodegenOptions::verify`] is set.
    Invariant(Vec<aviv_verify::Diagnostic>),
}

impl fmt::Display for CodegenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodegenError::Unsupported(e) => write!(f, "unsupported: {e}"),
            CodegenError::Cover(e) => write!(f, "covering failed: {e}"),
            CodegenError::RegAlloc(e) => write!(f, "register allocation failed: {e}"),
            CodegenError::Invariant(diags) => {
                write!(f, "pipeline invariant violated: {}", diags[0])?;
                if diags.len() > 1 {
                    write!(f, " (+{} more)", diags.len() - 1)?;
                }
                Ok(())
            }
        }
    }
}

impl Error for CodegenError {}

impl From<SplitDagError> for CodegenError {
    fn from(e: SplitDagError) -> Self {
        CodegenError::Unsupported(e)
    }
}

/// Statistics from compiling one basic block (feeds the paper's tables).
#[derive(Debug, Clone)]
pub struct BlockReport {
    /// Original DAG node count (Table column 2).
    pub orig_nodes: usize,
    /// Split-Node DAG node count (Table column 3).
    pub sndag_nodes: usize,
    /// Size of the full assignment space.
    pub assignment_space: u128,
    /// Assignments that survived enumeration.
    pub assignments_enumerated: usize,
    /// Assignments explored in detail.
    pub assignments_explored: usize,
    /// Whether enumeration was truncated by the safety cap.
    pub truncated: bool,
    /// Spills inserted in the winning solution (Table column 5).
    pub spills: usize,
    /// Final instruction count for the block body (Table column 7).
    pub instructions: usize,
    /// Instructions removed by the peephole pass.
    pub peephole_removed: usize,
    /// Wall-clock compile time (Table column 8).
    pub time: Duration,
}

/// Everything produced for one basic block.
#[derive(Debug, Clone)]
pub struct BlockResult {
    /// The block body (control flow not included).
    pub instructions: Vec<VliwInstruction>,
    /// The winning cover graph.
    pub graph: CoverGraph,
    /// The winning schedule.
    pub schedule: Schedule,
    /// The register allocation.
    pub alloc: Allocation,
    /// Where live-out values (branch conditions, return values) reside.
    pub live_out: HashMap<NodeId, AsmOperand>,
    /// Statistics.
    pub report: BlockReport,
}

/// The pure result of planning one basic block against an immutable
/// snapshot of the symbol table: everything up to (but not including)
/// emission, with the spill slots the block wants recorded as appended
/// *names* rather than as mutations of shared state.
///
/// Plans for different blocks are independent, so a function's blocks can
/// be planned concurrently ([`CodegenOptions::jobs`]) and then applied in
/// block order by [`CodeGenerator::apply_plan`], which renames each
/// plan-local spill slot to its final function-wide symbol. The merge
/// reproduces exactly the symbol ids and names a sequential run picks, so
/// the emitted program is byte-identical for any worker count.
#[derive(Debug, Clone)]
pub struct BlockPlan {
    graph: CoverGraph,
    schedule: Schedule,
    alloc: Allocation,
    /// Names interned beyond the snapshot during covering, in creation
    /// order; their plan-local ids are `snapshot_len..`.
    appended_syms: Vec<String>,
    snapshot_len: usize,
    /// Partial report; `instructions` and final `time` are filled in by
    /// [`CodeGenerator::apply_plan`].
    report: BlockReport,
}

impl BlockPlan {
    /// Spill-slot names this block wants appended to the symbol table.
    pub fn appended_syms(&self) -> &[String] {
        &self.appended_syms
    }
}

/// Statistics from compiling a whole function.
#[derive(Debug, Clone, Default)]
pub struct FunctionReport {
    /// Per-block reports in block order.
    pub blocks: Vec<BlockReport>,
    /// Total instructions including control flow.
    pub total_instructions: usize,
}

/// The retargetable code generator: construct once per machine, compile
/// any number of blocks or functions.
///
/// ```
/// use aviv::CodeGenerator;
/// use aviv_ir::parse_function;
/// use aviv_isdl::archs;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let f = parse_function("func f(a, b) { x = a * b + 1; return x; }")?;
/// let generator = CodeGenerator::new(archs::example_arch(4));
/// let (program, report) = generator.compile_function(&f)?;
/// assert!(report.total_instructions > 0);
/// println!("{}", program.render(generator.target()));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct CodeGenerator {
    target: Target,
    options: CodegenOptions,
}

impl CodeGenerator {
    /// Create a generator for `machine` with default options.
    pub fn new(machine: Machine) -> Self {
        CodeGenerator {
            target: Target::new(machine),
            options: CodegenOptions::default(),
        }
    }

    /// Create a generator from a prebuilt [`Target`].
    pub fn with_target(target: Target) -> Self {
        CodeGenerator {
            target,
            options: CodegenOptions::default(),
        }
    }

    /// Set the heuristic options.
    pub fn options(mut self, options: CodegenOptions) -> Self {
        self.options = options;
        self
    }

    /// The target in use.
    pub fn target(&self) -> &Target {
        &self.target
    }

    /// The options in use.
    pub fn options_ref(&self) -> &CodegenOptions {
        &self.options
    }

    /// Compile one basic block. `syms` and `layout` may gain spill slots.
    ///
    /// Equivalent to [`CodeGenerator::plan_block`] against the current
    /// table followed by [`CodeGenerator::apply_plan`].
    ///
    /// # Errors
    ///
    /// See [`CodegenError`].
    pub fn compile_block(
        &self,
        dag: &BlockDag,
        syms: &mut SymbolTable,
        layout: &mut MemLayout,
    ) -> Result<BlockResult, CodegenError> {
        let plan = self.plan_block(dag, syms)?;
        Ok(self.apply_plan(plan, syms, layout))
    }

    /// Plan one basic block against an immutable `snapshot` of the symbol
    /// table: assignment exploration, covering, register allocation, and
    /// peephole — everything except emission. Mutates nothing, so any
    /// number of blocks can be planned concurrently from one snapshot.
    ///
    /// # Errors
    ///
    /// See [`CodegenError`].
    pub fn plan_block(
        &self,
        dag: &BlockDag,
        snapshot: &SymbolTable,
    ) -> Result<BlockPlan, CodegenError> {
        let start = Instant::now();
        let sndag = SplitNodeDag::build(dag, &self.target)?;
        let stats = sndag.stats(dag);
        let ExploreResult {
            assignments,
            enumerated,
            truncated,
        } = explore(dag, &sndag, &self.target, &self.options);

        // Explore each selected assignment in depth; keep the cheapest.
        let mut best: Option<(CoverGraph, Schedule, SymbolTable)> = None;
        let mut last_err: Option<CoverError> = None;
        for assignment in &assignments {
            let mut scratch_syms = snapshot.clone();
            let mut graph = CoverGraph::build(dag, &sndag, &self.target, assignment);
            debug_assert!(graph.verify(&self.target).is_ok());
            let result = cover(&mut graph, &self.target, &mut scratch_syms, &self.options)
                .map(|s| (graph, s))
                .or_else(|_| {
                    // Extreme register pressure can wedge the concurrent
                    // engine; retry with the guaranteed-progress
                    // sequential fallback on a fresh graph.
                    let mut scratch = snapshot.clone();
                    let mut g = CoverGraph::build(dag, &sndag, &self.target, assignment);
                    let s = crate::cover::cover_sequential(&mut g, &self.target, &mut scratch)?;
                    scratch_syms = scratch;
                    Ok::<_, CoverError>((g, s))
                });
            match result {
                Ok((graph, schedule)) => {
                    let better = match &best {
                        None => true,
                        Some((_, s, _)) => schedule.len() < s.len(),
                    };
                    if better {
                        best = Some((graph, schedule, scratch_syms));
                    }
                }
                Err(e) => last_err = Some(e),
            }
        }
        let (mut graph, mut schedule, winner_syms) = best.ok_or(CodegenError::Cover(
            last_err.unwrap_or(CoverError::SpillLimit),
        ))?;

        let mut alloc =
            allocate(&graph, &self.target, &schedule).map_err(CodegenError::RegAlloc)?;

        // Peephole: try to undo pessimistic spills and recompact.
        let before_peephole = schedule.len();
        if self.options.peephole {
            peephole::optimize(&mut graph, &self.target, &mut schedule, &mut alloc);
        }
        let peephole_removed = before_peephole - schedule.len();

        if self.options.verify {
            let diags = crate::invariants::verify_block(
                &self.target,
                dag,
                &sndag,
                &graph,
                &schedule,
                &alloc,
            );
            if !diags.is_empty() {
                return Err(CodegenError::Invariant(diags));
            }
        }

        // The only table mutation covering performs is appending fresh
        // spill slots; record the names so the merge can replay them.
        let appended_syms = winner_syms
            .iter()
            .skip(snapshot.len())
            .map(|(_, name)| name.to_string())
            .collect();

        let report = BlockReport {
            orig_nodes: stats.orig_nodes,
            sndag_nodes: stats.sn_nodes,
            assignment_space: stats.assignment_space,
            assignments_enumerated: enumerated,
            assignments_explored: assignments.len(),
            truncated,
            spills: schedule.spills.len(),
            instructions: 0, // filled in by apply_plan
            peephole_removed,
            time: start.elapsed(),
        };
        Ok(BlockPlan {
            graph,
            schedule,
            alloc,
            appended_syms,
            snapshot_len: snapshot.len(),
            report,
        })
    }

    /// Apply a [`BlockPlan`] to the function-wide symbol table and memory
    /// layout, then emit the block. Plan-local spill symbols are renamed
    /// into `syms` in creation order — reproducing exactly the names and
    /// ids a sequential run picks — and their slots reserved in `layout`.
    ///
    /// Plans must be applied in block order, against the same table their
    /// snapshots were taken from (plus earlier blocks' applications).
    pub fn apply_plan(
        &self,
        mut plan: BlockPlan,
        syms: &mut SymbolTable,
        layout: &mut MemLayout,
    ) -> BlockResult {
        let start = Instant::now();
        if !plan.appended_syms.is_empty() {
            let mut remap: HashMap<Sym, Sym> = HashMap::new();
            for (i, name) in plan.appended_syms.iter().enumerate() {
                let local = Sym((plan.snapshot_len + i) as u32);
                let merged = syms.fresh_like(name);
                if merged != local {
                    remap.insert(local, merged);
                }
            }
            if !remap.is_empty() {
                plan.graph.remap_syms(&remap);
                for r in &mut plan.schedule.spills {
                    if let Some(&m) = remap.get(&r.slot) {
                        r.slot = m;
                    }
                }
            }
        }

        // Register any new spill slots with the layout.
        for (sym, _) in syms.iter() {
            if sym.index() >= layout.known_symbols() {
                layout.reserve_slot(sym);
            }
        }

        let instructions = emit_block(
            &plan.graph,
            &self.target,
            &plan.schedule,
            &plan.alloc,
            syms,
            layout,
        );
        let live_out = live_out_operands(&plan.graph, &plan.alloc);
        let mut report = plan.report;
        report.instructions = instructions.len();
        report.time += start.elapsed();
        BlockResult {
            instructions,
            graph: plan.graph,
            schedule: plan.schedule,
            alloc: plan.alloc,
            live_out,
            report,
        }
    }

    /// Compile a whole function, lowering control flow conventionally
    /// (§III-C) and resolving branch targets.
    ///
    /// Blocks are planned independently against a snapshot of the symbol
    /// table — concurrently when [`CodegenOptions::jobs`] is not 1 — and
    /// merged in block order, so the output is byte-identical for every
    /// worker count.
    ///
    /// # Errors
    ///
    /// See [`CodegenError`]. With several failing blocks, the error
    /// reported is the first in block order regardless of worker count.
    pub fn compile_function(
        &self,
        f: &Function,
    ) -> Result<(VliwProgram, FunctionReport), CodegenError> {
        // Exact global liveness: drop stores shadowed on every path (and
        // the nodes only they kept alive) before covering, so dead
        // values never occupy registers. Every named variable is treated
        // as observable at exit, which keeps the memory image — and
        // therefore the differential oracle — bit-identical.
        let pruned;
        let f = if self.options.exact_liveness {
            let mut g = f.clone();
            let observable: Vec<Sym> = f.syms.iter().map(|(s, _)| s).collect();
            if aviv_ir::opt::eliminate_dead_code(&mut g, &observable) > 0 {
                pruned = g;
                &pruned
            } else {
                f
            }
        } else {
            f
        };
        let snapshot = f.syms.clone();
        let dags: Vec<&BlockDag> = f.iter().map(|(_, b)| &b.dag).collect();
        let jobs = effective_jobs(self.options.jobs, dags.len());
        let plans: Vec<Result<BlockPlan, CodegenError>> = if jobs <= 1 {
            dags.iter().map(|d| self.plan_block(d, &snapshot)).collect()
        } else {
            self.plan_blocks_parallel(&dags, &snapshot, jobs)
        };

        let mut syms = snapshot;
        let mut layout = MemLayout::for_function(f);
        let n_units = self.target.machine.units().len();

        let mut instructions: Vec<VliwInstruction> = Vec::new();
        let mut block_starts: Vec<usize> = Vec::new();
        // Control targets encoded as block ids; fixed up afterwards.
        let mut pending_targets: Vec<(usize, usize)> = Vec::new(); // (instr, block)
        let mut report = FunctionReport::default();

        for ((bid, block), plan) in f.iter().zip(plans) {
            block_starts.push(instructions.len());
            let result = self.apply_plan(plan?, &mut syms, &mut layout);
            report.blocks.push(result.report.clone());
            instructions.extend(result.instructions.iter().cloned());

            let next = bid.index() + 1;
            match &block.term {
                Terminator::Jump(t) => {
                    if t.index() != next {
                        let mut inst = VliwInstruction::nop(n_units);
                        inst.control = Some(ControlOp::Jump(t.index()));
                        pending_targets.push((instructions.len(), t.index()));
                        instructions.push(inst);
                    }
                }
                Terminator::Branch {
                    cond,
                    if_true,
                    if_false,
                } => {
                    let cond_op = *result
                        .live_out
                        .get(cond)
                        .expect("branch condition is live-out");
                    let mut inst = VliwInstruction::nop(n_units);
                    inst.control = Some(ControlOp::BranchNz {
                        cond: cond_op,
                        target: if_true.index(),
                    });
                    pending_targets.push((instructions.len(), if_true.index()));
                    instructions.push(inst);
                    if if_false.index() != next {
                        let mut j = VliwInstruction::nop(n_units);
                        j.control = Some(ControlOp::Jump(if_false.index()));
                        pending_targets.push((instructions.len(), if_false.index()));
                        instructions.push(j);
                    }
                }
                Terminator::Return(v) => {
                    let val =
                        v.map(|n| *result.live_out.get(&n).expect("return value is live-out"));
                    let mut inst = VliwInstruction::nop(n_units);
                    inst.control = Some(ControlOp::Return(val));
                    instructions.push(inst);
                }
            }
        }

        // Resolve block-id targets to instruction indices.
        for (ii, bid) in pending_targets {
            let target = block_starts[bid];
            match &mut instructions[ii].control {
                Some(ControlOp::Jump(t)) => *t = target,
                Some(ControlOp::BranchNz { target: t, .. }) => *t = target,
                _ => unreachable!("pending target on non-branch"),
            }
        }

        report.total_instructions = instructions.len();
        let var_addrs = syms
            .iter()
            .map(|(s, name)| (name.to_string(), layout.addr(s)))
            .collect();
        let program = VliwProgram {
            machine_name: self.target.machine.name.clone(),
            instructions,
            block_starts,
            var_addrs,
        };
        if self.options.verify {
            let diags = crate::invariants::verify_program(&self.target, &program);
            if !diags.is_empty() {
                return Err(CodegenError::Invariant(diags));
            }
        }
        Ok((program, report))
    }

    /// Plan all blocks on a scoped worker pool. Workers steal block
    /// indices from a shared counter (blocks vary wildly in cost, so a
    /// static partition would idle half the pool); results land in their
    /// block's slot, keeping the outcome independent of worker timing.
    fn plan_blocks_parallel(
        &self,
        dags: &[&BlockDag],
        snapshot: &SymbolTable,
        jobs: usize,
    ) -> Vec<Result<BlockPlan, CodegenError>> {
        let next = AtomicUsize::new(0);
        let mut slots: Vec<Option<Result<BlockPlan, CodegenError>>> = Vec::new();
        slots.resize_with(dags.len(), || None);
        std::thread::scope(|s| {
            let next = &next;
            let handles: Vec<_> = (0..jobs)
                .map(|_| {
                    s.spawn(move || {
                        let mut done = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= dags.len() {
                                break;
                            }
                            done.push((i, self.plan_block(dags[i], snapshot)));
                        }
                        done
                    })
                })
                .collect();
            for h in handles {
                for (i, plan) in h.join().expect("planner thread panicked") {
                    slots[i] = Some(plan);
                }
            }
        });
        slots
            .into_iter()
            .map(|p| p.expect("every block planned exactly once"))
            .collect()
    }
}

/// Resolve the `jobs` option against the machine and the work: `0` means
/// one worker per available core, and the pool never exceeds the block
/// count.
fn effective_jobs(requested: usize, blocks: usize) -> usize {
    let j = if requested == 0 {
        std::thread::available_parallelism().map_or(1, std::num::NonZero::get)
    } else {
        requested
    };
    j.min(blocks).max(1)
}
