//! The top-level code generator: Fig. 5's overall algorithm.
//!
//! ```text
//! Explore possible split-node functional unit assignments
//!   - Estimate cost of assignment
//!   - Select several lowest cost assignments to explore in further detail
//! Foreach selected assignment
//!   - Insert required data transfers
//!   - Generate all maximal groupings of nodes executable in parallel
//!   - Select a minimal-cost set of maximal groupings covering all nodes
//! Final solution is the lowest-cost solution found above
//! ```
//!
//! followed by detailed register allocation (§IV-F), peephole
//! optimization (§IV-G), and conventional lowering of control flow
//! (§III-C).

use crate::assign::{explore, ExploreResult};
use crate::cover::{cover, CoverError, Schedule};
use crate::covergraph::CoverGraph;
use crate::emit::{
    emit_block, live_out_operands, AsmOperand, ControlOp, VliwInstruction, VliwProgram,
};
use crate::options::CodegenOptions;
use crate::peephole;
use crate::regalloc::{allocate, Allocation, RegAllocError};
use aviv_ir::{BlockDag, Function, MemLayout, NodeId, SymbolTable, Terminator};
use aviv_isdl::{Machine, Target};
use aviv_splitdag::{SplitDagError, SplitNodeDag};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::time::{Duration, Instant};

/// Code-generation failure.
#[derive(Debug, Clone)]
pub enum CodegenError {
    /// The block cannot be implemented on the machine at all.
    Unsupported(SplitDagError),
    /// Covering failed on every explored assignment.
    Cover(CoverError),
    /// Detailed allocation failed (indicates a covering bug; surfaced for
    /// property tests rather than panicking).
    RegAlloc(RegAllocError),
}

impl fmt::Display for CodegenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodegenError::Unsupported(e) => write!(f, "unsupported: {e}"),
            CodegenError::Cover(e) => write!(f, "covering failed: {e}"),
            CodegenError::RegAlloc(e) => write!(f, "register allocation failed: {e}"),
        }
    }
}

impl Error for CodegenError {}

impl From<SplitDagError> for CodegenError {
    fn from(e: SplitDagError) -> Self {
        CodegenError::Unsupported(e)
    }
}

/// Statistics from compiling one basic block (feeds the paper's tables).
#[derive(Debug, Clone)]
pub struct BlockReport {
    /// Original DAG node count (Table column 2).
    pub orig_nodes: usize,
    /// Split-Node DAG node count (Table column 3).
    pub sndag_nodes: usize,
    /// Size of the full assignment space.
    pub assignment_space: u128,
    /// Assignments that survived enumeration.
    pub assignments_enumerated: usize,
    /// Assignments explored in detail.
    pub assignments_explored: usize,
    /// Whether enumeration was truncated by the safety cap.
    pub truncated: bool,
    /// Spills inserted in the winning solution (Table column 5).
    pub spills: usize,
    /// Final instruction count for the block body (Table column 7).
    pub instructions: usize,
    /// Instructions removed by the peephole pass.
    pub peephole_removed: usize,
    /// Wall-clock compile time (Table column 8).
    pub time: Duration,
}

/// Everything produced for one basic block.
#[derive(Debug, Clone)]
pub struct BlockResult {
    /// The block body (control flow not included).
    pub instructions: Vec<VliwInstruction>,
    /// The winning cover graph.
    pub graph: CoverGraph,
    /// The winning schedule.
    pub schedule: Schedule,
    /// The register allocation.
    pub alloc: Allocation,
    /// Where live-out values (branch conditions, return values) reside.
    pub live_out: HashMap<NodeId, AsmOperand>,
    /// Statistics.
    pub report: BlockReport,
}

/// Statistics from compiling a whole function.
#[derive(Debug, Clone, Default)]
pub struct FunctionReport {
    /// Per-block reports in block order.
    pub blocks: Vec<BlockReport>,
    /// Total instructions including control flow.
    pub total_instructions: usize,
}

/// The retargetable code generator: construct once per machine, compile
/// any number of blocks or functions.
///
/// ```
/// use aviv::CodeGenerator;
/// use aviv_ir::parse_function;
/// use aviv_isdl::archs;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let f = parse_function("func f(a, b) { x = a * b + 1; return x; }")?;
/// let generator = CodeGenerator::new(archs::example_arch(4));
/// let (program, report) = generator.compile_function(&f)?;
/// assert!(report.total_instructions > 0);
/// println!("{}", program.render(generator.target()));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct CodeGenerator {
    target: Target,
    options: CodegenOptions,
}

impl CodeGenerator {
    /// Create a generator for `machine` with default options.
    pub fn new(machine: Machine) -> Self {
        CodeGenerator {
            target: Target::new(machine),
            options: CodegenOptions::default(),
        }
    }

    /// Create a generator from a prebuilt [`Target`].
    pub fn with_target(target: Target) -> Self {
        CodeGenerator {
            target,
            options: CodegenOptions::default(),
        }
    }

    /// Set the heuristic options.
    pub fn options(mut self, options: CodegenOptions) -> Self {
        self.options = options;
        self
    }

    /// The target in use.
    pub fn target(&self) -> &Target {
        &self.target
    }

    /// The options in use.
    pub fn options_ref(&self) -> &CodegenOptions {
        &self.options
    }

    /// Compile one basic block. `syms` and `layout` may gain spill slots.
    ///
    /// # Errors
    ///
    /// See [`CodegenError`].
    pub fn compile_block(
        &self,
        dag: &BlockDag,
        syms: &mut SymbolTable,
        layout: &mut MemLayout,
    ) -> Result<BlockResult, CodegenError> {
        let start = Instant::now();
        let sndag = SplitNodeDag::build(dag, &self.target)?;
        let stats = sndag.stats(dag);
        let ExploreResult {
            assignments,
            enumerated,
            truncated,
        } = explore(dag, &sndag, &self.target, &self.options);

        // Explore each selected assignment in depth; keep the cheapest.
        let mut best: Option<(CoverGraph, Schedule, SymbolTable)> = None;
        let mut last_err: Option<CoverError> = None;
        for assignment in &assignments {
            let mut scratch_syms = syms.clone();
            let mut graph = CoverGraph::build(dag, &sndag, &self.target, assignment);
            debug_assert!(graph.verify(&self.target).is_ok());
            let result = cover(&mut graph, &self.target, &mut scratch_syms, &self.options)
                .map(|s| (graph, s))
                .or_else(|_| {
                    // Extreme register pressure can wedge the concurrent
                    // engine; retry with the guaranteed-progress
                    // sequential fallback on a fresh graph.
                    let mut scratch = syms.clone();
                    let mut g = CoverGraph::build(dag, &sndag, &self.target, assignment);
                    let s = crate::cover::cover_sequential(&mut g, &self.target, &mut scratch)?;
                    scratch_syms = scratch;
                    Ok::<_, CoverError>((g, s))
                });
            match result {
                Ok((graph, schedule)) => {
                    let better = match &best {
                        None => true,
                        Some((_, s, _)) => schedule.len() < s.len(),
                    };
                    if better {
                        best = Some((graph, schedule, scratch_syms));
                    }
                }
                Err(e) => last_err = Some(e),
            }
        }
        let (mut graph, mut schedule, winner_syms) = best.ok_or(CodegenError::Cover(
            last_err.unwrap_or(CoverError::SpillLimit),
        ))?;
        *syms = winner_syms;

        let mut alloc = allocate(&graph, &self.target, &schedule)
            .map_err(CodegenError::RegAlloc)?;

        // Peephole: try to undo pessimistic spills and recompact.
        let before_peephole = schedule.len();
        if self.options.peephole {
            peephole::optimize(&mut graph, &self.target, &mut schedule, &mut alloc);
        }
        let peephole_removed = before_peephole - schedule.len();

        // Register any new spill slots with the layout.
        for (sym, _) in syms.iter() {
            if sym.index() >= layout_len(layout) {
                layout.reserve_slot(sym);
            }
        }

        let instructions = emit_block(&graph, &self.target, &schedule, &alloc, syms, layout);
        let live_out = live_out_operands(&graph, &alloc);
        let report = BlockReport {
            orig_nodes: stats.orig_nodes,
            sndag_nodes: stats.sn_nodes,
            assignment_space: stats.assignment_space,
            assignments_enumerated: enumerated,
            assignments_explored: assignments.len(),
            truncated,
            spills: schedule.spills.len(),
            instructions: instructions.len(),
            peephole_removed,
            time: start.elapsed(),
        };
        Ok(BlockResult {
            instructions,
            graph,
            schedule,
            alloc,
            live_out,
            report,
        })
    }

    /// Compile a whole function, lowering control flow conventionally
    /// (§III-C) and resolving branch targets.
    ///
    /// # Errors
    ///
    /// See [`CodegenError`].
    pub fn compile_function(
        &self,
        f: &Function,
    ) -> Result<(VliwProgram, FunctionReport), CodegenError> {
        let mut syms = f.syms.clone();
        let mut layout = MemLayout::for_function(f);
        let n_units = self.target.machine.units().len();

        let mut instructions: Vec<VliwInstruction> = Vec::new();
        let mut block_starts: Vec<usize> = Vec::new();
        // Control targets encoded as block ids; fixed up afterwards.
        let mut pending_targets: Vec<(usize, usize)> = Vec::new(); // (instr, block)
        let mut report = FunctionReport::default();

        for (bid, block) in f.iter() {
            block_starts.push(instructions.len());
            let result = self.compile_block(&block.dag, &mut syms, &mut layout)?;
            report.blocks.push(result.report.clone());
            instructions.extend(result.instructions.iter().cloned());

            let next = bid.index() + 1;
            match &block.term {
                Terminator::Jump(t) => {
                    if t.index() != next {
                        let mut inst = VliwInstruction::nop(n_units);
                        inst.control = Some(ControlOp::Jump(t.index()));
                        pending_targets.push((instructions.len(), t.index()));
                        instructions.push(inst);
                    }
                }
                Terminator::Branch {
                    cond,
                    if_true,
                    if_false,
                } => {
                    let cond_op = *result
                        .live_out
                        .get(cond)
                        .expect("branch condition is live-out");
                    let mut inst = VliwInstruction::nop(n_units);
                    inst.control = Some(ControlOp::BranchNz {
                        cond: cond_op,
                        target: if_true.index(),
                    });
                    pending_targets.push((instructions.len(), if_true.index()));
                    instructions.push(inst);
                    if if_false.index() != next {
                        let mut j = VliwInstruction::nop(n_units);
                        j.control = Some(ControlOp::Jump(if_false.index()));
                        pending_targets.push((instructions.len(), if_false.index()));
                        instructions.push(j);
                    }
                }
                Terminator::Return(v) => {
                    let val = v.map(|n| {
                        *result
                            .live_out
                            .get(&n)
                            .expect("return value is live-out")
                    });
                    let mut inst = VliwInstruction::nop(n_units);
                    inst.control = Some(ControlOp::Return(val));
                    instructions.push(inst);
                }
            }
        }

        // Resolve block-id targets to instruction indices.
        for (ii, bid) in pending_targets {
            let target = block_starts[bid];
            match &mut instructions[ii].control {
                Some(ControlOp::Jump(t)) => *t = target,
                Some(ControlOp::BranchNz { target: t, .. }) => *t = target,
                _ => unreachable!("pending target on non-branch"),
            }
        }

        report.total_instructions = instructions.len();
        let var_addrs = syms
            .iter()
            .map(|(s, name)| (name.to_string(), layout.addr(s)))
            .collect();
        Ok((
            VliwProgram {
                machine_name: self.target.machine.name.clone(),
                instructions,
                block_starts,
                var_addrs,
            },
            report,
        ))
    }
}

/// Number of symbols the layout already knows addresses for.
fn layout_len(layout: &MemLayout) -> usize {
    // MemLayout has no direct length accessor; reserve_slot asserts
    // in-order registration, so track via a probe: addresses are the
    // symbol indices.
    layout.known_symbols()
}
